//! Indexed reading of JSONL telemetry WALs.
//!
//! A telemetry WAL is an append-only stream of [`ObsRecord`] lines whose
//! period-carrying events ([`crate::ObsEvent::period`]) are non-decreasing. The
//! sparse sidecar (`<wal>.jx`, [`jpmd_store::index`]) maps every
//! stride-th period-carrying record to its byte offset, so seeking to a
//! period is a binary search plus a short forward scan instead of a walk
//! from byte 0.
//!
//! Every helper here treats the index as a **hint**: the entry's target
//! line is re-parsed and its `seq` checked before the scan starts there,
//! and any mismatch (stale sidecar, rot, truncation) falls back to the
//! full scan. Wrong answers are impossible; only speed is at stake.

use std::fs::File;
use std::io::{self, BufRead, BufReader, Read, Seek, SeekFrom};
use std::path::Path;

use jpmd_store::{
    index_path, CompactionReport, IndexEntry, PeriodIndex, PeriodIndexWriter, StoreError,
};

use crate::ObsRecord;

/// What a seek found and what it cost.
#[derive(Debug, Clone)]
pub struct SeekOutcome {
    /// Byte offset and parsed record of the first period-carrying record
    /// at or past the requested period, when one exists.
    pub hit: Option<(u64, ObsRecord)>,
    /// Lines examined by the forward scan.
    pub lines_scanned: u64,
    /// Whether a verified index entry positioned the scan.
    pub used_index: bool,
}

/// Records returned by [`range_periods`] and what they cost.
#[derive(Debug, Clone)]
pub struct RangeOutcome {
    /// Period-carrying records with period in `[from, to]`, in stream
    /// order.
    pub records: Vec<ObsRecord>,
    /// Lines examined by the forward scan.
    pub lines_scanned: u64,
    /// Whether a verified index entry positioned the scan.
    pub used_index: bool,
}

/// Seeks to the first record whose period is `>= period`, using the
/// `<wal>.jx` sidecar when present and verified.
///
/// # Errors
///
/// Propagates I/O failures; a corrupt or stale index is not an error
/// (the seek falls back to a full scan).
pub fn seek_period(path: impl AsRef<Path>, period: u64) -> io::Result<SeekOutcome> {
    let path = path.as_ref();
    let start = index_start_for_period(path, period)?;
    scan_for_period(path, start, period)
}

/// [`seek_period`] with the index deliberately ignored — the baseline
/// the `store_bench` indexed-seek row compares against.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn seek_period_full_scan(path: impl AsRef<Path>, period: u64) -> io::Result<SeekOutcome> {
    scan_for_period(path.as_ref(), None, period)
}

/// Collects every period-carrying record with period in `[from, to]`
/// (inclusive), using the index to start near `from` and stopping as
/// soon as the stream moves past `to`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn range_periods(path: impl AsRef<Path>, from: u64, to: u64) -> io::Result<RangeOutcome> {
    let path = path.as_ref();
    let start = index_start_for_period(path, from)?;
    let mut reader = BufReader::new(File::open(path)?);
    if let Some(start) = start {
        reader.seek(SeekFrom::Start(start))?;
    }
    let mut outcome = RangeOutcome {
        records: Vec::new(),
        lines_scanned: 0,
        used_index: start.is_some(),
    };
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        outcome.lines_scanned += 1;
        let Ok(record) = ObsRecord::from_line(line.trim_end()) else {
            continue; // a torn tail mid-file is the writer's problem, not ours
        };
        match record.event.period() {
            Some(p) if p > to => break, // periods are non-decreasing: done
            Some(p) if p >= from => outcome.records.push(record),
            _ => {}
        }
    }
    Ok(outcome)
}

/// The last `n` complete lines of `path`, reading blocks backward from
/// the end — O(n lines), not O(file). A trailing line with no
/// terminating newline (a torn write) is ignored.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn tail_lines(path: impl AsRef<Path>, n: usize) -> io::Result<Vec<String>> {
    const BLOCK: u64 = 64 * 1024;
    let mut file = File::open(path)?;
    let len = file.metadata()?.len();
    if n == 0 || len == 0 {
        return Ok(Vec::new());
    }
    let mut tail: Vec<u8> = Vec::new();
    let mut unread = len;
    while unread > 0 {
        let start = unread.saturating_sub(BLOCK);
        let mut block = vec![0u8; (unread - start) as usize];
        file.seek(SeekFrom::Start(start))?;
        file.read_exact(&mut block)?;
        block.extend_from_slice(&tail);
        tail = block;
        unread = start;
        // `n + 1` newlines guarantee n complete lines even when the
        // first split segment is a partial line from an unread block.
        if tail.iter().filter(|&&b| b == b'\n').count() > n {
            break;
        }
    }
    let text = String::from_utf8_lossy(&tail);
    let mut lines: Vec<&str> = text.split('\n').collect();
    lines.pop(); // "" after a final newline, or a torn/partial last line
    let first_complete = usize::from(unread > 0).min(lines.len());
    let complete = &lines[first_complete..];
    let skip = complete.len().saturating_sub(n);
    Ok(complete[skip..].iter().map(|s| s.to_string()).collect())
}

/// A polling tail over a live, append-only WAL: remembers its byte
/// offset between [`Follower::poll`] calls and returns only complete
/// lines appended since the last poll. A torn trailing write (no final
/// newline yet) is buffered and completed by a later poll; a file that
/// shrank (rotation/truncation) resets the follower to byte 0.
///
/// Built for `obs-tool follow`, but usable anywhere a process wants to
/// watch another process's telemetry stream without holding it open.
#[derive(Debug)]
pub struct Follower {
    path: std::path::PathBuf,
    offset: u64,
    partial: Vec<u8>,
}

impl Follower {
    /// A follower positioned at byte 0 (replays the whole existing file
    /// on the first poll, then follows).
    pub fn from_start(path: impl AsRef<Path>) -> Follower {
        Follower {
            path: path.as_ref().to_path_buf(),
            offset: 0,
            partial: Vec::new(),
        }
    }

    /// A follower positioned `last_lines` complete lines before the
    /// current end of file — the first poll returns that backlog, later
    /// polls return only new lines. Finds the position with backward
    /// block reads (O(`last_lines`), not O(file)), like [`tail_lines`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (a missing file is an error here; create
    /// the WAL before following it).
    pub fn from_end(path: impl AsRef<Path>, last_lines: usize) -> io::Result<Follower> {
        const BLOCK: u64 = 64 * 1024;
        let path = path.as_ref();
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let mut tail: Vec<u8> = Vec::new();
        let mut unread = len;
        while unread > 0 {
            let start = unread.saturating_sub(BLOCK);
            let mut block = vec![0u8; (unread - start) as usize];
            file.seek(SeekFrom::Start(start))?;
            file.read_exact(&mut block)?;
            block.extend_from_slice(&tail);
            tail = block;
            unread = start;
            if tail.iter().filter(|&&b| b == b'\n').count() > last_lines {
                break;
            }
        }
        // Complete lines start at byte 0 (when the scan reached it) or
        // right after a newline, and are terminated by a later newline.
        let newlines: Vec<usize> = tail
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (b == b'\n').then_some(i))
            .collect();
        let offset = match newlines.last() {
            None => unread, // no complete line in view: follow from here
            Some(&last_nl) => {
                let mut starts: Vec<u64> = Vec::new();
                if unread == 0 {
                    starts.push(0);
                }
                starts.extend(
                    newlines
                        .iter()
                        .filter(|&&nl| nl < last_nl)
                        .map(|&nl| unread + nl as u64 + 1),
                );
                if last_lines == 0 || starts.len() < last_lines {
                    // Either no backlog wanted, or fewer complete lines
                    // exist than asked for: start after the last newline
                    // (backlog = everything in view) respectively.
                    if last_lines == 0 {
                        unread + last_nl as u64 + 1
                    } else {
                        *starts.first().unwrap_or(&(unread + last_nl as u64 + 1))
                    }
                } else {
                    starts[starts.len() - last_lines]
                }
            }
        };
        Ok(Follower {
            path: path.to_path_buf(),
            offset,
            partial: Vec::new(),
        })
    }

    /// A follower positioned at the first record at-or-past `period`,
    /// using the `<wal>.jx` index when present and verified (the bool
    /// reports whether it was). When no such record exists yet the
    /// follower starts at the end of the file, waiting for it.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn from_period(path: impl AsRef<Path>, period: u64) -> io::Result<(Follower, bool)> {
        let path = path.as_ref();
        let outcome = seek_period(path, period)?;
        match outcome.hit {
            Some((offset, _)) => Ok((
                Follower {
                    path: path.to_path_buf(),
                    offset,
                    partial: Vec::new(),
                },
                outcome.used_index,
            )),
            None => Ok((Follower::from_end(path, 0)?, outcome.used_index)),
        }
    }

    /// The follower's current byte offset (start of the next unread
    /// line, plus any buffered torn tail).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Complete lines appended since the last poll (or since the
    /// follower's start position). Empty when nothing new landed. A file
    /// that shrank resets the follower to byte 0 and replays from there.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (including the file disappearing).
    pub fn poll(&mut self) -> io::Result<Vec<String>> {
        let mut file = File::open(&self.path)?;
        let len = file.metadata()?.len();
        if len < self.offset {
            self.offset = 0;
            self.partial.clear();
        }
        if len > self.offset {
            file.seek(SeekFrom::Start(self.offset))?;
            let mut fresh = Vec::with_capacity((len - self.offset) as usize);
            file.take(len - self.offset).read_to_end(&mut fresh)?;
            self.offset += fresh.len() as u64;
            self.partial.extend_from_slice(&fresh);
        }
        let Some(last_nl) = self.partial.iter().rposition(|&b| b == b'\n') else {
            return Ok(Vec::new());
        };
        let rest = self.partial.split_off(last_nl + 1);
        let complete = std::mem::replace(&mut self.partial, rest);
        let text = String::from_utf8_lossy(&complete);
        Ok(text
            .split('\n')
            .filter(|line| !line.is_empty())
            .map(str::to_string)
            .collect())
    }
}

/// Rebuilds the `<wal>.jx` sidecar for an existing WAL from scratch,
/// indexing every `stride`-th period-carrying record. Returns the number
/// of entries written.
///
/// # Errors
///
/// I/O failures, or typed [`StoreError`]s from the sidecar writer.
pub fn build_index(path: impl AsRef<Path>, stride: u32) -> Result<u64, StoreError> {
    let path = path.as_ref();
    let mut writer = PeriodIndexWriter::create(index_path(path), stride)?;
    let mut reader = BufReader::new(File::open(path)?);
    let mut line = String::new();
    let mut offset = 0u64;
    let mut indexable = 0u64;
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        if let Ok(record) = ObsRecord::from_line(line.trim_end()) {
            if let Some(period) = record.event.period() {
                if indexable.is_multiple_of(u64::from(stride)) {
                    writer.append(IndexEntry {
                        period,
                        seq: record.seq,
                        offset,
                    })?;
                }
                indexable += 1;
            }
        }
        offset += n as u64;
    }
    Ok(writer.entries())
}

/// Compacts the segment chain of `base` (see [`jpmd_store::segment`])
/// into one gap-free record stream at `out`, keyed by record `seq`.
///
/// # Errors
///
/// Typed [`StoreError`]s from the underlying compaction.
pub fn compact(
    base: impl AsRef<Path>,
    out: impl AsRef<Path>,
) -> Result<CompactionReport, StoreError> {
    jpmd_store::compact_segments(base.as_ref(), out.as_ref(), |line| {
        ObsRecord::from_line(line).ok().map(|r| r.seq)
    })
}

/// A verified scan-start offset for `period`, from the sidecar: the
/// entry at-or-before `period`, only if the line at its offset still
/// parses and carries its seq. `None` (no sidecar, corrupt sidecar, or
/// failed verification) means scan from byte 0.
fn index_start_for_period(path: &Path, period: u64) -> io::Result<Option<u64>> {
    let ipath = index_path(path);
    if !ipath.exists() {
        return Ok(None);
    }
    let Ok(index) = PeriodIndex::load(&ipath) else {
        return Ok(None);
    };
    let Some(entry) = index.entry_at_or_before_period(period) else {
        return Ok(None);
    };
    Ok(verify_entry(path, entry)?.then_some(entry.offset))
}

/// True when the WAL line at `entry.offset` parses and carries
/// `entry.seq` — the staleness check that makes the index safe to trust.
fn verify_entry(path: &Path, entry: IndexEntry) -> io::Result<bool> {
    let mut reader = BufReader::new(File::open(path)?);
    reader.seek(SeekFrom::Start(entry.offset))?;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(matches!(
        ObsRecord::from_line(line.trim_end()),
        Ok(record) if record.seq == entry.seq
    ))
}

fn scan_for_period(path: &Path, start: Option<u64>, period: u64) -> io::Result<SeekOutcome> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut offset = start.unwrap_or(0);
    if offset > 0 {
        reader.seek(SeekFrom::Start(offset))?;
    }
    let mut outcome = SeekOutcome {
        hit: None,
        lines_scanned: 0,
        used_index: start.is_some(),
    };
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Ok(outcome);
        }
        outcome.lines_scanned += 1;
        if let Ok(record) = ObsRecord::from_line(line.trim_end()) {
            if record.event.period().is_some_and(|p| p >= period) {
                outcome.hit = Some((offset, record));
                return Ok(outcome);
            }
        }
        offset += n as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsEvent;
    use std::io::Write;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("jpmd-obs-wal-{tag}-{}.jsonl", std::process::id()))
    }

    fn period_record(seq: u64, period: u64) -> ObsRecord {
        ObsRecord {
            seq,
            t_wall_ms: None,
            shard: None,
            event: ObsEvent::Period {
                index: period,
                start_s: period as f64,
                end_s: period as f64 + 1.0,
                accesses: 10,
                hits: 8,
                misses: 2,
                disk_requests: 1,
                syncs: 0,
                energy_j: 1.0,
            },
        }
    }

    fn message_record(seq: u64) -> ObsRecord {
        ObsRecord {
            seq,
            t_wall_ms: None,
            shard: None,
            event: ObsEvent::Message {
                text: format!("m{seq}"),
            },
        }
    }

    /// Writes an alternating Message/Period stream with `periods`
    /// periods, one message before each.
    fn write_wal(path: &Path, periods: u64) {
        let mut f = std::fs::File::create(path).unwrap();
        let mut seq = 0;
        for p in 0..periods {
            writeln!(f, "{}", message_record(seq).to_line()).unwrap();
            seq += 1;
            writeln!(f, "{}", period_record(seq, p).to_line()).unwrap();
            seq += 1;
        }
    }

    #[test]
    fn seek_finds_the_same_record_with_and_without_index() {
        let path = tmp("seek");
        write_wal(&path, 100);
        let entries = build_index(&path, 8).unwrap();
        assert!(entries >= 100 / 8, "{entries} entries");
        let full = seek_period_full_scan(&path, 73).unwrap();
        let indexed = seek_period(&path, 73).unwrap();
        assert!(indexed.used_index);
        assert!(!full.used_index);
        assert_eq!(indexed.hit, full.hit);
        let (_, record) = indexed.hit.unwrap();
        assert_eq!(record.event.period(), Some(73));
        assert!(
            indexed.lines_scanned * 4 < full.lines_scanned,
            "indexed scan ({}) must be far shorter than full ({})",
            indexed.lines_scanned,
            full.lines_scanned
        );
        std::fs::remove_file(index_path(&path)).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seek_past_the_end_misses_cleanly() {
        let path = tmp("miss");
        write_wal(&path, 10);
        assert!(seek_period(&path, 99).unwrap().hit.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_index_falls_back_to_full_scan() {
        let path = tmp("stale");
        write_wal(&path, 50);
        build_index(&path, 4).unwrap();
        // Rewrite the WAL shorter: most entries now dangle or point at
        // mid-line bytes.
        write_wal(&path, 3);
        let out = seek_period(&path, 2).unwrap();
        assert_eq!(out.hit.unwrap().1.event.period(), Some(2));
        std::fs::remove_file(index_path(&path)).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn range_is_inclusive_and_stops_early() {
        let path = tmp("range");
        write_wal(&path, 100);
        build_index(&path, 8).unwrap();
        let out = range_periods(&path, 10, 12).unwrap();
        let periods: Vec<u64> = out
            .records
            .iter()
            .map(|r| r.event.period().unwrap())
            .collect();
        assert_eq!(periods, vec![10, 11, 12]);
        assert!(out.used_index);
        assert!(
            out.lines_scanned < 40,
            "scan must stop after period 12, scanned {}",
            out.lines_scanned
        );
        std::fs::remove_file(index_path(&path)).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tail_reads_last_lines_and_ignores_torn_tails() {
        let path = tmp("tail");
        write_wal(&path, 10);
        let lines = tail_lines(&path, 3).unwrap();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            ObsRecord::from_line(&lines[2]).unwrap().event.period(),
            Some(9)
        );
        // Torn trailing write: ignored.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(f, "{{\"seq\":999,").unwrap();
        drop(f);
        let lines = tail_lines(&path, 2).unwrap();
        assert_eq!(
            ObsRecord::from_line(&lines[1]).unwrap().event.period(),
            Some(9)
        );
        assert!(tail_lines(&path, 0).unwrap().is_empty());
        let all = tail_lines(&path, 10_000).unwrap();
        assert_eq!(all.len(), 20, "asking for more than exists returns all");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn follower_sees_appends_and_buffers_torn_tails() {
        let path = tmp("follow");
        write_wal(&path, 5);
        let mut follower = Follower::from_end(&path, 2).unwrap();
        // Backlog: the last 2 complete lines.
        let backlog = follower.poll().unwrap();
        assert_eq!(backlog.len(), 2);
        assert_eq!(
            ObsRecord::from_line(&backlog[1]).unwrap().event.period(),
            Some(4)
        );
        assert!(follower.poll().unwrap().is_empty());
        // Torn write: half a line now, the rest (plus another line) later.
        let full = period_record(100, 50).to_line();
        let (head, rest) = full.split_at(10);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(f, "{head}").unwrap();
        f.sync_all().unwrap();
        assert!(follower.poll().unwrap().is_empty(), "torn tail must wait");
        writeln!(f, "{rest}").unwrap();
        writeln!(f, "{}", message_record(101).to_line()).unwrap();
        drop(f);
        let lines = follower.poll().unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], full, "torn halves reassembled");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn follower_from_start_end_and_period() {
        let path = tmp("follow-pos");
        write_wal(&path, 20);
        build_index(&path, 4).unwrap();
        let mut all = Follower::from_start(&path);
        assert_eq!(all.poll().unwrap().len(), 40);

        let mut fresh = Follower::from_end(&path, 0).unwrap();
        assert!(fresh.poll().unwrap().is_empty());

        let (mut from_p, used_index) = Follower::from_period(&path, 15).unwrap();
        assert!(used_index);
        let lines = from_p.poll().unwrap();
        assert_eq!(
            ObsRecord::from_line(&lines[0]).unwrap().event.period(),
            Some(15)
        );
        // period 15..19 plus the message between each: 10 lines? Each
        // period record is followed by the next period's message.
        assert_eq!(lines.len(), 9);

        // Asking for more backlog than exists returns everything.
        let mut big = Follower::from_end(&path, 10_000).unwrap();
        assert_eq!(big.poll().unwrap().len(), 40);

        // Truncation resets to byte 0.
        write_wal(&path, 2);
        let replay = from_p.poll().unwrap();
        assert_eq!(replay.len(), 4);
        std::fs::remove_file(index_path(&path)).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_chains_by_seq() {
        let dir = std::env::temp_dir().join(format!("jpmd-obs-compact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("wal.jsonl");
        let mut f = std::fs::File::create(&base).unwrap();
        for seq in 0..6 {
            writeln!(f, "{}", message_record(seq).to_line()).unwrap();
        }
        drop(f);
        let seg1 = jpmd_store::segment_path(&base, 1);
        let mut f = std::fs::File::create(&seg1).unwrap();
        for seq in 4..8 {
            writeln!(f, "{}", message_record(seq).to_line()).unwrap();
        }
        drop(f);
        let out = dir.join("compact.jsonl");
        let report = compact(&base, &out).unwrap();
        assert_eq!(report.lines_out, 8);
        let seqs: Vec<u64> = std::fs::read_to_string(&out)
            .unwrap()
            .lines()
            .map(|l| ObsRecord::from_line(l).unwrap().seq)
            .collect();
        assert_eq!(seqs, (0..8).collect::<Vec<u64>>());
        std::fs::remove_dir_all(&dir).ok();
    }
}
