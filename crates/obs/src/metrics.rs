//! The metrics registry: named counters, gauges, and histograms with
//! cheap cloneable handles.
//!
//! Handles are `Arc`-backed atomics, so the parallel bench runner can
//! bump the same counter from every worker thread without locks on the
//! hot path (histograms take a mutex — they are recorded off the hot
//! path). A registry created with [`MetricsRegistry::disabled`] hands out
//! empty handles whose operations compile to a single branch on an
//! `Option` — the overhead contract verified by the `obs` group of the
//! Criterion microbench in `jpmd-bench`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use jpmd_stats::Histogram;
use serde::{Deserialize, Serialize};

/// A monotonically increasing `u64` metric.
///
/// Cloning shares the underlying atomic; a handle from a disabled
/// registry is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached no-op counter (what a disabled registry hands out).
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-value-wins `f64` metric (stored as bits in an atomic).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A detached no-op gauge.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a no-op handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

/// A shared fixed-width histogram (backed by [`jpmd_stats::Histogram`]).
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Option<Arc<Mutex<Histogram>>>);

impl HistogramHandle {
    /// A detached no-op histogram.
    pub fn noop() -> Self {
        HistogramHandle(None)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, x: f64) {
        if let Some(cell) = &self.0 {
            cell.lock().expect("histogram lock").record(x);
        }
    }

    /// A snapshot of the sketch (`None` for a no-op handle).
    pub fn snapshot(&self) -> Option<Histogram> {
        self.0
            .as_ref()
            .map(|cell| cell.lock().expect("histogram lock").clone())
    }
}

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Mutex<Histogram>>),
}

#[derive(Default)]
struct RegistryInner {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// A named collection of [`Counter`]s, [`Gauge`]s, and
/// [`HistogramHandle`]s.
///
/// Cloning shares the registry. Handle lookup takes a lock; do it once at
/// setup time and keep the handle — the handle operations themselves are
/// lock-free (counters/gauges) or short-critical-section (histograms).
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl MetricsRegistry {
    /// A live registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// A registry whose handles are all no-ops. Registration returns
    /// detached handles and [`MetricsRegistry::snapshot`] is empty.
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The counter named `name`, creating it at zero on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::noop();
        };
        let mut metrics = inner.metrics.lock().expect("registry lock");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
        match metric {
            Metric::Counter(cell) => Counter(Some(Arc::clone(cell))),
            _ => panic!("metric '{name}' is not a counter"),
        }
    }

    /// The gauge named `name`, creating it at zero on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::noop();
        };
        let mut metrics = inner.metrics.lock().expect("registry lock");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))));
        match metric {
            Metric::Gauge(cell) => Gauge(Some(Arc::clone(cell))),
            _ => panic!("metric '{name}' is not a gauge"),
        }
    }

    /// The histogram named `name` over `[lo, hi)` with `bins` buckets,
    /// creating it on first use (later calls reuse the existing sketch and
    /// ignore the bounds).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind,
    /// or on a degenerate range (see [`Histogram::new`]).
    pub fn histogram(&self, name: &str, lo: f64, hi: f64, bins: usize) -> HistogramHandle {
        let Some(inner) = &self.inner else {
            return HistogramHandle::noop();
        };
        let mut metrics = inner.metrics.lock().expect("registry lock");
        let metric = metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Histogram(Arc::new(Mutex::new(Histogram::new(lo, hi, bins))))
        });
        match metric {
            Metric::Histogram(cell) => HistogramHandle(Some(Arc::clone(cell))),
            _ => panic!("metric '{name}' is not a histogram"),
        }
    }

    /// A point-in-time copy of every registered metric, sorted by name
    /// (empty for a disabled registry).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut values = Vec::new();
        if let Some(inner) = &self.inner {
            let metrics = inner.metrics.lock().expect("registry lock");
            for (name, metric) in metrics.iter() {
                let value = match metric {
                    Metric::Counter(cell) => MetricValue::Counter(cell.load(Ordering::Relaxed)),
                    Metric::Gauge(cell) => {
                        MetricValue::Gauge(f64::from_bits(cell.load(Ordering::Relaxed)))
                    }
                    Metric::Histogram(cell) => {
                        MetricValue::Histogram(cell.lock().expect("histogram lock").clone())
                    }
                };
                values.push((name.clone(), value));
            }
        }
        MetricsSnapshot { values }
    }
}

/// One metric's value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Full histogram sketch.
    Histogram(Histogram),
}

/// A point-in-time copy of a registry, sorted by metric name.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in ascending name order.
    pub values: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// The counter named `name`, or `None`.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.values.iter().find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// The gauge named `name`, or `None`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.values.iter().find_map(|(n, v)| match v {
            MetricValue::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_handles_and_threads() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("events");
        let b = registry.counter("events");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = a.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        b.add(5);
        assert_eq!(a.get(), 4005);
        assert_eq!(registry.snapshot().counter("events"), Some(4005));
    }

    #[test]
    fn gauges_hold_last_value() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("utilization");
        g.set(0.25);
        g.set(0.5);
        assert_eq!(g.get(), 0.5);
        assert_eq!(registry.snapshot().gauge("utilization"), Some(0.5));
    }

    #[test]
    fn histograms_record_through_shared_handle() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("latency", 0.0, 1.0, 10);
        h.record(0.05);
        registry.histogram("latency", 0.0, 1.0, 10).record(0.15);
        let sketch = h.snapshot().expect("live histogram");
        assert_eq!(sketch.total(), 2);
    }

    #[test]
    fn disabled_registry_hands_out_noops() {
        let registry = MetricsRegistry::disabled();
        let c = registry.counter("x");
        let g = registry.gauge("y");
        let h = registry.histogram("z", 0.0, 1.0, 4);
        c.inc();
        g.set(3.0);
        h.record(0.5);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert!(h.snapshot().is_none());
        assert!(registry.snapshot().values.is_empty());
        assert!(!registry.is_enabled());
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_collision_panics() {
        let registry = MetricsRegistry::new();
        registry.gauge("mixed");
        registry.counter("mixed");
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let registry = MetricsRegistry::new();
        registry.counter("zebra").inc();
        registry.counter("alpha").inc();
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.values.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zebra"]);
    }
}
