//! The metrics registry: named counters, gauges, and histograms with
//! cheap cloneable handles.
//!
//! Handles are `Arc`-backed atomics, so the parallel bench runner can
//! bump the same counter from every worker thread without locks on the
//! hot path (histograms take a mutex — they are recorded off the hot
//! path). A registry created with [`MetricsRegistry::disabled`] hands out
//! empty handles whose operations compile to a single branch on an
//! `Option` — the overhead contract verified by the `obs` group of the
//! Criterion microbench in `jpmd-bench`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use jpmd_stats::Histogram;
use serde::{Deserialize, Serialize};

/// A monotonically increasing `u64` metric.
///
/// Cloning shares the underlying atomic; a handle from a disabled
/// registry is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached no-op counter (what a disabled registry hands out).
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-value-wins `f64` metric (stored as bits in an atomic).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A detached no-op gauge.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a no-op handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

/// A shared fixed-width histogram (backed by [`jpmd_stats::Histogram`]).
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Option<Arc<Mutex<Histogram>>>);

impl HistogramHandle {
    /// A detached no-op histogram.
    pub fn noop() -> Self {
        HistogramHandle(None)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, x: f64) {
        if let Some(cell) = &self.0 {
            cell.lock().expect("histogram lock").record(x);
        }
    }

    /// A snapshot of the sketch (`None` for a no-op handle).
    pub fn snapshot(&self) -> Option<Histogram> {
        self.0
            .as_ref()
            .map(|cell| cell.lock().expect("histogram lock").clone())
    }
}

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Mutex<Histogram>>),
}

#[derive(Default)]
struct RegistryInner {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// A named collection of [`Counter`]s, [`Gauge`]s, and
/// [`HistogramHandle`]s.
///
/// Cloning shares the registry. Handle lookup takes a lock; do it once at
/// setup time and keep the handle — the handle operations themselves are
/// lock-free (counters/gauges) or short-critical-section (histograms).
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl MetricsRegistry {
    /// A live registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// A registry whose handles are all no-ops. Registration returns
    /// detached handles and [`MetricsRegistry::snapshot`] is empty.
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The counter named `name`, creating it at zero on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::noop();
        };
        let mut metrics = inner.metrics.lock().expect("registry lock");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
        match metric {
            Metric::Counter(cell) => Counter(Some(Arc::clone(cell))),
            _ => panic!("metric '{name}' is not a counter"),
        }
    }

    /// The gauge named `name`, creating it at zero on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::noop();
        };
        let mut metrics = inner.metrics.lock().expect("registry lock");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))));
        match metric {
            Metric::Gauge(cell) => Gauge(Some(Arc::clone(cell))),
            _ => panic!("metric '{name}' is not a gauge"),
        }
    }

    /// The histogram named `name` over `[lo, hi)` with `bins` buckets,
    /// creating it on first use (later calls reuse the existing sketch and
    /// ignore the bounds).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind,
    /// or on a degenerate range (see [`Histogram::new`]).
    pub fn histogram(&self, name: &str, lo: f64, hi: f64, bins: usize) -> HistogramHandle {
        let Some(inner) = &self.inner else {
            return HistogramHandle::noop();
        };
        let mut metrics = inner.metrics.lock().expect("registry lock");
        let metric = metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Histogram(Arc::new(Mutex::new(Histogram::new(lo, hi, bins))))
        });
        match metric {
            Metric::Histogram(cell) => HistogramHandle(Some(Arc::clone(cell))),
            _ => panic!("metric '{name}' is not a histogram"),
        }
    }

    /// A point-in-time copy of every registered metric, sorted by name
    /// (empty for a disabled registry).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut values = Vec::new();
        if let Some(inner) = &self.inner {
            let metrics = inner.metrics.lock().expect("registry lock");
            for (name, metric) in metrics.iter() {
                let value = match metric {
                    Metric::Counter(cell) => MetricValue::Counter(cell.load(Ordering::Relaxed)),
                    Metric::Gauge(cell) => {
                        MetricValue::Gauge(f64::from_bits(cell.load(Ordering::Relaxed)))
                    }
                    Metric::Histogram(cell) => {
                        MetricValue::Histogram(cell.lock().expect("histogram lock").clone())
                    }
                };
                values.push((name.clone(), value));
            }
        }
        MetricsSnapshot { values }
    }
}

/// Builds a labeled metric name — `name{key="value",…}` — for use as a
/// registry key, escaping label values the way the Prometheus text
/// exposition expects (`\` → `\\`, `"` → `\"`, newline → `\n`).
///
/// The registry itself treats the result as an opaque name; the labels
/// become real Prometheus labels when the snapshot is rendered with
/// [`MetricsSnapshot::to_prometheus_text`]. Keys should be valid
/// Prometheus label names (`[a-zA-Z_][a-zA-Z0-9_]*`); they are emitted
/// as-is.
///
/// ```
/// use jpmd_obs::labeled;
/// assert_eq!(labeled("serve.decisions", &[("tenant", "t0")]),
///            "serve.decisions{tenant=\"t0\"}");
/// ```
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        for c in value.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Maps a registry metric name to a valid Prometheus metric name: dots
/// (this codebase's namespace separator) and any other invalid character
/// become underscores, with a leading underscore added when the name
/// starts with a digit.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' => {
                if i == 0 {
                    out.push('_');
                }
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    out
}

/// Formats an `f64` the way the Prometheus text exposition expects
/// (`+Inf` / `-Inf` / `NaN` spellings).
fn prometheus_f64(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

/// Splits a registry key into its Prometheus family name and label block
/// (`""` when unlabeled): `"a.b{t=\"x\"}"` → (`"a_b"`, `"{t=\"x\"}"`).
fn split_family(key: &str) -> (String, &str) {
    match key.find('{') {
        Some(brace) => (prometheus_name(&key[..brace]), &key[brace..]),
        None => (prometheus_name(key), ""),
    }
}

/// Merges an extra `le` (or similar) label into an existing label block.
fn with_extra_label(labels: &str, key: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        let inner = &labels[1..labels.len() - 1];
        format!("{{{inner},{key}=\"{value}\"}}")
    }
}

/// One metric's value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Full histogram sketch.
    Histogram(Histogram),
}

/// A point-in-time copy of a registry, sorted by metric name.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in ascending name order.
    pub values: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// The counter named `name`, or `None`.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.values.iter().find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// The gauge named `name`, or `None`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.values.iter().find_map(|(n, v)| match v {
            MetricValue::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }

    /// Renders the snapshot in Prometheus text-exposition format
    /// (version 0.0.4, the `text/plain` scrape format).
    ///
    /// Registry names are mapped to Prometheus names (dots become
    /// underscores, illegal characters too); a `{…}` suffix
    /// produced by [`labeled`] becomes real labels. All samples of one
    /// family are grouped under a single `# TYPE` line, as the format
    /// requires. Counters render as integers, gauges as floats
    /// (`+Inf`/`-Inf`/`NaN` spelled the Prometheus way), and histograms
    /// as cumulative `_bucket{le=…}` series plus `_count` and `_sum` —
    /// the sum is estimated from bin midpoints because the underlying
    /// sketch stores counts only.
    pub fn to_prometheus_text(&self) -> String {
        // Group samples by family so every family gets exactly one
        // `# TYPE` line (BTreeMap keeps output deterministic).
        let mut families: BTreeMap<String, (&'static str, Vec<String>)> = BTreeMap::new();
        for (key, value) in &self.values {
            let (family, labels) = split_family(key);
            match value {
                MetricValue::Counter(count) => {
                    families
                        .entry(family.clone())
                        .or_insert(("counter", Vec::new()))
                        .1
                        .push(format!("{family}{labels} {count}"));
                }
                MetricValue::Gauge(gauge) => {
                    families
                        .entry(family.clone())
                        .or_insert(("gauge", Vec::new()))
                        .1
                        .push(format!("{family}{labels} {}", prometheus_f64(*gauge)));
                }
                MetricValue::Histogram(hist) => {
                    let entry = families
                        .entry(family.clone())
                        .or_insert(("histogram", Vec::new()));
                    let mut cumulative = hist.underflow();
                    let mut sum = 0.0;
                    for i in 0..hist.num_bins() {
                        let (lo, hi) = hist.bin_bounds(i);
                        cumulative += hist.bin_count(i);
                        sum += hist.bin_count(i) as f64 * (lo + hi) / 2.0;
                        let le = with_extra_label(labels, "le", &prometheus_f64(hi));
                        entry.1.push(format!("{family}_bucket{le} {cumulative}"));
                    }
                    cumulative += hist.overflow();
                    let le = with_extra_label(labels, "le", "+Inf");
                    entry.1.push(format!("{family}_bucket{le} {cumulative}"));
                    entry
                        .1
                        .push(format!("{family}_sum{labels} {}", prometheus_f64(sum)));
                    entry.1.push(format!("{family}_count{labels} {cumulative}"));
                }
            }
        }
        let mut out = String::new();
        for (family, (kind, lines)) in &families {
            out.push_str(&format!("# TYPE {family} {kind}\n"));
            for line in lines {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_handles_and_threads() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("events");
        let b = registry.counter("events");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = a.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        b.add(5);
        assert_eq!(a.get(), 4005);
        assert_eq!(registry.snapshot().counter("events"), Some(4005));
    }

    #[test]
    fn gauges_hold_last_value() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("utilization");
        g.set(0.25);
        g.set(0.5);
        assert_eq!(g.get(), 0.5);
        assert_eq!(registry.snapshot().gauge("utilization"), Some(0.5));
    }

    #[test]
    fn histograms_record_through_shared_handle() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("latency", 0.0, 1.0, 10);
        h.record(0.05);
        registry.histogram("latency", 0.0, 1.0, 10).record(0.15);
        let sketch = h.snapshot().expect("live histogram");
        assert_eq!(sketch.total(), 2);
    }

    #[test]
    fn disabled_registry_hands_out_noops() {
        let registry = MetricsRegistry::disabled();
        let c = registry.counter("x");
        let g = registry.gauge("y");
        let h = registry.histogram("z", 0.0, 1.0, 4);
        c.inc();
        g.set(3.0);
        h.record(0.5);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert!(h.snapshot().is_none());
        assert!(registry.snapshot().values.is_empty());
        assert!(!registry.is_enabled());
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_collision_panics() {
        let registry = MetricsRegistry::new();
        registry.gauge("mixed");
        registry.counter("mixed");
    }

    #[test]
    fn labeled_escapes_values() {
        assert_eq!(labeled("m", &[]), "m");
        assert_eq!(
            labeled("serve.qps", &[("tenant", "a\"b\\c\nd")]),
            "serve.qps{tenant=\"a\\\"b\\\\c\\nd\"}"
        );
        assert_eq!(
            labeled("m", &[("a", "1"), ("b", "2")]),
            "m{a=\"1\",b=\"2\"}"
        );
    }

    #[test]
    fn prometheus_text_renders_all_kinds() {
        let registry = MetricsRegistry::new();
        registry
            .counter(&labeled("serve.decisions", &[("tenant", "t0")]))
            .add(3);
        registry
            .counter(&labeled("serve.decisions", &[("tenant", "t1")]))
            .add(5);
        registry.gauge("serve.tenants").set(2.0);
        registry.gauge("serve.inf").set(f64::INFINITY);
        let h = registry.histogram("serve.latency", 0.0, 1.0, 2);
        h.record(0.25);
        h.record(0.75);
        h.record(9.0); // overflow
        let text = registry.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE serve_decisions counter\n"));
        assert!(text.contains("serve_decisions{tenant=\"t0\"} 3\n"));
        assert!(text.contains("serve_decisions{tenant=\"t1\"} 5\n"));
        assert!(text.contains("# TYPE serve_tenants gauge\n"));
        assert!(text.contains("serve_tenants 2\n"));
        assert!(text.contains("serve_inf +Inf\n"));
        assert!(text.contains("# TYPE serve_latency histogram\n"));
        assert!(text.contains("serve_latency_bucket{le=\"0.5\"} 1\n"));
        assert!(text.contains("serve_latency_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("serve_latency_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("serve_latency_count 3\n"));

        // Structural validity: every non-comment line is `name[{labels}] value`,
        // each family has exactly one TYPE line, samples follow their TYPE.
        let mut seen_types = std::collections::BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let family = parts.next().expect("family");
                let kind = parts.next().expect("kind");
                assert!(["counter", "gauge", "histogram"].contains(&kind));
                assert!(seen_types.insert(family.to_string()), "duplicate TYPE");
            } else {
                let (series, value) = line.rsplit_once(' ').expect("sample line");
                let name = series.split('{').next().expect("name");
                assert!(name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
                assert!(
                    value.parse::<f64>().is_ok() || ["+Inf", "-Inf", "NaN"].contains(&value),
                    "unparseable value: {value}"
                );
                let family = seen_types.iter().any(|f: &String| {
                    name == *f
                        || name == format!("{f}_bucket")
                        || name == format!("{f}_sum")
                        || name == format!("{f}_count")
                });
                assert!(family, "sample before its TYPE line: {line}");
            }
        }
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let registry = MetricsRegistry::new();
        registry.counter("zebra").inc();
        registry.counter("alpha").inc();
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.values.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zebra"]);
    }
}
