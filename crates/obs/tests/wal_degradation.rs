//! WAL-under-fault tests: a [`JsonlSink`] over failing storage degrades
//! to its in-memory ring instead of losing records, resumes file writing
//! when the disk heals, and documents any real loss with a gap-marker
//! line. A sink over a noop fault plan stays byte-identical to one over
//! the raw filesystem.

use std::path::PathBuf;

use jpmd_faults::{FaultyStorage, IoFaultPlan, SharedBackend, StorageFaults};
use jpmd_obs::{JsonlSink, ObsEvent, ObsRecord, Sink, WalPolicy};

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "jpmd-obs-degrade-{tag}-{}.jsonl",
        std::process::id()
    ))
}

fn record(seq: u64) -> ObsRecord {
    ObsRecord {
        seq,
        t_wall_ms: None,
        shard: Some(2),
        event: ObsEvent::Message {
            text: format!("m{seq}"),
        },
    }
}

fn read_seqs(path: &std::path::Path) -> Vec<u64> {
    std::fs::read_to_string(path)
        .expect("read wal")
        .lines()
        .map(|l| ObsRecord::from_line(l).expect("parseable line").seq)
        .collect()
}

#[test]
fn outage_degrades_to_the_ring_and_drains_on_recovery() {
    let path = scratch("outage");
    // The sink's create goes through unfaulted; ops 0..6 then fail
    // (three emits under the WAL policy: write + fsync each).
    let storage = FaultyStorage::new(IoFaultPlan::outage(11, 1, 7));
    let monitor = storage.monitor();
    let sink =
        JsonlSink::create_with_on(SharedBackend::from(storage), &path, WalPolicy::wal()).unwrap();

    sink.emit(&record(0)); // healthy: write (op 0) + fsync lands in window — counted, not lost
    for seq in 1..4 {
        sink.emit(&record(seq)); // writes fail: ring
    }
    assert!(sink.storage_degraded(), "records are riding the ring");
    assert!(sink.write_errors() > 0, "failed attempts were counted");
    assert_eq!(sink.dropped_records(), 3, "ring holds them, none lost yet");

    // The window is exhausted: the next emission recovers the backlog.
    sink.emit(&record(4));
    assert!(!sink.storage_degraded(), "drained back to healthy");
    assert_eq!(sink.dropped_records(), 0, "nothing was actually lost");
    sink.flush();

    assert_eq!(
        read_seqs(&path),
        vec![0, 1, 2, 3, 4],
        "gap-free after recovery"
    );
    assert!(monitor.injected().total() > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn ring_overflow_is_documented_with_a_gap_marker() {
    let path = scratch("gap");
    // An outage long enough that the ring overflows before it heals
    // (every record's failed attempts burn a handful of ops), then a
    // healed tail that triggers the drain.
    let sink = JsonlSink::create_with_on(
        SharedBackend::from(FaultyStorage::new(IoFaultPlan::outage(5, 1, 5000))),
        &path,
        WalPolicy::default(),
    )
    .unwrap();
    let emitted = jpmd_obs::WAL_RING_CAP as u64 + 600;
    for seq in 0..emitted {
        sink.emit(&record(seq));
    }
    let lost_mid_outage = sink.dropped_records() - {
        // Everything unpersisted counts as dropped while degraded:
        // evictions plus whatever still rides the ring.
        jpmd_obs::WAL_RING_CAP as u64
    };
    assert!(sink.storage_degraded());
    assert!(lost_mid_outage > 0, "the ring overflowed during the outage");

    // Keep emitting until the op window is exhausted and the sink drains.
    let mut extra = emitted;
    while sink.storage_degraded() {
        sink.emit(&record(extra));
        extra += 1;
        assert!(extra < emitted + 10_000, "the outage window must close");
    }
    sink.flush();

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<ObsRecord> = text
        .lines()
        .map(|l| ObsRecord::from_line(l).unwrap())
        .collect();
    let markers: Vec<&ObsRecord> = lines
        .iter()
        .filter(|r| match &r.event {
            ObsEvent::Message { text } => text.contains("wal gap"),
            _ => false,
        })
        .collect();
    assert_eq!(markers.len(), 1, "one marker documents the whole gap");
    let lost = sink.dropped_records();
    assert!(
        lost > 0,
        "loss stays on the lifetime counter after recovery"
    );
    assert_eq!(
        markers[0].seq, 1,
        "the marker carries the first lost seq (seq 0 was written healthy)"
    );
    assert_eq!(markers[0].shard, Some(2), "marker inherits the lost shard");
    // The stream after the marker is the surviving contiguous run: the
    // first surviving seq is exactly first-lost + lost-count.
    let marker_at = lines
        .iter()
        .position(|r| std::ptr::eq(r, markers[0]))
        .unwrap();
    assert_eq!(
        lines[marker_at + 1].seq,
        1 + lost,
        "gap width matches the counter"
    );
    for pair in lines[marker_at + 1..].windows(2) {
        assert_eq!(pair[1].seq, pair[0].seq + 1, "no gaps after the marker");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_write_tail_is_truncated_before_recovery_appends() {
    let path = scratch("torn");
    // One torn write (a prefix reaches the file, then the error), then
    // the storage heals.
    let plan = IoFaultPlan {
        seed: 9,
        faults: StorageFaults {
            short_write_prob: 1.0,
            ..StorageFaults::default()
        },
        from_op: 1,
        until_op: 2,
    };
    let sink = JsonlSink::create_with_on(
        SharedBackend::from(FaultyStorage::new(plan)),
        &path,
        WalPolicy::default(),
    )
    .unwrap();
    sink.emit(&record(0)); // healthy (op 0)
    sink.emit(&record(1)); // torn: half the line hits the file
    assert!(sink.storage_degraded(), "the tail is dirty");
    sink.emit(&record(2)); // heals: truncate tail, drain ring
    sink.flush();
    assert!(!sink.storage_degraded());
    assert_eq!(
        read_seqs(&path),
        vec![0, 1, 2],
        "no torn half-line survives in the stream"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn noop_fault_plan_wal_is_byte_identical_to_direct_fs() {
    let direct = scratch("ident-direct");
    let wrapped = scratch("ident-wrapped");
    {
        let sink = JsonlSink::create_with(&direct, WalPolicy::wal()).unwrap();
        for seq in 0..50 {
            sink.emit(&record(seq));
        }
    }
    {
        let storage = FaultyStorage::new(IoFaultPlan::disabled());
        let monitor = storage.monitor();
        let sink =
            JsonlSink::create_with_on(SharedBackend::from(storage), &wrapped, WalPolicy::wal())
                .unwrap();
        for seq in 0..50 {
            sink.emit(&record(seq));
        }
        assert_eq!(sink.write_errors(), 0);
        assert!(!sink.storage_degraded());
        assert_eq!(monitor.injected().total(), 0, "nothing ever fired");
        drop(sink);
    }
    assert_eq!(
        std::fs::read(&direct).unwrap(),
        std::fs::read(&wrapped).unwrap(),
        "disabled plan leaves the WAL bit-identical"
    );
    std::fs::remove_file(&direct).ok();
    std::fs::remove_file(&wrapped).ok();
}
