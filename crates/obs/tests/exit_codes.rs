//! `obs_tool` honors the workspace exit-code convention: `0` ok, `1`
//! runtime failure, `2` bad invocation — the shared `jpmd_obs::cli`
//! contract, tested by spawning the real binary. Also pins the
//! `seq_gaps` line of `summary`, which the CI crash-resume smoke greps.

use std::path::PathBuf;
use std::process::{Command, Output};

use jpmd_obs::{JsonlSink, ObsEvent, Telemetry};

fn tool(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_obs_tool"))
        .args(args)
        .output()
        .expect("spawn obs_tool")
}

fn code(output: &Output) -> i32 {
    output.status.code().expect("exit code")
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("jpmd-obs-exit-{}-{name}", std::process::id()))
}

fn telemetry_file(name: &str, messages: u64) -> PathBuf {
    let path = scratch(name);
    let telemetry = Telemetry::new(Box::new(
        JsonlSink::create(&path).expect("create telemetry file"),
    ));
    for i in 0..messages {
        telemetry.emit(ObsEvent::Message {
            text: format!("m{i}"),
        });
    }
    let _ = telemetry.close();
    path
}

#[test]
fn bad_invocations_exit_2_with_usage() {
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["summary"][..],
        &["grep", "file.jsonl", "--wrong", "Period"][..],
    ] {
        let out = tool(args);
        assert_eq!(code(&out), 2, "args {args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "args {args:?}: {stderr}");
    }
}

#[test]
fn runtime_failures_exit_1() {
    let missing = tool(&["summary", "/nonexistent/telemetry.jsonl"]);
    assert_eq!(code(&missing), 1);
    assert!(String::from_utf8_lossy(&missing.stderr).contains("error:"));

    let malformed_path = scratch("malformed.jsonl");
    std::fs::write(&malformed_path, "this is not a telemetry record\n").expect("write file");
    let malformed = tool(&["summary", malformed_path.to_str().unwrap()]);
    assert_eq!(code(&malformed), 1);
    assert!(String::from_utf8_lossy(&malformed.stderr).contains("malformed"));
    std::fs::remove_file(&malformed_path).ok();
}

#[test]
fn summary_of_a_gap_free_stream_exits_0_and_reports_zero_gaps() {
    let path = telemetry_file("clean.jsonl", 5);
    let out = tool(&["summary", path.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The exact line the CI crash-resume smoke greps (`^seq_gaps +0`).
    let gaps = stdout
        .lines()
        .find(|l| l.starts_with("seq_gaps"))
        .expect("summary prints a seq_gaps line");
    assert_eq!(gaps.split_whitespace().last(), Some("0"), "{stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn follow_streams_backlog_then_live_appends() {
    use std::io::Write;

    let path = telemetry_file("follow.jsonl", 4);
    let child = Command::new(env!("CARGO_BIN_EXE_obs_tool"))
        .args([
            "follow",
            path.to_str().unwrap(),
            "--from-end",
            "2",
            "--poll-ms",
            "25",
            "--max-lines",
            "5",
            "--max-secs",
            "30", // safety net only; --max-lines ends the run
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn obs_tool follow");

    // Give the follower time to position and drain its backlog, then
    // append three live records the way a running daemon would.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("reopen WAL");
    for i in 0..3 {
        writeln!(
            f,
            "{}",
            jpmd_obs::ObsRecord {
                seq: 4 + i,
                t_wall_ms: None,
                shard: None,
                event: ObsEvent::Message {
                    text: format!("live{i}"),
                },
            }
            .to_line()
        )
        .expect("append record");
        f.sync_all().expect("sync");
    }
    drop(f);

    let out = child.wait_with_output().expect("follow output");
    assert_eq!(out.status.code(), Some(0), "follow must exit cleanly");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "2 backlog + 3 live: {stdout}");
    assert!(lines[0].contains("m2"), "backlog starts 2 from the end");
    assert!(lines[1].contains("m3"));
    for (i, line) in lines[2..].iter().enumerate() {
        assert!(line.contains(&format!("live{i}")), "{stdout}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn summary_counts_a_manufactured_seq_gap() {
    let path = telemetry_file("gappy.jsonl", 6);
    // Drop a middle line: seq 0,1,3,4,5 has exactly one gap.
    let text = std::fs::read_to_string(&path).expect("read telemetry");
    let kept: Vec<&str> = text
        .lines()
        .enumerate()
        .filter(|(i, _)| *i != 2)
        .map(|(_, l)| l)
        .collect();
    std::fs::write(&path, kept.join("\n")).expect("rewrite telemetry");

    let out = tool(&["summary", path.to_str().unwrap()]);
    assert_eq!(code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let gaps = stdout
        .lines()
        .find(|l| l.starts_with("seq_gaps"))
        .expect("summary prints a seq_gaps line");
    assert_eq!(gaps.split_whitespace().last(), Some("1"), "{stdout}");
    std::fs::remove_file(&path).ok();
}
