//! The observability contract, end to end:
//!
//! * the JSONL stream is a pure function of (trace, method) — two runs
//!   produce byte-identical normalized streams;
//! * attaching telemetry does not perturb the simulation — the report
//!   equals the uninstrumented run's;
//! * the joint method emits exactly one `PolicyDecision` per control
//!   period, carrying the fitted Pareto model and the chosen operating
//!   point;
//! * wall-clock timestamps appear only when a clock is injected.

use jpmd_core::methods::{self, MethodSpec};
use jpmd_core::SimScale;
use jpmd_obs::{MemorySink, NullSink, ObsEvent, ObsRecord, Telemetry};
use jpmd_trace::{Trace, WorkloadBuilder, GIB, MIB};

const DURATION: f64 = 1800.0;
const WARMUP: f64 = 300.0;
const PERIOD: f64 = 300.0;

fn trace(scale: &SimScale) -> Trace {
    WorkloadBuilder::new()
        .data_set_bytes(GIB / 2)
        .rate_bytes_per_sec(4 * MIB)
        .page_bytes(scale.page_bytes)
        .duration_secs(DURATION)
        .seed(42)
        .build()
        .expect("workload generation")
}

fn capture(
    scale: &SimScale,
    spec: &MethodSpec,
    trace: &Trace,
) -> (Vec<ObsRecord>, jpmd_sim::RunReport) {
    let sink = MemorySink::new();
    let telemetry = Telemetry::new(Box::new(sink.clone()));
    let report = methods::run_method_source_with(
        spec,
        scale,
        trace.source(),
        WARMUP,
        DURATION,
        PERIOD,
        &telemetry,
    )
    .expect("in-memory trace source");
    (sink.records(), report)
}

fn suite(scale: &SimScale) -> Vec<MethodSpec> {
    vec![
        methods::always_on(scale),
        methods::power_down(scale, methods::DiskPolicyKind::TwoCompetitive),
        methods::joint(scale),
    ]
}

#[test]
fn jsonl_stream_is_byte_identical_across_runs() {
    let scale = SimScale::small_test();
    let trace = trace(&scale);
    for spec in suite(&scale) {
        let (a, _) = capture(&scale, &spec, &trace);
        let (b, _) = capture(&scale, &spec, &trace);
        assert!(!a.is_empty(), "{}: no events emitted", spec.label);
        let a: Vec<String> = a.iter().map(ObsRecord::normalized_line).collect();
        let b: Vec<String> = b.iter().map(ObsRecord::normalized_line).collect();
        assert_eq!(a, b, "{}: normalized streams diverge", spec.label);
    }
}

#[test]
fn telemetry_does_not_perturb_the_report() {
    let scale = SimScale::small_test();
    let trace = trace(&scale);
    for spec in suite(&scale) {
        let plain =
            methods::run_method_source(&spec, &scale, trace.source(), WARMUP, DURATION, PERIOD)
                .expect("in-memory trace source");
        let (_, observed) = capture(&scale, &spec, &trace);
        assert_eq!(
            plain, observed,
            "{}: telemetry changed the simulation outcome",
            spec.label
        );
        let null = Telemetry::new(Box::new(NullSink));
        let nulled = methods::run_method_source_with(
            &spec,
            &scale,
            trace.source(),
            WARMUP,
            DURATION,
            PERIOD,
            &null,
        )
        .expect("in-memory trace source");
        assert_eq!(
            plain, nulled,
            "{}: null sink changed the outcome",
            spec.label
        );
    }
}

#[test]
fn joint_emits_one_policy_decision_per_period() {
    let scale = SimScale::small_test();
    let trace = trace(&scale);
    let (records, report) = capture(&scale, &methods::joint(&scale), &trace);
    let decisions: Vec<&ObsRecord> = records
        .iter()
        .filter(|r| matches!(r.event, ObsEvent::PolicyDecision { .. }))
        .collect();
    assert!(!report.periods.is_empty());
    assert_eq!(
        decisions.len(),
        report.periods.len(),
        "one PolicyDecision per control period"
    );
    // Decisions on real traffic carry the fitted model and a candidate
    // table; every decision names an operating point.
    let mut fitted = 0;
    for record in &decisions {
        let ObsEvent::PolicyDecision {
            alpha,
            beta,
            timeout_s,
            banks,
            ref candidates,
            ..
        } = record.event
        else {
            unreachable!()
        };
        assert!(banks > 0, "decision must choose a memory size");
        assert!(timeout_s > 0.0, "decision must choose a timeout");
        if !candidates.is_empty() {
            assert!(alpha > 0.0 && beta > 0.0, "fitted model missing");
            fitted += 1;
        }
    }
    assert!(fitted > 0, "no decision carried a candidate table");
    // Periods are also reported by the simulator itself.
    let periods = records
        .iter()
        .filter(|r| matches!(r.event, ObsEvent::Period { .. }))
        .count();
    assert_eq!(periods, report.periods.len());
}

#[test]
fn wall_clock_appears_only_with_an_injected_clock() {
    let scale = SimScale::small_test();
    let trace = trace(&scale);
    let spec = methods::joint(&scale);

    let (records, _) = capture(&scale, &spec, &trace);
    assert!(
        records.iter().all(|r| r.t_wall_ms.is_none()),
        "default telemetry must not read the wall clock"
    );

    let sink = MemorySink::new();
    let telemetry = Telemetry::with_clock(Box::new(sink.clone()), Box::new(|| 1234));
    methods::run_method_source_with(
        &spec,
        &scale,
        trace.source(),
        WARMUP,
        DURATION,
        PERIOD,
        &telemetry,
    )
    .expect("in-memory trace source");
    let stamped = sink.records();
    assert!(!stamped.is_empty());
    assert!(stamped.iter().all(|r| r.t_wall_ms == Some(1234)));
    // …and normalization strips the stamp back off.
    for r in &stamped {
        assert!(!r.normalized_line().contains("1234") || r.to_line().contains("1234"));
        assert!(ObsRecord::from_line(&r.normalized_line())
            .expect("normalized line parses")
            .t_wall_ms
            .is_none());
    }
}

#[test]
fn chaos_telemetry_is_byte_identical_for_equal_fault_plans() {
    // Same FaultPlan seed, same trace: the fault wrappers replay the same
    // injections and the whole telemetry stream — degradations included —
    // is byte-identical after normalization. A different seed diverges.
    use jpmd_faults::{chaos_trace, run_chaos, ChaosConfig};

    let run = |plan_seed: u64| {
        let chaos = ChaosConfig::small_test(plan_seed);
        let trace = chaos_trace(&chaos.scale, chaos.duration_secs, 42);
        let sink = MemorySink::new();
        let telemetry = Telemetry::new(Box::new(sink.clone()));
        let out = run_chaos(&chaos, trace.source(), &telemetry).expect("chaos run completes");
        let lines: Vec<String> = sink
            .records()
            .iter()
            .map(ObsRecord::normalized_line)
            .collect();
        (lines, out)
    };

    let (a_lines, a) = run(1);
    let (b_lines, b) = run(1);
    assert!(!a_lines.is_empty());
    assert!(
        a_lines.iter().any(|l| l.contains("\"Degradation\"")),
        "chaos stream must narrate degradations"
    );
    assert_eq!(
        a_lines, b_lines,
        "equal fault plans must replay identically"
    );
    assert_eq!(a, b);

    let (c_lines, _) = run(2);
    assert_ne!(a_lines, c_lines, "different seeds must inject differently");
}

#[test]
fn sequence_numbers_are_gap_free_per_handle() {
    let scale = SimScale::small_test();
    let trace = trace(&scale);
    let (records, _) = capture(&scale, &methods::joint(&scale), &trace);
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "seq must be 0-based and gap-free");
    }
}
