//! Work-queue parallel execution for experiment suites.
//!
//! [`run_queue`] fans a slice of items out over a fixed pool of scoped
//! worker threads. Each worker pulls the next item off a shared atomic
//! cursor, so long-running items (the joint method over a 3-hour trace)
//! don't serialize behind short ones the way one-thread-per-item spawning
//! did. A panicking task is captured with [`std::panic::catch_unwind`] and
//! surfaces as an `Err` carrying the panic message — the queue keeps
//! draining, so one diverging method no longer aborts a whole figure.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A method run that panicked instead of producing a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodError {
    /// Label of the method that failed.
    pub label: String,
    /// The captured panic message.
    pub message: String,
    /// The last telemetry events the method emitted before dying (JSONL
    /// lines from its bounded in-memory sink). Empty when the run was not
    /// instrumented. The sink lives *outside* the panicking closure, so
    /// these survive the unwind — a flight recorder for the post-mortem.
    pub recent_events: Vec<String>,
}

impl MethodError {
    /// An error with no captured telemetry.
    pub fn new(label: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            message: message.into(),
            recent_events: Vec::new(),
        }
    }

    /// Attaches the events salvaged from the method's telemetry sink.
    #[must_use]
    pub fn with_events(mut self, events: Vec<String>) -> Self {
        self.recent_events = events;
        self
    }
}

impl fmt::Display for MethodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "method '{}' panicked: {}", self.label, self.message)?;
        if !self.recent_events.is_empty() {
            write!(
                f,
                " (last {} telemetry events follow)",
                self.recent_events.len()
            )?;
            for line in &self.recent_events {
                write!(f, "\n  {line}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for MethodError {}

/// Extracts the human-readable message from a panic payload (panics carry
/// `&str` or `String` in practice).
pub fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The worker count used for experiment suites: the machine's available
/// parallelism, falling back to 4 when it cannot be determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// Runs `task` over every item of `items` on up to `workers` threads and
/// returns the results **in item order**. A task that panics yields
/// `Err(message)` for its slot; the remaining items still run.
pub fn run_queue<T, R, F>(items: &[T], workers: usize, task: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let task = &task;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result =
                    catch_unwind(AssertUnwindSafe(|| task(&items[i]))).map_err(panic_message);
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<Result<R, String>>> = (0..n).map(|_| None).collect();
    for (i, result) in rx {
        out[i] = Some(result);
    }
    out.into_iter()
        .map(|slot| slot.expect("every queued item must deliver a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..37).collect();
        let results = run_queue(&items, 8, |&x| {
            // Stagger completion so out-of-order finishes are likely.
            std::thread::sleep(std::time::Duration::from_micros(((x * 7) % 11) * 100));
            x * x
        });
        assert_eq!(results.len(), items.len());
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &((i * i) as u64));
        }
    }

    #[test]
    fn panics_are_captured_and_the_queue_drains() {
        // Silence the default panic hook's backtrace chatter for the
        // intentional panics below.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<u64> = (0..10).collect();
        let results = run_queue(&items, 3, |&x| {
            assert!(x % 4 != 1, "item {x} refused");
            x + 1
        });
        std::panic::set_hook(prev);
        for (i, r) in results.iter().enumerate() {
            if i % 4 == 1 {
                let message = r.as_ref().unwrap_err();
                assert!(message.contains(&format!("item {i} refused")), "{message}");
            } else {
                assert_eq!(r.as_ref().unwrap(), &(i as u64 + 1));
            }
        }
    }

    #[test]
    fn empty_input_and_single_worker() {
        let empty: Vec<u64> = Vec::new();
        assert!(run_queue(&empty, 4, |&x| x).is_empty());
        let results = run_queue(&[1u64, 2, 3], 1, |&x| x * 10);
        assert_eq!(
            results.into_iter().collect::<Result<Vec<_>, _>>().unwrap(),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn method_error_formats_label_and_message() {
        let e = MethodError::new("2TFM-16GB", "queue overflow");
        assert_eq!(e.to_string(), "method '2TFM-16GB' panicked: queue overflow");
    }

    #[test]
    fn method_error_display_includes_salvaged_events() {
        let e = MethodError::new("Joint", "bank index out of range").with_events(vec![
            r#"{"seq":7,"event":{"Message":{"text":"period 3"}}}"#.to_string(),
        ]);
        let s = e.to_string();
        assert!(s.contains("last 1 telemetry events"), "{s}");
        assert!(s.contains("period 3"), "{s}");
    }
}
