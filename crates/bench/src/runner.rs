//! Work-queue parallel execution for experiment suites.
//!
//! [`run_queue`] fans a slice of items out over a fixed pool of scoped
//! worker threads. Each worker pulls the next item off a shared atomic
//! cursor, so long-running items (the joint method over a 3-hour trace)
//! don't serialize behind short ones the way one-thread-per-item spawning
//! did. A panicking task is captured with [`std::panic::catch_unwind`] and
//! surfaces as an `Err` carrying the panic message — the queue keeps
//! draining, so one diverging method no longer aborts a whole figure.
//!
//! [`run_queue_supervised`] adds a supervisor on top: per-task deadlines,
//! hung-worker detection through a cooperative heartbeat, and
//! retry-on-panic so a task that checkpoints (see `jpmd-ckpt`) gets a
//! chance to resume from its last snapshot before the run is declared a
//! [`MethodError`].

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// A method run that panicked instead of producing a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodError {
    /// Label of the method that failed.
    pub label: String,
    /// The captured panic message.
    pub message: String,
    /// The last telemetry events the method emitted before dying (JSONL
    /// lines from its bounded in-memory sink). Empty when the run was not
    /// instrumented. The sink lives *outside* the panicking closure, so
    /// these survive the unwind — a flight recorder for the post-mortem.
    pub recent_events: Vec<String>,
}

impl MethodError {
    /// An error with no captured telemetry.
    pub fn new(label: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            message: message.into(),
            recent_events: Vec::new(),
        }
    }

    /// Attaches the events salvaged from the method's telemetry sink.
    #[must_use]
    pub fn with_events(mut self, events: Vec<String>) -> Self {
        self.recent_events = events;
        self
    }
}

impl fmt::Display for MethodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "method '{}' panicked: {}", self.label, self.message)?;
        if !self.recent_events.is_empty() {
            write!(
                f,
                " (last {} telemetry events follow)",
                self.recent_events.len()
            )?;
            for line in &self.recent_events {
                write!(f, "\n  {line}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for MethodError {}

/// Extracts the human-readable message from a panic payload (panics carry
/// `&str` or `String` in practice).
pub fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The worker count used for experiment suites: the machine's available
/// parallelism, falling back to 4 when it cannot be determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// Runs `task` over every item of `items` on up to `workers` threads and
/// returns the results **in item order**. A task that panics yields
/// `Err(message)` for its slot; the remaining items still run.
pub fn run_queue<T, R, F>(items: &[T], workers: usize, task: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let task = &task;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result =
                    catch_unwind(AssertUnwindSafe(|| task(&items[i]))).map_err(panic_message);
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<Result<R, String>>> = (0..n).map(|_| None).collect();
    for (i, result) in rx {
        out[i] = Some(result);
    }
    out.into_iter()
        .map(|slot| slot.expect("every queued item must deliver a result"))
        .collect()
}

/// How [`run_queue_supervised`] watches its workers.
///
/// All limits are cooperative: a worker thread cannot be killed, so a
/// task that blows its deadline or goes silent past the heartbeat
/// timeout is *flagged* by the monitor (and reported the moment it
/// returns), and a genuinely wedged task still wedges its worker — the
/// supervisor's job is to make that visible, not to pretend `pthread_kill`
/// is safe.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskSupervision {
    /// Wall-clock budget for one attempt; overrun becomes a
    /// [`MethodError`] even if the attempt eventually produced a result.
    pub deadline: Option<Duration>,
    /// Longest tolerated silence between [`TaskContext::beat`] calls
    /// (measured from attempt start for a task that never beats).
    pub heartbeat_timeout: Option<Duration>,
    /// Extra attempts after a panic. The retry closure sees an
    /// incremented [`TaskContext::attempt`], which is its cue to resume
    /// from its latest checkpoint instead of starting cold.
    pub retries: u32,
}

impl TaskSupervision {
    /// No deadline, no heartbeat, no retries — plain `run_queue` behavior
    /// with typed errors.
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the per-attempt deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the heartbeat silence limit.
    #[must_use]
    pub fn with_heartbeat_timeout(mut self, timeout: Duration) -> Self {
        self.heartbeat_timeout = Some(timeout);
        self
    }

    /// Sets the number of retries after a panic.
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }
}

const TRIP_NONE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_HEARTBEAT: u8 = 2;

/// Per-item supervision state shared between a worker and the monitor.
/// Times are milliseconds since the queue started; `u64::MAX` in
/// `started_ms` means "no attempt running".
struct Slot {
    started_ms: AtomicU64,
    last_beat_ms: AtomicU64,
    tripped: AtomicU8,
}

impl Slot {
    fn new() -> Self {
        Self {
            started_ms: AtomicU64::new(u64::MAX),
            last_beat_ms: AtomicU64::new(0),
            tripped: AtomicU8::new(TRIP_NONE),
        }
    }

    fn arm(&self, now_ms: u64) {
        self.last_beat_ms.store(now_ms, Ordering::Relaxed);
        self.tripped.store(TRIP_NONE, Ordering::Relaxed);
        self.started_ms.store(now_ms, Ordering::Relaxed);
    }

    fn disarm(&self) {
        self.started_ms.store(u64::MAX, Ordering::Relaxed);
    }

    fn trip(&self, reason: u8) {
        let _ =
            self.tripped
                .compare_exchange(TRIP_NONE, reason, Ordering::Relaxed, Ordering::Relaxed);
    }
}

/// Handle a supervised task uses to talk back to the supervisor.
pub struct TaskContext<'a> {
    slot: &'a Slot,
    epoch: Instant,
    attempt: u32,
}

impl TaskContext<'_> {
    /// Reports liveness; call at least once per heartbeat window (a
    /// period boundary or checkpoint callback is the natural place).
    pub fn beat(&self) {
        self.slot
            .last_beat_ms
            .store(self.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    /// Which attempt this is, starting at 0. A nonzero attempt follows a
    /// panic — resume from the latest checkpoint if one exists.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }
}

/// Like [`run_queue`], but every task runs under a [`TaskSupervision`]
/// contract and failures come back as typed [`MethodError`]s (labelled
/// via `label_of`). A panicking attempt is retried up to
/// `supervision.retries` times with an incremented
/// [`TaskContext::attempt`]; deadline and heartbeat trips are terminal
/// (retrying a task that is too slow will only be slow again).
pub fn run_queue_supervised<T, R, F, L>(
    items: &[T],
    workers: usize,
    supervision: TaskSupervision,
    label_of: L,
    task: F,
) -> Vec<Result<R, MethodError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &TaskContext<'_>) -> R + Sync,
    L: Fn(&T) -> String + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let epoch = Instant::now();
    let slots: Vec<Slot> = (0..n).map(|_| Slot::new()).collect();
    let next = AtomicUsize::new(0);
    let undelivered = AtomicUsize::new(n);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        // The monitor: flags armed slots that blow the deadline or go
        // silent, so a wedged worker is detected while it is wedged.
        {
            let slots = &slots;
            let undelivered = &undelivered;
            scope.spawn(move || {
                while undelivered.load(Ordering::Relaxed) > 0 {
                    let now = epoch.elapsed().as_millis() as u64;
                    for slot in slots {
                        let started = slot.started_ms.load(Ordering::Relaxed);
                        if started == u64::MAX {
                            continue;
                        }
                        if let Some(deadline) = supervision.deadline {
                            if now.saturating_sub(started) > deadline.as_millis() as u64 {
                                slot.trip(TRIP_DEADLINE);
                            }
                        }
                        if let Some(hb) = supervision.heartbeat_timeout {
                            let last = slot.last_beat_ms.load(Ordering::Relaxed);
                            if now.saturating_sub(last) > hb.as_millis() as u64 {
                                slot.trip(TRIP_HEARTBEAT);
                            }
                        }
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let undelivered = &undelivered;
            let slots = &slots;
            let task = &task;
            let label_of = &label_of;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let slot = &slots[i];
                let mut attempt = 0u32;
                let result = loop {
                    let started = epoch.elapsed();
                    slot.arm(started.as_millis() as u64);
                    let ctx = TaskContext {
                        slot,
                        epoch,
                        attempt,
                    };
                    let outcome = catch_unwind(AssertUnwindSafe(|| task(&items[i], &ctx)));
                    let elapsed = epoch.elapsed() - started;
                    let silence_ms = (epoch.elapsed().as_millis() as u64)
                        .saturating_sub(slot.last_beat_ms.load(Ordering::Relaxed));
                    slot.disarm();
                    let tripped = slot.tripped.load(Ordering::Relaxed);
                    match outcome {
                        Ok(value) => {
                            // Completion-time checks back the monitor up,
                            // so detection never depends on poll timing.
                            let over_deadline = supervision.deadline.is_some_and(|d| elapsed > d)
                                || tripped == TRIP_DEADLINE;
                            let hb_lost = supervision
                                .heartbeat_timeout
                                .is_some_and(|hb| silence_ms > hb.as_millis() as u64)
                                || tripped == TRIP_HEARTBEAT;
                            if over_deadline {
                                break Err(MethodError::new(
                                    label_of(&items[i]),
                                    format!(
                                        "deadline exceeded: attempt ran {:.3} s (budget {:.3} s)",
                                        elapsed.as_secs_f64(),
                                        supervision.deadline.unwrap_or(elapsed).as_secs_f64()
                                    ),
                                ));
                            }
                            if hb_lost {
                                break Err(MethodError::new(
                                    label_of(&items[i]),
                                    format!(
                                        "heartbeat lost: silent for {:.3} s (limit {:.3} s)",
                                        silence_ms as f64 / 1e3,
                                        supervision
                                            .heartbeat_timeout
                                            .unwrap_or_default()
                                            .as_secs_f64()
                                    ),
                                ));
                            }
                            break Ok(value);
                        }
                        Err(payload) => {
                            let message = panic_message(payload);
                            if attempt < supervision.retries {
                                attempt += 1;
                                continue;
                            }
                            break Err(MethodError::new(
                                label_of(&items[i]),
                                format!(
                                    "panicked on attempt {}/{}: {message}",
                                    attempt + 1,
                                    supervision.retries + 1
                                ),
                            ));
                        }
                    }
                };
                let sent = tx.send((i, result));
                undelivered.fetch_sub(1, Ordering::Relaxed);
                if sent.is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<Result<R, MethodError>>> = (0..n).map(|_| None).collect();
    for (i, result) in rx {
        out[i] = Some(result);
    }
    out.into_iter()
        .map(|slot| slot.expect("every supervised item must deliver a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..37).collect();
        let results = run_queue(&items, 8, |&x| {
            // Stagger completion so out-of-order finishes are likely.
            std::thread::sleep(std::time::Duration::from_micros(((x * 7) % 11) * 100));
            x * x
        });
        assert_eq!(results.len(), items.len());
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &((i * i) as u64));
        }
    }

    #[test]
    fn panics_are_captured_and_the_queue_drains() {
        // Silence the default panic hook's backtrace chatter for the
        // intentional panics below.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<u64> = (0..10).collect();
        let results = run_queue(&items, 3, |&x| {
            assert!(x % 4 != 1, "item {x} refused");
            x + 1
        });
        std::panic::set_hook(prev);
        for (i, r) in results.iter().enumerate() {
            if i % 4 == 1 {
                let message = r.as_ref().unwrap_err();
                assert!(message.contains(&format!("item {i} refused")), "{message}");
            } else {
                assert_eq!(r.as_ref().unwrap(), &(i as u64 + 1));
            }
        }
    }

    #[test]
    fn empty_input_and_single_worker() {
        let empty: Vec<u64> = Vec::new();
        assert!(run_queue(&empty, 4, |&x| x).is_empty());
        let results = run_queue(&[1u64, 2, 3], 1, |&x| x * 10);
        assert_eq!(
            results.into_iter().collect::<Result<Vec<_>, _>>().unwrap(),
            vec![10, 20, 30]
        );
    }

    fn supervised<T: Sync, R: Send>(
        items: &[T],
        supervision: TaskSupervision,
        task: impl Fn(&T, &TaskContext<'_>) -> R + Sync,
    ) -> Vec<Result<R, MethodError>> {
        run_queue_supervised(items, 2, supervision, |_| "task".to_string(), task)
    }

    #[test]
    fn supervised_tasks_succeed_without_limits() {
        let items: Vec<u64> = (0..5).collect();
        let results = supervised(&items, TaskSupervision::none(), |&x, _| x * 2);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &(i as u64 * 2));
        }
    }

    #[test]
    fn a_panicking_attempt_is_retried_and_resumes() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items = [7u64];
        let results = supervised(
            &items,
            TaskSupervision::none().with_retries(2),
            |&x, ctx| {
                // Attempts 0 and 1 die; attempt 2 "resumes" and reports
                // which attempt carried it home.
                assert!(ctx.attempt() >= 2, "attempt {} crashed", ctx.attempt());
                (x, ctx.attempt())
            },
        );
        std::panic::set_hook(prev);
        assert_eq!(results[0].as_ref().unwrap(), &(7, 2));
    }

    #[test]
    fn retries_exhausted_is_a_typed_method_error() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items = [1u64];
        let results = supervised(
            &items,
            TaskSupervision::none().with_retries(1),
            |_, _| -> u64 { panic!("always broken") },
        );
        std::panic::set_hook(prev);
        let e = results[0].as_ref().unwrap_err();
        assert_eq!(e.label, "task");
        assert!(e.message.contains("attempt 2/2"), "{}", e.message);
        assert!(e.message.contains("always broken"), "{}", e.message);
    }

    #[test]
    fn deadline_overrun_is_reported() {
        let items = [1u64];
        let results = supervised(
            &items,
            TaskSupervision::none().with_deadline(Duration::from_millis(10)),
            |&x, _| {
                std::thread::sleep(Duration::from_millis(60));
                x
            },
        );
        let e = results[0].as_ref().unwrap_err();
        assert!(e.message.contains("deadline exceeded"), "{}", e.message);
    }

    #[test]
    fn a_silent_task_trips_the_heartbeat_and_a_beating_one_does_not() {
        let supervision = TaskSupervision::none().with_heartbeat_timeout(Duration::from_millis(40));
        let items = [1u64];

        let silent = supervised(&items, supervision, |&x, _| {
            std::thread::sleep(Duration::from_millis(120));
            x
        });
        let e = silent[0].as_ref().unwrap_err();
        assert!(e.message.contains("heartbeat lost"), "{}", e.message);

        let beating = supervised(&items, supervision, |&x, ctx| {
            for _ in 0..12 {
                std::thread::sleep(Duration::from_millis(10));
                ctx.beat();
            }
            x
        });
        assert_eq!(beating[0].as_ref().unwrap(), &1);
    }

    #[test]
    fn method_error_formats_label_and_message() {
        let e = MethodError::new("2TFM-16GB", "queue overflow");
        assert_eq!(e.to_string(), "method '2TFM-16GB' panicked: queue overflow");
    }

    #[test]
    fn method_error_display_includes_salvaged_events() {
        let e = MethodError::new("Joint", "bank index out of range").with_events(vec![
            r#"{"seq":7,"event":{"Message":{"text":"period 3"}}}"#.to_string(),
        ]);
        let s = e.to_string();
        assert!(s.contains("last 1 telemetry events"), "{s}");
        assert!(s.contains("period 3"), "{s}");
    }
}
