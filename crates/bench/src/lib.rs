//! Experiment harness for `jpmd`: regenerates every table and figure of
//! the paper's evaluation (TCAD'06 §V; superset of DATE'05 §4).
//!
//! Each `fig*`/`table*` binary in `src/bin/` calls into this library,
//! prints the same rows/series the paper reports (normalized against the
//! always-on method), and drops a machine-readable copy under `results/`.
//!
//! Absolute joules will not match the authors' testbed — the disk is a
//! DiskSim-style model and the workload a SPECWeb99 substitute (see
//! `DESIGN.md`) — but the *shapes* are asserted in `EXPERIMENTS.md`:
//! who wins, by roughly what factor, and where the crossovers fall.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runner;

pub use experiments::{ExperimentConfig, WorkloadPoint};
pub use report::{write_json, Row, Table};
pub use runner::{run_queue, run_queue_supervised, MethodError, TaskContext, TaskSupervision};
