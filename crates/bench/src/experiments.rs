//! The paper's evaluation experiments (§V), one function per table/figure.

use jpmd_core::{methods, JointConfig, JointPolicy, SimScale};
use jpmd_disk::SpinDownPolicy;
use jpmd_mem::IdlePolicy;
use jpmd_obs::{MemorySink, Telemetry};
use jpmd_sim::{run_simulation, RunReport};
use jpmd_stats::Pareto;
use jpmd_trace::{Trace, WorkloadBuilder, GIB, MIB};

use crate::report::Table;
use crate::runner::{self, MethodError};

/// Shared experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Hardware scale (page/bank geometry + device models).
    pub scale: SimScale,
    /// Warm-up excluded from measurements, s.
    pub warmup_secs: f64,
    /// Total simulated time, s.
    pub duration_secs: f64,
    /// Control-period length `T`, s.
    pub period_secs: f64,
    /// Workload seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The standard configuration: 1 h warm-up, 2 h measured, 10 min
    /// periods (paper Table II timing).
    pub fn standard() -> Self {
        Self {
            scale: SimScale::default(),
            warmup_secs: 3600.0,
            duration_secs: 3.0 * 3600.0,
            period_secs: 600.0,
            seed: 42,
        }
    }

    /// A faster configuration for smoke runs (30 min warm-up, 1 h
    /// measured).
    pub fn quick() -> Self {
        Self {
            warmup_secs: 1800.0,
            duration_secs: 3.0 * 1800.0,
            ..Self::standard()
        }
    }

    /// Parses `--quick` from the command line.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Self::quick()
        } else {
            Self::standard()
        }
    }
}

/// One workload point in the evaluation space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadPoint {
    /// Data-set size, GiB.
    pub data_gb: u64,
    /// Request rate, MiB/s.
    pub rate_mb: u64,
    /// Popularity fraction (hot-set size receiving 90 % of accesses).
    pub popularity: f64,
}

impl WorkloadPoint {
    /// The paper's default point: 16 GB, 100 MB/s, popularity 0.1.
    pub fn default_point() -> Self {
        Self {
            data_gb: 16,
            rate_mb: 100,
            popularity: 0.1,
        }
    }
}

/// Generates the trace for one workload point.
pub fn make_trace(cfg: &ExperimentConfig, point: WorkloadPoint) -> Trace {
    WorkloadBuilder::new()
        .data_set_bytes(point.data_gb * GIB)
        .rate_bytes_per_sec(point.rate_mb * MIB)
        .popularity(point.popularity)
        .page_bytes(cfg.scale.page_bytes)
        .duration_secs(cfg.duration_secs)
        .seed(cfg.seed)
        .build()
        .expect("workload generation")
}

/// Runs every method of `suite` over `trace` on the work-queue runner
/// (bounded by the machine's parallelism) and returns the outcomes in
/// suite order. A method that panics yields an `Err` naming the method and
/// carrying the panic message; the rest of the suite still runs.
fn run_suite_parallel(
    cfg: &ExperimentConfig,
    suite: &[methods::MethodSpec],
    trace: &Trace,
) -> Vec<Result<RunReport, MethodError>> {
    // One bounded in-memory sink per method, created *before* the queue
    // closures: a sink made inside a panicking task would unwind with it,
    // but these are shared by handle, so the last events a dying method
    // emitted survive and ride along on its error.
    let sinks: Vec<MemorySink> = suite.iter().map(|_| MemorySink::bounded(32)).collect();
    let items: Vec<(usize, &methods::MethodSpec)> = suite.iter().enumerate().collect();
    runner::run_queue(&items, runner::default_workers(), |&(i, spec)| {
        let telemetry = Telemetry::new(Box::new(sinks[i].clone()));
        run_with(cfg, spec, trace, &telemetry)
    })
    .into_iter()
    .zip(suite.iter().zip(&sinks))
    .map(|(result, (spec, sink))| {
        result.map_err(|message| {
            MethodError::new(spec.label.clone(), message).with_events(sink.lines())
        })
    })
    .collect()
}

fn run(cfg: &ExperimentConfig, spec: &methods::MethodSpec, trace: &Trace) -> RunReport {
    run_with(cfg, spec, trace, &Telemetry::disabled())
}

fn run_with(
    cfg: &ExperimentConfig,
    spec: &methods::MethodSpec,
    trace: &Trace,
    telemetry: &Telemetry,
) -> RunReport {
    methods::run_method_source_with(
        spec,
        &cfg.scale,
        trace.source(),
        cfg.warmup_secs,
        cfg.duration_secs,
        cfg.period_secs,
        telemetry,
    )
    .expect("in-memory trace sources cannot fail")
}

/// The paper's FM sizes, GiB.
pub const FM_SIZES_GB: [u64; 5] = [8, 16, 32, 64, 128];

/// Fig. 7: all 16 methods across data-set sizes {4, 8, 16, 32, 64} GB at
/// 100 MB/s, popularity 0.1. Returns six tables — (a) total energy %,
/// (b) disk energy %, (c) memory energy %, (d) average latency \[ms\],
/// (e) disk utilization %, (f) long-latency requests per second.
///
/// Methods whose disk demand exceeds the bandwidth (utilization > 100 %)
/// get `NaN` cells, shown as `-`, matching the omitted bars in the paper.
pub fn fig7(cfg: &ExperimentConfig) -> Vec<Table> {
    let data_sets = [4u64, 8, 16, 32, 64];
    let suite = methods::paper_suite(&cfg.scale, &FM_SIZES_GB);
    let columns: Vec<String> = data_sets.iter().map(|d| format!("{d}GB")).collect();
    let titles = [
        "Fig. 7(a) total energy [% of always-on]",
        "Fig. 7(b) disk energy [% of always-on]",
        "Fig. 7(c) memory energy [% of always-on]",
        "Fig. 7(d) average latency [ms]",
        "Fig. 7(e) disk utilization [%]",
        "Fig. 7(f) long-latency requests [1/s]",
    ];
    let mut tables: Vec<Table> = titles
        .iter()
        .map(|t| Table::new(*t, columns.clone()))
        .collect();

    // cells[metric][method] = per-data-set values
    let mut cells = vec![vec![Vec::new(); suite.len()]; titles.len()];
    for &data_gb in &data_sets {
        let trace = make_trace(
            cfg,
            WorkloadPoint {
                data_gb,
                rate_mb: 100,
                popularity: 0.1,
            },
        );
        let reports = run_suite_parallel(cfg, &suite, &trace);
        // The suite leads with the always-on baseline everything else is
        // normalized against; without it the whole column is meaningless.
        let baseline = reports[0].as_ref().ok().cloned();
        for (mi, (spec, outcome)) in suite.iter().zip(&reports).enumerate() {
            match (outcome, &baseline) {
                (Ok(r), Some(baseline)) => {
                    let saturated = r.utilization > 1.0;
                    let metrics = [
                        100.0 * r.normalized_total(baseline),
                        100.0 * r.normalized_disk(baseline),
                        100.0 * r.normalized_mem(baseline),
                        r.mean_latency_secs * 1e3,
                        r.utilization * 100.0,
                        r.long_latency_per_sec(),
                    ];
                    for (t, &m) in metrics.iter().enumerate() {
                        cells[t][mi].push(if saturated { f64::NAN } else { m });
                    }
                    eprintln!("fig7: {} @ {}GB done", spec.label, data_gb);
                }
                (Err(e), _) => {
                    eprintln!("fig7: @ {data_gb}GB FAILED — {e}");
                    for column in cells.iter_mut() {
                        column[mi].push(f64::NAN);
                    }
                }
                (Ok(_), None) => {
                    eprintln!(
                        "fig7: {} @ {data_gb}GB dropped (baseline failed)",
                        spec.label
                    );
                    for column in cells.iter_mut() {
                        column[mi].push(f64::NAN);
                    }
                }
            }
        }
    }
    for (t, table) in tables.iter_mut().enumerate() {
        for (mi, spec) in suite.iter().enumerate() {
            table.push(spec.label.clone(), cells[t][mi].clone());
        }
    }
    tables
}

/// Fig. 8(a,b): energy % and long-latency rate across data rates
/// {5, 50, 100, 150, 200} MB/s at 16 GB, popularity 0.1.
pub fn fig8_rate(cfg: &ExperimentConfig) -> Vec<Table> {
    let rates = [5u64, 50, 100, 150, 200];
    sweep(
        cfg,
        "Fig. 8(a) total energy [% of always-on]",
        "Fig. 8(b) long-latency requests [1/s]",
        rates
            .iter()
            .map(|&rate_mb| {
                (
                    format!("{rate_mb}MB/s"),
                    WorkloadPoint {
                        data_gb: 16,
                        rate_mb,
                        popularity: 0.1,
                    },
                )
            })
            .collect(),
    )
}

/// Fig. 8(c,d): energy % and long-latency rate across popularity
/// {0.05, 0.1, 0.2, 0.4, 0.6} at 16 GB, 5 MB/s ("high data rates hide the
/// effect of data popularity").
pub fn fig8_popularity(cfg: &ExperimentConfig) -> Vec<Table> {
    let pops = [0.05, 0.1, 0.2, 0.4, 0.6];
    sweep(
        cfg,
        "Fig. 8(c) total energy [% of always-on]",
        "Fig. 8(d) long-latency requests [1/s]",
        pops.iter()
            .map(|&popularity| {
                (
                    format!("{popularity}"),
                    WorkloadPoint {
                        data_gb: 16,
                        rate_mb: 5,
                        popularity,
                    },
                )
            })
            .collect(),
    )
}

fn sweep(
    cfg: &ExperimentConfig,
    energy_title: &str,
    latency_title: &str,
    points: Vec<(String, WorkloadPoint)>,
) -> Vec<Table> {
    let suite = methods::paper_suite(&cfg.scale, &FM_SIZES_GB);
    let columns: Vec<String> = points.iter().map(|(l, _)| l.clone()).collect();
    let mut energy = Table::new(energy_title, columns.clone());
    let mut latency = Table::new(latency_title, columns);
    let mut e_cells = vec![Vec::new(); suite.len()];
    let mut l_cells = vec![Vec::new(); suite.len()];
    for (label, point) in &points {
        let trace = make_trace(cfg, *point);
        let reports = run_suite_parallel(cfg, &suite, &trace);
        let baseline = reports[0].as_ref().ok().cloned();
        for (mi, (spec, outcome)) in suite.iter().zip(&reports).enumerate() {
            match (outcome, &baseline) {
                (Ok(r), Some(baseline)) => {
                    let saturated = r.utilization > 1.0;
                    e_cells[mi].push(if saturated {
                        f64::NAN
                    } else {
                        100.0 * r.normalized_total(baseline)
                    });
                    l_cells[mi].push(if saturated {
                        f64::NAN
                    } else {
                        r.long_latency_per_sec()
                    });
                    eprintln!("sweep: {} @ {} done", spec.label, label);
                }
                (Err(e), _) => {
                    eprintln!("sweep: @ {label} FAILED — {e}");
                    e_cells[mi].push(f64::NAN);
                    l_cells[mi].push(f64::NAN);
                }
                (Ok(_), None) => {
                    eprintln!("sweep: {} @ {label} dropped (baseline failed)", spec.label);
                    e_cells[mi].push(f64::NAN);
                    l_cells[mi].push(f64::NAN);
                }
            }
        }
    }
    for (mi, spec) in suite.iter().enumerate() {
        energy.push(spec.label.clone(), e_cells[mi].clone());
        latency.push(spec.label.clone(), l_cells[mi].clone());
    }
    vec![energy, latency]
}

/// Table III: disk accesses per method and data set, plus the
/// method-independent memory-access row.
pub fn table3(cfg: &ExperimentConfig) -> Table {
    let data_sets = [4u64, 8, 16, 32, 64];
    let columns: Vec<String> = data_sets.iter().map(|d| format!("{d}GB")).collect();
    let mut table = Table::new(
        "Table III: disk accesses (rows) and memory accesses (last row)",
        columns,
    );
    let mut specs = vec![methods::joint(&cfg.scale)];
    for gb in FM_SIZES_GB {
        specs.push(methods::fixed_memory(
            &cfg.scale,
            methods::DiskPolicyKind::TwoCompetitive,
            gb,
        ));
    }
    specs.push(methods::power_down(
        &cfg.scale,
        methods::DiskPolicyKind::TwoCompetitive,
    ));
    specs.push(methods::disable(
        &cfg.scale,
        methods::DiskPolicyKind::TwoCompetitive,
    ));
    specs.push(methods::always_on(&cfg.scale));

    let mut cells = vec![Vec::new(); specs.len()];
    let mut memory_accesses = Vec::new();
    for &data_gb in &data_sets {
        let trace = make_trace(
            cfg,
            WorkloadPoint {
                data_gb,
                rate_mb: 100,
                popularity: 0.1,
            },
        );
        let reports = runner::run_queue(&specs, runner::default_workers(), |spec| {
            run(cfg, spec, &trace)
        });
        for (mi, (spec, outcome)) in specs.iter().zip(reports).enumerate() {
            match outcome {
                Ok(r) => {
                    cells[mi].push(r.disk_page_accesses as f64);
                    if mi == specs.len() - 1 {
                        memory_accesses.push(r.cache_accesses as f64);
                    }
                    eprintln!("table3: {} @ {}GB done", spec.label, data_gb);
                }
                Err(message) => {
                    eprintln!(
                        "table3: {} @ {}GB FAILED — {}",
                        spec.label, data_gb, message
                    );
                    cells[mi].push(f64::NAN);
                    if mi == specs.len() - 1 {
                        memory_accesses.push(f64::NAN);
                    }
                }
            }
        }
    }
    for (mi, spec) in specs.iter().enumerate() {
        table.push(spec.label.clone(), cells[mi].clone());
    }
    table.push("MA (all methods)", memory_accesses);
    table
}

/// Table IV: joint-method sensitivity to the period length.
pub fn table4(cfg: &ExperimentConfig) -> Table {
    let periods_min = [5.0, 10.0, 20.0, 30.0];
    let mut table = Table::new(
        "Table IV: joint method vs period length (16 GB, 100 MB/s)",
        vec![
            "total%".into(),
            "disk%".into(),
            "mem%".into(),
            "long/s".into(),
        ],
    );
    for &minutes in &periods_min {
        // The warm-up must cover the joint method's cold first decisions
        // and the measured window several control periods, whatever the
        // period length — otherwise long periods are penalized by the
        // window, not by the policy.
        let period = minutes * 60.0;
        let mut c = *cfg;
        c.period_secs = period;
        c.warmup_secs = cfg.warmup_secs.max(3.0 * period);
        c.duration_secs = c.warmup_secs + (cfg.duration_secs - cfg.warmup_secs).max(6.0 * period);
        let trace = make_trace(&c, WorkloadPoint::default_point());
        let baseline = run(&c, &methods::always_on(&c.scale), &trace);
        let r = run(&c, &methods::joint(&c.scale), &trace);
        table.push(
            format!("T = {minutes} min"),
            vec![
                100.0 * r.normalized_total(&baseline),
                100.0 * r.normalized_disk(&baseline),
                100.0 * r.normalized_mem(&baseline),
                r.long_latency_per_sec(),
            ],
        );
        eprintln!("table4: T={minutes}min done");
    }
    table
}

/// Table V: joint-method sensitivity to the bank size (the memory resize
/// granularity), {16, 64, 256, 1024} MB.
pub fn table5(cfg: &ExperimentConfig) -> Table {
    let bank_sizes_mb = [16u64, 64, 256, 1024];
    let mut table = Table::new(
        "Table V: joint method vs bank size (16 GB, 100 MB/s)",
        vec![
            "total%".into(),
            "disk%".into(),
            "mem%".into(),
            "long/s".into(),
        ],
    );
    for &bank_mib in &bank_sizes_mb {
        let mut c = *cfg;
        c.scale = SimScale {
            bank_mib,
            ..cfg.scale
        };
        let trace = make_trace(&c, WorkloadPoint::default_point());
        let baseline = run(&c, &methods::always_on(&c.scale), &trace);
        let r = run(&c, &methods::joint(&c.scale), &trace);
        table.push(
            format!("{bank_mib} MB banks"),
            vec![
                100.0 * r.normalized_total(&baseline),
                100.0 * r.normalized_disk(&baseline),
                100.0 * r.normalized_mem(&baseline),
                r.long_latency_per_sec(),
            ],
        );
        eprintln!("table5: {bank_mib}MB banks done");
    }
    table
}

/// Fig. 9: per-period disk requests and mean idle length at fixed 8 GB and
/// 16 GB memories on a 32 GB data set — the prediction-validity time
/// series. Also returns the summary of consecutive-period variation.
pub fn fig9(cfg: &ExperimentConfig) -> (Table, Table) {
    let trace = make_trace(
        cfg,
        WorkloadPoint {
            data_gb: 32,
            rate_mb: 100,
            popularity: 0.1,
        },
    );
    let mut series = Table::new(
        "Fig. 9: per-period disk requests and mean idle length",
        vec![
            "req@8GB".into(),
            "idle_ms@8GB".into(),
            "req@16GB".into(),
            "idle_ms@16GB".into(),
        ],
    );
    let specs: Vec<_> = [8u64, 16]
        .iter()
        .map(|&gb| methods::fixed_memory(&cfg.scale, methods::DiskPolicyKind::TwoCompetitive, gb))
        .collect();
    let sinks: Vec<MemorySink> = specs.iter().map(|_| MemorySink::bounded(32)).collect();
    let items: Vec<(usize, &methods::MethodSpec)> = specs.iter().enumerate().collect();
    let runs: Vec<RunReport> = runner::run_queue(&items, 2, |&(i, spec)| {
        let telemetry = Telemetry::new(Box::new(sinks[i].clone()));
        run_with(cfg, spec, &trace, &telemetry)
    })
    .into_iter()
    .zip(specs.iter().zip(&sinks))
    .map(|(outcome, (spec, sink))| {
        // Both fixed-memory series are required to build the figure, so
        // a failed run is fatal here — but it now names the method and
        // dumps its final telemetry events.
        let r = outcome.unwrap_or_else(|message| {
            panic!(
                "{}",
                MethodError::new(spec.label.clone(), message).with_events(sink.lines())
            )
        });
        eprintln!("fig9: {} done", spec.label);
        r
    })
    .collect();
    let periods = runs[0].periods.len().min(runs[1].periods.len());
    for p in 0..periods {
        let a = &runs[0].periods[p].observation;
        let b = &runs[1].periods[p].observation;
        series.push(
            format!("period {:>2}", p + 1),
            vec![
                a.disk_page_accesses as f64,
                a.idle.mean * 1e3,
                b.disk_page_accesses as f64,
                b.idle.mean * 1e3,
            ],
        );
    }

    let mut summary = Table::new(
        "Fig. 9 summary: consecutive-period variation",
        vec!["max".into(), "mean".into()],
    );
    for (r, label) in runs.iter().zip(["requests@8GB", "requests@16GB"]) {
        let counts: Vec<f64> = r
            .periods
            .iter()
            .skip(1) // drop the cold first period
            .map(|p| p.observation.disk_page_accesses as f64)
            .collect();
        let rel: Vec<f64> = counts
            .windows(2)
            .map(|w| (w[1] - w[0]).abs() / w[0].max(1.0))
            .collect();
        let max = rel.iter().copied().fold(0.0, f64::max);
        let mean = rel.iter().sum::<f64>() / rel.len().max(1) as f64;
        summary.push(label, vec![max, mean]);
    }
    (series, summary)
}

/// Fig. 5: cumulative probability of two Pareto distributions with
/// `α₁ > α₂` and `β₁ < β₂` — the left (short-idle) and right (long-idle)
/// curves of the paper.
pub fn fig5() -> Table {
    let short = Pareto::new(2.5, 0.2).expect("valid parameters");
    let long = Pareto::new(1.3, 1.0).expect("valid parameters");
    let mut table = Table::new(
        "Fig. 5: Pareto CDFs (alpha1=2.5, beta1=0.2 vs alpha2=1.3, beta2=1.0)",
        vec!["cdf(a1,b1)".into(), "cdf(a2,b2)".into()],
    );
    let mut x = 0.1f64;
    while x <= 120.0 {
        table.push(format!("t = {x:>7.1} s"), vec![short.cdf(x), long.cdf(x)]);
        x *= 2.0;
    }
    table
}

/// Ablation A: the performance constraints (eq. 6 + utilization limit) on
/// vs off, at the default workload point.
pub fn ablation_constraints(cfg: &ExperimentConfig) -> Table {
    let trace = make_trace(cfg, WorkloadPoint::default_point());
    let baseline = run(cfg, &methods::always_on(&cfg.scale), &trace);
    let mut table = Table::new(
        "Ablation: performance constraints on/off (16 GB, 100 MB/s)",
        vec![
            "total%".into(),
            "util%".into(),
            "long/s".into(),
            "lat_ms".into(),
        ],
    );
    for (label, enforce) in [("joint (constrained)", true), ("joint (power-only)", false)] {
        let mut sim = cfg
            .scale
            .sim_config(IdlePolicy::Nap, cfg.scale.total_banks());
        sim.warmup_secs = cfg.warmup_secs;
        sim.period_secs = cfg.period_secs;
        let mut jcfg = JointConfig::from_sim(&sim);
        jcfg.enforce_performance = enforce;
        let mut controller = JointPolicy::new(jcfg);
        let r = run_simulation(
            &sim,
            SpinDownPolicy::controlled(f64::INFINITY),
            &mut controller,
            &trace,
            cfg.duration_secs,
            label,
        );
        table.push(
            label,
            vec![
                100.0 * r.normalized_total(&baseline),
                r.utilization * 100.0,
                r.long_latency_per_sec(),
                r.mean_latency_secs * 1e3,
            ],
        );
        eprintln!("ablation constraints: {label} done");
    }
    table
}

/// Ablation C: power-aware cache management (related work \[6\]/\[36\]) —
/// the plain disable method (DS) versus the consolidating variant (DSC,
/// which migrates pages off nearly-expired banks) and versus bank-aware
/// replacement. Run at a low data rate so bank idleness actually reaches
/// the 10-minute disable threshold.
pub fn ablation_power_aware(cfg: &ExperimentConfig) -> Table {
    use jpmd_mem::Replacement;
    let point = WorkloadPoint {
        data_gb: 16,
        rate_mb: 5,
        popularity: 0.1,
    };
    let trace = make_trace(cfg, point);
    let baseline = run(cfg, &methods::always_on(&cfg.scale), &trace);
    let mut table = Table::new(
        "Ablation: power-aware cache management (16 GB, 5 MB/s)",
        vec![
            "total%".into(),
            "disk%".into(),
            "mem%".into(),
            "long/s".into(),
            "lat_ms".into(),
        ],
    );
    let mut specs = vec![
        methods::power_down(&cfg.scale, methods::DiskPolicyKind::TwoCompetitive),
        methods::disable(&cfg.scale, methods::DiskPolicyKind::TwoCompetitive),
        methods::disable_consolidated(&cfg.scale, methods::DiskPolicyKind::TwoCompetitive),
        methods::cascade(&cfg.scale, methods::DiskPolicyKind::TwoCompetitive),
    ];
    let mut bank_aware = methods::disable(&cfg.scale, methods::DiskPolicyKind::TwoCompetitive);
    bank_aware.label = "2TDS+BankAware".to_string();
    bank_aware.replacement = Replacement::BankAware;
    specs.push(bank_aware);
    for spec in &specs {
        let r = run(cfg, spec, &trace);
        table.push(
            spec.label.clone(),
            vec![
                100.0 * r.normalized_total(&baseline),
                100.0 * r.normalized_disk(&baseline),
                100.0 * r.normalized_mem(&baseline),
                r.long_latency_per_sec(),
                r.mean_latency_secs * 1e3,
            ],
        );
        eprintln!("ablation power-aware: {} done", spec.label);
    }
    table
}

/// Ablation D: disk timeout-policy families through the *full* simulator
/// on one workload — the paper's 2T/AD joined by the predictive baselines
/// (EWMA idle prediction, session-based adaptation) and the joint
/// controller's Pareto timeout. A low-rate workload gives every policy
/// real spin-down opportunities.
pub fn ablation_timeout_policies(cfg: &ExperimentConfig) -> Table {
    use jpmd_disk::SpinDownPolicy as P;
    let point = WorkloadPoint {
        data_gb: 16,
        rate_mb: 5,
        popularity: 0.1,
    };
    let trace = make_trace(cfg, point);
    let mut table = Table::new(
        "Ablation: disk timeout families on FM-16GB (16 GB, 5 MB/s)",
        vec![
            "disk_kJ".into(),
            "spins".into(),
            "long/s".into(),
            "p99_lat_s".into(),
        ],
    );
    let policies: Vec<(&str, P)> = vec![
        ("always-on", P::AlwaysOn),
        ("2T (break-even)", P::two_competitive(&cfg.scale.disk_power)),
        ("AD (Douglis)", P::adaptive()),
        ("PE (EWMA predict)", P::predictive_ewma(0.3, 0.5)),
        ("SS (session)", P::session(1.0, 0.3, &cfg.scale.disk_power)),
    ];
    for (label, policy) in policies {
        let spec = methods::fixed_memory(&cfg.scale, methods::DiskPolicyKind::TwoCompetitive, 16);
        let mut sim = cfg.scale.sim_config(spec.mem_policy, spec.initial_banks);
        sim.warmup_secs = cfg.warmup_secs;
        sim.period_secs = cfg.period_secs;
        let r = run_simulation(
            &sim,
            policy,
            &mut jpmd_sim::NullController,
            &trace,
            cfg.duration_secs,
            label,
        );
        table.push(
            label,
            vec![
                r.energy.disk.total_j() / 1e3,
                r.spin_downs as f64,
                r.long_latency_per_sec(),
                r.request_latency_p99_secs,
            ],
        );
        eprintln!("ablation timeout: {label} done");
    }
    table
}

/// Ablation B: sensitivity to the aggregation window `w`.
pub fn ablation_window(cfg: &ExperimentConfig) -> Table {
    let trace = make_trace(cfg, WorkloadPoint::default_point());
    let baseline = run(cfg, &methods::always_on(&cfg.scale), &trace);
    let mut table = Table::new(
        "Ablation: aggregation window w (16 GB, 100 MB/s)",
        vec!["total%".into(), "long/s".into()],
    );
    for w in [0.05, 0.1, 0.5, 1.0] {
        let mut sim = cfg
            .scale
            .sim_config(IdlePolicy::Nap, cfg.scale.total_banks());
        sim.warmup_secs = cfg.warmup_secs;
        sim.period_secs = cfg.period_secs;
        sim.aggregation_window_secs = w;
        let mut controller = JointPolicy::new(JointConfig::from_sim(&sim));
        let r = run_simulation(
            &sim,
            SpinDownPolicy::controlled(f64::INFINITY),
            &mut controller,
            &trace,
            cfg.duration_secs,
            "joint",
        );
        table.push(
            format!("w = {w} s"),
            vec![
                100.0 * r.normalized_total(&baseline),
                r.long_latency_per_sec(),
            ],
        );
        eprintln!("ablation window: w={w} done");
    }
    table
}
