//! Write-back caching and the flush daemon — the deferred-write study of
//! the paper's related work (Papathanasiou & Scott's *energy efficient
//! prefetching and caching* \[29\]: lengthen disk idle intervals by batching
//! I/O).
//!
//! A 30 %-write workload runs under the 2TFM-16GB and Joint methods while
//! the dirty-page sync interval sweeps from 5 s to 600 s (and "never").
//! Expected shape: short sync intervals chop disk idleness into sub-
//! break-even fragments (few spin-downs, more disk energy); long intervals
//! batch writes into rare bursts the spin-down policy can sleep between —
//! the same reason the paper's aggregation window exists. Pass `--quick`
//! for a shorter run.

use jpmd_bench::{write_json, ExperimentConfig, Table};
use jpmd_core::{methods, JointPolicy};
use jpmd_disk::SpinDownPolicy;
use jpmd_sim::{run_simulation, NullController, RunReport};
use jpmd_trace::{WorkloadBuilder, GIB, MIB};

fn main() -> std::io::Result<()> {
    let cfg = ExperimentConfig::from_args();
    let trace = WorkloadBuilder::new()
        .data_set_bytes(16 * GIB)
        .rate_bytes_per_sec(20 * MIB)
        .popularity(0.1)
        .write_fraction(0.3)
        .page_bytes(cfg.scale.page_bytes)
        .duration_secs(cfg.duration_secs)
        .seed(cfg.seed)
        .build()
        .expect("workload generation");

    let mut table = Table::new(
        "Write-back flush-interval sweep (16 GB, 20 MB/s, 30% writes)",
        vec![
            "disk_kJ".into(),
            "spins".into(),
            "disk_pages".into(),
            "long/s".into(),
        ],
    );

    let run = |label: &str, sync: f64, joint: bool| -> RunReport {
        let spec = if joint {
            methods::joint(&cfg.scale)
        } else {
            methods::fixed_memory(&cfg.scale, methods::DiskPolicyKind::TwoCompetitive, 16)
        };
        let mut sim = cfg.scale.sim_config(spec.mem_policy, spec.initial_banks);
        sim.warmup_secs = cfg.warmup_secs;
        sim.period_secs = cfg.period_secs;
        sim.sync_interval_secs = sync;
        match &spec.joint {
            Some(jc) => {
                let mut controller = JointPolicy::new(*jc);
                run_simulation(
                    &sim,
                    SpinDownPolicy::controlled(f64::INFINITY),
                    &mut controller,
                    &trace,
                    cfg.duration_secs,
                    label,
                )
            }
            None => run_simulation(
                &sim,
                spec.spindown.clone(),
                &mut NullController,
                &trace,
                cfg.duration_secs,
                label,
            ),
        }
    };

    for (method, joint) in [("2TFM-16GB", false), ("Joint", true)] {
        for &sync in &[5.0f64, 30.0, 120.0, 600.0, f64::INFINITY] {
            let label = if sync.is_finite() {
                format!("{method}/sync={sync}s")
            } else {
                format!("{method}/sync=never")
            };
            let r = run(&label, sync, joint);
            table.push(
                label.clone(),
                vec![
                    r.energy.disk.total_j() / 1e3,
                    r.spin_downs as f64,
                    r.disk_page_accesses as f64,
                    r.long_latency_per_sec(),
                ],
            );
            eprintln!("writeback: {label} done");
        }
    }
    table.print();
    write_json("writeback", &table)
}
