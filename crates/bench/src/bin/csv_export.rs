//! Converts saved experiment JSON (a `Table` or an array of `Table`s)
//! into CSV files next to them, for spreadsheet and plotting pipelines.
//!
//! ```sh
//! csv-export results/fig7.json        # writes results/fig7.<n>.csv
//! ```

use std::fs;
use std::process::ExitCode;

use jpmd_bench::Table;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: csv_export <results/file.json>");
        return ExitCode::FAILURE;
    };
    let raw = match fs::read_to_string(&path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // A file holds either one table or a list of tables.
    let tables: Vec<Table> = match serde_json::from_str::<Vec<Table>>(&raw) {
        Ok(ts) => ts,
        Err(_) => match serde_json::from_str::<Table>(&raw) {
            Ok(t) => vec![t],
            Err(e) => {
                eprintln!("error parsing {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let stem = path.trim_end_matches(".json");
    for (i, t) in tables.iter().enumerate() {
        let out = if tables.len() == 1 {
            format!("{stem}.csv")
        } else {
            format!("{stem}.{i}.csv")
        };
        if let Err(e) = fs::write(&out, t.to_csv()) {
            eprintln!("error writing {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {out} ({})", t.title);
    }
    ExitCode::SUCCESS
}
