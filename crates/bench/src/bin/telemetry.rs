//! Telemetry smoke: replays a small workload under the joint method with
//! a JSONL sink attached and writes the event stream to a file.
//!
//! This is the end-to-end check for the observability pipeline — engine
//! lifecycle events, per-period traffic summaries, and one
//! `PolicyDecision` per control period (fitted Pareto α/β, chosen
//! timeout, candidate power table) all land in one inspectable file.
//! Feed the output to `obs_tool summary` / `obs_tool timings`.
//!
//! Usage: `telemetry [OUT.jsonl]` (default `results/telemetry.jsonl`)

use jpmd_core::{methods, SimScale};
use jpmd_obs::{JsonlSink, Telemetry};
use jpmd_trace::{WorkloadBuilder, GIB, MIB};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/telemetry.jsonl".to_string());
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }

    let scale = SimScale::small_test();
    let duration = 1800.0;
    let period = 300.0;
    let trace = WorkloadBuilder::new()
        .data_set_bytes(GIB / 2)
        .rate_bytes_per_sec(4 * MIB)
        .page_bytes(scale.page_bytes)
        .duration_secs(duration)
        .seed(42)
        .build()?;

    let telemetry = Telemetry::new(Box::new(JsonlSink::create(&out)?));
    let report = methods::run_method_source_with(
        &methods::joint(&scale),
        &scale,
        trace.source(),
        period, // one period of warm-up
        duration,
        period,
        &telemetry,
    )?;
    telemetry.flush();

    println!(
        "telemetry: {} periods, {:.1} kJ total, events -> {}",
        report.periods.len(),
        report.energy.total_j() / 1e3,
        out
    );
    for span in &report.spans {
        println!(
            "  span {:<18} calls={:<4} total={:.3}s",
            span.name, span.calls, span.total_secs
        );
    }
    if report.periods.is_empty() {
        return Err("no control periods simulated".into());
    }
    Ok(())
}
