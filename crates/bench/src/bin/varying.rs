//! Time-varying server load — the paper's opening motivation ("the
//! varying workload of server systems provides opportunities for storage
//! devices to exploit low-power modes", §I).
//!
//! The workload alternates hourly between a busy phase (100 MB/s) and a
//! quiet phase (5 MB/s). Static methods must be provisioned for the busy
//! phase and waste that provision in the quiet one; the joint manager
//! re-decides every period, shrinking memory and sleeping the disk when
//! the load drops and growing back when it returns. The per-period bank
//! series printed at the end shows the tracking directly. Pass `--quick`
//! for a shorter run.

use jpmd_bench::{write_json, ExperimentConfig, Table};
use jpmd_core::methods;
use jpmd_trace::{synth, WorkloadBuilder, GIB, MIB};

fn main() -> std::io::Result<()> {
    let cfg = ExperimentConfig::from_args();
    let phase_secs = (cfg.duration_secs / 4.0).max(1800.0);
    // busy -> quiet -> busy -> quiet, same 16 GB data set throughout.
    let phase = |rate_mb: u64, seed: u64| {
        WorkloadBuilder::new()
            .data_set_bytes(16 * GIB)
            .rate_bytes_per_sec(rate_mb * MIB)
            .popularity(0.1)
            .page_bytes(cfg.scale.page_bytes)
            .duration_secs(phase_secs)
            .seed(seed)
            .build()
            .expect("workload generation")
    };
    let trace = synth::concat(&[
        phase(100, cfg.seed),
        phase(5, cfg.seed + 1),
        phase(100, cfg.seed + 2),
        phase(5, cfg.seed + 3),
    ])
    .expect("concat");
    let duration = trace.span() + 60.0;
    let warmup = phase_secs; // measure from the first phase switch

    let mut table = Table::new(
        "Time-varying load: hourly 100 <-> 5 MB/s phases (16 GB data set)",
        vec![
            "total_kJ".into(),
            "mem_kJ".into(),
            "disk_kJ".into(),
            "spins".into(),
            "long/s".into(),
        ],
    );
    let specs = vec![
        methods::always_on(&cfg.scale),
        methods::fixed_memory(&cfg.scale, methods::DiskPolicyKind::TwoCompetitive, 16),
        methods::disable(&cfg.scale, methods::DiskPolicyKind::TwoCompetitive),
        methods::joint(&cfg.scale),
    ];
    let mut joint_series = Vec::new();
    for spec in &specs {
        let r = methods::run_method(spec, &cfg.scale, &trace, warmup, duration, cfg.period_secs);
        table.push(
            spec.label.clone(),
            vec![
                r.energy.total_j() / 1e3,
                r.energy.mem.total_j() / 1e3,
                r.energy.disk.total_j() / 1e3,
                r.spin_downs as f64,
                r.long_latency_per_sec(),
            ],
        );
        if spec.joint.is_some() {
            joint_series = r
                .periods
                .iter()
                .map(|p| {
                    (
                        p.observation.end,
                        p.action
                            .enabled_banks
                            .unwrap_or(p.observation.enabled_banks),
                        p.observation.disk_page_accesses,
                        p.observation.mean_power_w(),
                    )
                })
                .collect();
        }
        eprintln!("varying: {} done", spec.label);
    }
    table.print();

    println!("\n-- joint method's per-period decisions and power --");
    for (end, banks, misses, power) in &joint_series {
        let gb = *banks as f64 * 16.0 / 1024.0;
        println!(
            "t = {:>6.0} s  banks -> {:>5} ({:>5.1} GB)  period misses {:>6}  mean power {:>6.1} W",
            end, banks, gb, misses, power
        );
    }
    write_json("varying", &table)
}
