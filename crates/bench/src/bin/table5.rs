//! Regenerates paper Table V: joint-method sensitivity to the bank size.
//! Pass `--quick` for a shorter run.

use jpmd_bench::{experiments, write_json, ExperimentConfig};

fn main() -> std::io::Result<()> {
    let cfg = ExperimentConfig::from_args();
    let table = experiments::table5(&cfg);
    table.print();
    write_json("table5", &table)
}
