//! End-to-end validation of the paper's §IV-C modeling premise: "the
//! distributions of the disk idle intervals have heavy tails and Pareto
//! distributions can model such characteristics" (refs. \[19\], \[20\]).
//!
//! For each arrival model (Poisson vs heavy-tailed Pareto bursts) and each
//! memory size, this profiles the workload once, reconstructs the disk
//! idle intervals the joint method would see, fits both the Pareto (the
//! paper's moment estimator) and a shifted exponential (the memoryless
//! null), and reports the Kolmogorov–Smirnov distance of each fit.
//!
//! Three fits are compared: the joint method's *runtime* fit
//! (moment-matched Pareto with β = the aggregation window, exactly what
//! the policy computes each period), a Pareto MLE with β = the shortest
//! observed gap (the paper's literal definition of β), and the shifted
//! exponential.
//!
//! Expected shape — and an honest one: under Poisson arrivals the miss
//! stream is (thinned) Poisson, so gaps are near-exponential and the
//! memoryless fit wins; the paper's heavy-tail premise comes from
//! *measured* NT/UNIX server traces (refs. \[20\], \[21\]), not from
//! Poisson synthetics. As arrivals get burstier the exponential's KS
//! distance degrades several-fold while the β=min Pareto closes in —
//! the regime the paper's model is built for. The window sweep in
//! `--bin ablation` shows the joint method's *energy* is robust to this
//! distributional misfit either way. Pass `--quick` for a shorter run.

use jpmd_bench::{write_json, ExperimentConfig, Table};
use jpmd_mem::{AccessLog, StackProfiler};
use jpmd_stats::{fit, ks_statistic, Exponential, IdleIntervals};
use jpmd_trace::{ArrivalModel, WorkloadBuilder, GIB, MIB};

fn main() -> std::io::Result<()> {
    let cfg = ExperimentConfig::from_args();
    let window = 0.1;
    let mut table = Table::new(
        "Pareto vs exponential fits of disk idle intervals (KS distance)",
        vec![
            "intervals".into(),
            "mean_s".into(),
            "min_s".into(),
            "ks_runtime".into(),
            "ks_mle_min".into(),
            "ks_expo".into(),
        ],
    );

    for (arrivals, aname) in [
        (ArrivalModel::Poisson, "poisson"),
        (ArrivalModel::ParetoBursts { alpha: 1.4 }, "bursty1.4"),
        (ArrivalModel::ParetoBursts { alpha: 1.15 }, "bursty1.15"),
    ] {
        let trace = WorkloadBuilder::new()
            .data_set_bytes(16 * GIB)
            .rate_bytes_per_sec(20 * MIB)
            .popularity(0.1)
            .arrivals(arrivals)
            .page_bytes(cfg.scale.page_bytes)
            .duration_secs(cfg.duration_secs)
            .seed(cfg.seed)
            .build()
            .expect("workload generation");

        // Profile once; reconstruct the miss stream at each memory size.
        let mut profiler = StackProfiler::new();
        let mut log = AccessLog::new();
        for r in trace.records() {
            for page in r.page_range() {
                log.record(r.time, page, profiler.observe(page));
            }
        }
        for mem_gb in [4u64, 8, 16] {
            let capacity = cfg.scale.gb_to_pages(mem_gb);
            let miss_times: Vec<f64> = log.miss_times_at(capacity).collect();
            let idle = IdleIntervals::from_timestamps(&miss_times, window);
            let gaps = idle.as_slice();
            if gaps.len() < 30 {
                eprintln!("pareto_validation: {aname}/{mem_gb}GB skipped (too few intervals)");
                continue;
            }
            let mean = idle.mean().expect("nonempty");
            let min_gap = gaps.iter().copied().fold(f64::INFINITY, f64::min);
            let runtime_fit = fit::pareto_from_mean(mean, window).expect("valid fit");
            let mle_fit = fit::pareto_mle(gaps, min_gap * 0.999).expect("valid fit");
            let expo = Exponential::from_mean(mean, min_gap * 0.999).expect("valid fit");
            let ks_runtime = ks_statistic(gaps, |x| runtime_fit.cdf(x)).expect("nonempty");
            let ks_mle = ks_statistic(gaps, |x| mle_fit.cdf(x)).expect("nonempty");
            let ks_e = ks_statistic(gaps, |x| expo.cdf(x)).expect("nonempty");
            table.push(
                format!("{aname}/{mem_gb}GB"),
                vec![gaps.len() as f64, mean, min_gap, ks_runtime, ks_mle, ks_e],
            );
            eprintln!("pareto_validation: {aname}/{mem_gb}GB done");
        }
    }
    table.print();
    println!(
        "\nlower KS distance = better fit. Poisson synthetics are nearly \
         memoryless (exponential wins); burstier arrivals degrade the \
         exponential fit toward the heavy-tailed regime the paper's model \
         targets (measured NT/UNIX traces, refs. [20]/[21])."
    );
    write_json("pareto_validation", &table)
}
