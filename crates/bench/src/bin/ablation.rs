//! Ablations of the joint method's design choices (DESIGN.md §"Design
//! choices to ablate"): performance constraints on/off and the
//! aggregation-window sweep. Pass `--quick` for a shorter run.

use jpmd_bench::{experiments, write_json, ExperimentConfig};

fn main() -> std::io::Result<()> {
    let cfg = ExperimentConfig::from_args();
    let tables = vec![
        experiments::ablation_constraints(&cfg),
        experiments::ablation_window(&cfg),
        experiments::ablation_power_aware(&cfg),
        experiments::ablation_timeout_policies(&cfg),
    ];
    for t in &tables {
        t.print();
    }
    write_json("ablation", &tables)
}
