//! Streaming-vs-JSON trace load/replay benchmark for the paged binary
//! store (`jpmd-store`).
//!
//! Generates one workload, persists it both as JSON and as a `.jpt`
//! binary store, then measures end-to-end load + replay (always-on
//! method) through each path:
//!
//! * `json` — parse the whole trace into memory, then replay it;
//! * `binary` — stream records straight off the paged store
//!   ([`run_method_source`](jpmd_core::methods::run_method_source)), at
//!   O(page) resident memory.
//!
//! Reported per path: wall-clock replay throughput (records/s), total
//! load+replay seconds, on-disk file size, and the peak-RSS delta the
//! load inflicted (Linux `VmHWM`; `NaN` elsewhere). The binary rows run
//! first so the JSON path's allocations cannot mask their high-water
//! mark. Results land in `results/store_bench.json` via the existing
//! runner conventions: a failing path fills its row with `NaN` and the
//! bench keeps going, like the figure drivers.
//!
//! Usage: `store-bench [--quick]`

use std::time::Instant;

use jpmd_bench::{write_json, ExperimentConfig, Table, WorkloadPoint};
use jpmd_core::methods;
use jpmd_store::TraceReader;
use jpmd_trace::Trace;

/// Peak resident set size of this process, bytes (Linux `VmHWM`).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

struct PathResult {
    records_per_sec: f64,
    load_replay_secs: f64,
    file_bytes: f64,
    peak_rss_delta_mb: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ExperimentConfig::from_args();
    let point = WorkloadPoint {
        data_gb: 4,
        ..WorkloadPoint::default_point()
    };
    let scale = cfg.scale;

    println!("generating workload ({} GiB data set)…", point.data_gb);
    let trace = jpmd_bench::experiments::make_trace(&cfg, point);
    let records = trace.records().len();
    println!("{records} records over {:.0} s", trace.span());

    let dir = std::env::temp_dir();
    let json_path = dir.join(format!("jpmd-store-bench-{}.json", std::process::id()));
    let jpt_path = dir.join(format!("jpmd-store-bench-{}.jpt", std::process::id()));
    trace.to_writer(std::io::BufWriter::new(std::fs::File::create(&json_path)?))?;
    jpmd_store::write_trace(&jpt_path, &trace)?;
    drop(trace);

    let spec = methods::always_on(&scale);
    let warmup = cfg.warmup_secs;
    let duration = cfg.duration_secs;
    let period = cfg.period_secs;

    // Run the binary path first: VmHWM is a high-water mark, so the
    // smaller-footprint path must not run in the shadow of the larger.
    let tasks: Vec<(&str, &std::path::Path)> = vec![("binary", &jpt_path), ("json", &json_path)];
    let outcomes = jpmd_bench::run_queue(&tasks, 1, |&(kind, path)| {
        let rss_before = peak_rss_bytes();
        let start = Instant::now();
        let report = match kind {
            "binary" => methods::run_method_source(
                &spec,
                &scale,
                TraceReader::open(path).expect("open store"),
                warmup,
                duration,
                period,
            )
            .expect("streamed replay"),
            _ => {
                let loaded = Trace::from_reader(std::io::BufReader::new(
                    std::fs::File::open(path).expect("open json"),
                ))
                .expect("parse json trace");
                methods::run_method(&spec, &scale, &loaded, warmup, duration, period)
            }
        };
        let secs = start.elapsed().as_secs_f64();
        let delta = match (rss_before, peak_rss_bytes()) {
            (Some(before), Some(after)) => (after - before) as f64 / (1024.0 * 1024.0),
            _ => f64::NAN,
        };
        assert!(report.energy.total_j() > 0.0);
        PathResult {
            records_per_sec: records as f64 / secs.max(f64::MIN_POSITIVE),
            load_replay_secs: secs,
            file_bytes: std::fs::metadata(path).map_or(f64::NAN, |m| m.len() as f64),
            peak_rss_delta_mb: delta,
        }
    });

    let mut table = Table::new(
        "Trace store: load+replay, JSON vs paged binary",
        vec![
            "records/s".into(),
            "secs".into(),
            "file MB".into(),
            "peak ΔRSS MB".into(),
        ],
    );
    for ((kind, _), outcome) in tasks.iter().zip(outcomes) {
        match outcome {
            Ok(r) => table.push(
                *kind,
                vec![
                    r.records_per_sec,
                    r.load_replay_secs,
                    r.file_bytes / (1024.0 * 1024.0),
                    r.peak_rss_delta_mb,
                ],
            ),
            Err(message) => {
                eprintln!("[{kind} path failed: {message}]");
                table.push(*kind, vec![f64::NAN; 4]);
            }
        }
    }
    table.print();
    write_json("store_bench", &table)?;

    let _ = std::fs::remove_file(&json_path);
    let _ = std::fs::remove_file(&jpt_path);
    Ok(())
}
