//! Streaming-vs-JSON trace load/replay benchmark for the paged binary
//! store (`jpmd-store`).
//!
//! Generates one workload, persists it both as JSON and as a `.jpt`
//! binary store, then measures end-to-end load + replay (always-on
//! method) through each path:
//!
//! * `engine` — the bare [`jpmd_sim::Engine`] record loop streamed off
//!   the paged store with **no** policy layer and no observers: the
//!   raw-speed campaign's hot-path trajectory (ROADMAP item 2),
//!   tracked per PR alongside the method rows;
//! * `json` — parse the whole trace into memory, then replay it;
//! * `binary` — stream records straight off the paged store
//!   ([`run_method_source`](jpmd_core::methods::run_method_source)), at
//!   O(page) resident memory.
//!
//! Reported per path: wall-clock replay throughput (records/s), total
//! load+replay seconds, on-disk file size, and the peak-RSS delta the
//! load inflicted (Linux `VmHWM`; `NaN` elsewhere). The binary rows run
//! first so the JSON path's allocations cannot mask their high-water
//! mark.
//!
//! A second table measures **seek-to-period** on a large telemetry WAL
//! (~10^6 period records, ~10^5 with `--quick`): the `.jx` sparse period
//! index ([`jpmd_obs::wal`]) against a full scan from byte 0, both
//! returning the identical record. Results land in
//! `results/store_bench.json` as `{"replay": ..., "seek": ...}` via the
//! existing runner conventions: a failing path fills its row with `NaN`
//! and the bench keeps going, like the figure drivers.
//!
//! Usage: `store-bench [--quick] [--floor RECORDS_PER_SEC]`
//!
//! `--floor N` turns the benchmark into a regression gate: if the binary
//! path's replay throughput lands below `N` records/s the process exits
//! nonzero after writing results, so CI catches a store slowdown the
//! same way it catches a failing test.

use std::io::Write;
use std::time::Instant;

use jpmd_bench::{write_json, ExperimentConfig, Table, WorkloadPoint};
use jpmd_core::methods;
use jpmd_disk::SpinDownPolicy;
use jpmd_mem::IdlePolicy;
use jpmd_obs::{wal, ObsEvent, ObsRecord};
use jpmd_sim::{Engine, HwState, SimObserver};
use jpmd_store::TraceReader;
use jpmd_trace::Trace;

/// Peak resident set size of this process, bytes (Linux `VmHWM`).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

struct PathResult {
    records_per_sec: f64,
    load_replay_secs: f64,
    file_bytes: f64,
    peak_rss_delta_mb: f64,
}

/// Writes a WAL of `periods` period-carrying records plus its `.jx`
/// sidecar, then measures `seek_to_period` near the end of the stream
/// through the index and through a full scan. Both paths must return the
/// identical record — the index is only allowed to buy speed.
fn seek_bench(quick: bool) -> Result<Table, Box<dyn std::error::Error>> {
    let periods: u64 = if quick { 100_000 } else { 1_000_000 };
    let stride: u32 = 512;
    let dir = std::env::temp_dir();
    let wal_path = dir.join(format!("jpmd-seek-bench-{}.jsonl", std::process::id()));

    println!("\nwriting seek workload ({periods} period records)…");
    {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&wal_path)?);
        for p in 0..periods {
            let record = ObsRecord {
                seq: p,
                t_wall_ms: None,
                shard: None,
                event: ObsEvent::Period {
                    index: p,
                    start_s: p as f64,
                    end_s: p as f64 + 1.0,
                    accesses: 1000 + p % 64,
                    hits: 900,
                    misses: 7,
                    disk_requests: 12,
                    syncs: 1,
                    energy_j: 3.5,
                },
            };
            writeln!(f, "{}", record.to_line())?;
        }
        f.flush()?;
    }
    let entries = wal::build_index(&wal_path, stride)?;
    let wal_mb = std::fs::metadata(&wal_path)?.len() as f64 / (1024.0 * 1024.0);
    println!("indexed: {entries} entr(ies) at stride {stride} over {wal_mb:.1} MB");

    // Seek into the last tenth of the stream — the worst case for a full
    // scan, a binary search plus <= stride lines for the index.
    let target = periods - periods / 10;

    let start = Instant::now();
    let full = wal::seek_period_full_scan(&wal_path, target)?;
    let full_secs = start.elapsed().as_secs_f64();

    // The indexed path is microseconds; average a batch for a stable
    // number. Distinct nearby targets keep the page cache honest-ish
    // without changing the scan length class.
    let iters: u64 = 100;
    let start = Instant::now();
    let mut indexed = wal::seek_period(&wal_path, target)?;
    for i in 1..iters {
        indexed = wal::seek_period(&wal_path, target + (i % 64))?;
    }
    let indexed_secs = start.elapsed().as_secs_f64() / iters as f64;

    let check = wal::seek_period(&wal_path, target)?;
    assert!(check.used_index, "sidecar must position the seek");
    assert_eq!(
        check.hit.as_ref().map(|(o, r)| (*o, r.seq)),
        full.hit.as_ref().map(|(o, r)| (*o, r.seq)),
        "indexed and full-scan seeks must agree"
    );

    let mut table = Table::new(
        format!("WAL seek-to-period, {periods} records: sparse index vs full scan"),
        vec![
            "seeks/s".into(),
            "ms/seek".into(),
            "lines scanned".into(),
            "speedup x".into(),
        ],
    );
    table.push(
        "indexed",
        vec![
            1.0 / indexed_secs.max(f64::MIN_POSITIVE),
            indexed_secs * 1e3,
            indexed.lines_scanned as f64,
            full_secs / indexed_secs.max(f64::MIN_POSITIVE),
        ],
    );
    table.push(
        "full-scan",
        vec![
            1.0 / full_secs.max(f64::MIN_POSITIVE),
            full_secs * 1e3,
            full.lines_scanned as f64,
            1.0,
        ],
    );

    let _ = std::fs::remove_file(jpmd_store::index_path(&wal_path));
    let _ = std::fs::remove_file(&wal_path);
    Ok(table)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ExperimentConfig::from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    let floor: Option<f64> = {
        let args: Vec<String> = std::env::args().collect();
        args.iter().position(|a| a == "--floor").map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .filter(|v: &f64| v.is_finite() && *v > 0.0)
                .unwrap_or_else(|| {
                    eprintln!("--floor needs a positive records/s value");
                    std::process::exit(2);
                })
        })
    };
    let point = WorkloadPoint {
        data_gb: 4,
        ..WorkloadPoint::default_point()
    };
    let scale = cfg.scale;

    println!("generating workload ({} GiB data set)…", point.data_gb);
    let trace = jpmd_bench::experiments::make_trace(&cfg, point);
    let records = trace.records().len();
    let total_pages = trace.total_pages();
    println!("{records} records over {:.0} s", trace.span());

    let dir = std::env::temp_dir();
    let json_path = dir.join(format!("jpmd-store-bench-{}.json", std::process::id()));
    let jpt_path = dir.join(format!("jpmd-store-bench-{}.jpt", std::process::id()));
    trace.to_writer(std::io::BufWriter::new(std::fs::File::create(&json_path)?))?;
    jpmd_store::write_trace(&jpt_path, &trace)?;
    drop(trace);

    let spec = methods::always_on(&scale);
    let warmup = cfg.warmup_secs;
    let duration = cfg.duration_secs;
    let period = cfg.period_secs;

    // Run the lean paths first: VmHWM is a high-water mark, so the
    // smaller-footprint paths must not run in the shadow of the larger.
    let tasks: Vec<(&str, &std::path::Path)> = vec![
        ("engine", &jpt_path),
        ("binary", &jpt_path),
        ("json", &json_path),
    ];
    let outcomes = jpmd_bench::run_queue(&tasks, 1, |&(kind, path)| {
        let rss_before = peak_rss_bytes();
        let start = Instant::now();
        if kind == "engine" {
            // The bare record loop: stream the store through the engine
            // with no policy and no observers — the per-record ceiling
            // the method rows are chasing.
            let sim = scale.sim_config(IdlePolicy::Nap, scale.total_banks());
            let mut hw = HwState::new(&sim, SpinDownPolicy::AlwaysOn, total_pages);
            let mut observers: [&mut dyn SimObserver; 0] = [];
            let stats = Engine::new()
                .run_source(
                    TraceReader::open(path).expect("open store"),
                    duration,
                    &mut hw,
                    &mut observers,
                )
                .expect("engine replay");
            let secs = start.elapsed().as_secs_f64();
            assert!(stats.events_processed > 0);
            let delta = match (rss_before, peak_rss_bytes()) {
                (Some(before), Some(after)) => (after - before) as f64 / (1024.0 * 1024.0),
                _ => f64::NAN,
            };
            return PathResult {
                records_per_sec: records as f64 / secs.max(f64::MIN_POSITIVE),
                load_replay_secs: secs,
                file_bytes: std::fs::metadata(path).map_or(f64::NAN, |m| m.len() as f64),
                peak_rss_delta_mb: delta,
            };
        }
        let report = match kind {
            "binary" => methods::run_method_source(
                &spec,
                &scale,
                TraceReader::open(path).expect("open store"),
                warmup,
                duration,
                period,
            )
            .expect("streamed replay"),
            _ => {
                let loaded = Trace::from_reader(std::io::BufReader::new(
                    std::fs::File::open(path).expect("open json"),
                ))
                .expect("parse json trace");
                methods::run_method(&spec, &scale, &loaded, warmup, duration, period)
            }
        };
        let secs = start.elapsed().as_secs_f64();
        let delta = match (rss_before, peak_rss_bytes()) {
            (Some(before), Some(after)) => (after - before) as f64 / (1024.0 * 1024.0),
            _ => f64::NAN,
        };
        assert!(report.energy.total_j() > 0.0);
        PathResult {
            records_per_sec: records as f64 / secs.max(f64::MIN_POSITIVE),
            load_replay_secs: secs,
            file_bytes: std::fs::metadata(path).map_or(f64::NAN, |m| m.len() as f64),
            peak_rss_delta_mb: delta,
        }
    });

    let mut table = Table::new(
        "Trace store: load+replay — bare engine, paged binary, JSON",
        vec![
            "records/s".into(),
            "secs".into(),
            "file MB".into(),
            "peak ΔRSS MB".into(),
        ],
    );
    let mut binary_records_per_sec = f64::NAN;
    for ((kind, _), outcome) in tasks.iter().zip(outcomes) {
        match outcome {
            Ok(r) => {
                if *kind == "binary" {
                    binary_records_per_sec = r.records_per_sec;
                }
                table.push(
                    *kind,
                    vec![
                        r.records_per_sec,
                        r.load_replay_secs,
                        r.file_bytes / (1024.0 * 1024.0),
                        r.peak_rss_delta_mb,
                    ],
                )
            }
            Err(message) => {
                eprintln!("[{kind} path failed: {message}]");
                table.push(*kind, vec![f64::NAN; 4]);
            }
        }
    }
    table.print();

    let seek_table = seek_bench(quick)?;
    seek_table.print();

    #[derive(serde::Serialize)]
    struct StoreBenchResults {
        replay: Table,
        seek: Table,
    }
    write_json(
        "store_bench",
        &StoreBenchResults {
            replay: table,
            seek: seek_table,
        },
    )?;

    let _ = std::fs::remove_file(&json_path);
    let _ = std::fs::remove_file(&jpt_path);

    if let Some(floor) = floor {
        // NaN (the path failed) must trip the gate too.
        if binary_records_per_sec.is_nan() || binary_records_per_sec < floor {
            eprintln!(
                "FAIL: binary replay throughput {binary_records_per_sec:.0} records/s \
                 is below the floor of {floor:.0} records/s"
            );
            std::process::exit(1);
        }
        println!(
            "floor check passed: binary replay {binary_records_per_sec:.0} records/s \
             >= {floor:.0} records/s"
        );
    }
    Ok(())
}
