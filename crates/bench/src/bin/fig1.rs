//! Prints the power-model tables of paper Fig. 1 and the parameter values
//! of Table II, straight from the model types.

use jpmd_core::SimScale;
use jpmd_disk::{DiskPowerModel, ServiceModel};
use jpmd_mem::RdramModel;

fn main() {
    let mem = RdramModel::default();
    let disk = DiskPowerModel::default();
    let scale = SimScale::default();

    println!("== Fig. 1(a) memory power model (128 Mb RDRAM chip) ==");
    println!("  attention            {:>8.1} mW", mem.attention_mw);
    println!("  accessed (peak rate) {:>8.1} mW", mem.peak_mw);
    println!("  nap                  {:>8.1} mW", mem.nap_mw);
    println!("  power down           {:>8.1} mW", mem.powerdown_mw);
    println!("  disable              {:>8.1} mW (data lost)", 0.0);
    println!("  nap -> attention     {:>8.1} ns", mem.nap_exit_ns);
    println!(
        "  pwrdn -> attention   {:>8.1} us (also disable estimate)",
        mem.powerdown_exit_us
    );
    println!(
        "  derived: static {:.3} mW/MB, dynamic {:.3} mJ/MB, PD timeout {:.0} us",
        mem.nap_w_per_mb() * 1e3,
        mem.dynamic_j_per_mb() * 1e3,
        mem.powerdown_timeout_s() * 1e6
    );

    println!("\n== Fig. 1(b) disk power model (Seagate IDE) ==");
    println!("  active               {:>8.1} W", disk.active_w);
    println!("  idle                 {:>8.1} W", disk.idle_w);
    println!("  standby/sleep        {:>8.1} W", disk.standby_w);
    println!(
        "  transition (round)   {:>8.1} J / {:.0} s",
        disk.transition_j, disk.spinup_s
    );
    println!(
        "  derived: p_d = {:.1} W, peak dynamic = {:.1} W, t_be = {:.1} s",
        disk.static_w(),
        disk.dynamic_peak_w(),
        disk.break_even_s()
    );

    println!("\n== Bandwidth table (paper \u{a7}V-A: effective rate by request size) ==");
    println!(
        "  {:>12} {:>16} {:>16}",
        "request", "physical MB/s", "scaled MB/s"
    );
    let physical = ServiceModel::default();
    let scaled = ServiceModel::scaled_pages();
    for kb in [64u64, 256, 1024, 4096, 16384, 65536] {
        let bytes = kb * 1024;
        println!(
            "  {:>9} KiB {:>16.2} {:>16.2}",
            kb,
            physical.effective_rate_mb_s(bytes),
            scaled.effective_rate_mb_s(bytes)
        );
    }

    println!("\n== Table II parameter values ==");
    println!("  T (period)           {:>8} s", 600);
    println!("  w (aggregation)      {:>8} s", 0.1);
    println!("  t_be                 {:>8.1} s", disk.break_even_s());
    println!("  t_tr                 {:>8.1} s", disk.spinup_s);
    println!("  p_d                  {:>8.1} W", disk.static_w());
    println!("  U (utilization cap)  {:>8} %", 10);
    println!("  D (delay ratio cap)  {:>8}", 0.001);
    println!("  bank (enum. unit)    {:>8} MB", scale.bank_mib);
    println!(
        "  installed memory     {:>8} GB ({} banks)",
        scale.total_gb,
        scale.total_banks()
    );
    println!(
        "  DS timeout           {:>8.0} s",
        scale.disable_timeout_s()
    );
}
