//! Regenerates paper Fig. 7: all 16 methods across data-set sizes
//! {4, 8, 16, 32, 64} GB (100 MB/s, popularity 0.1). Six sub-figures:
//! total/disk/memory energy %, latency, utilization, long-latency rate.
//!
//! Pass `--quick` for a shorter run, `--bars` for bar-chart rendering.

use jpmd_bench::{experiments, write_json, ExperimentConfig};

fn main() -> std::io::Result<()> {
    let cfg = ExperimentConfig::from_args();
    let tables = experiments::fig7(&cfg);
    for t in &tables {
        t.print();
    }
    // `--bars` additionally renders each column as a horizontal bar chart
    // (the closest terminal analogue of the paper's grouped-bar figures).
    if std::env::args().any(|a| a == "--bars") {
        for t in &tables {
            for c in 0..t.columns.len() {
                t.print_bars(c);
            }
        }
    }
    write_json("fig7", &tables)
}
