//! Chaos smoke: runs the joint method under the standard fault plan —
//! corrupted trace records, disk stalls, failed spin-ups, flaky banks,
//! and a burst of injected policy failures — and verifies the stack
//! degrades *gracefully*: no panic, typed fallbacks with telemetry, and a
//! recovery back to the joint policy before the run ends.
//!
//! Exits non-zero if the run never degraded, never recovered, did not end
//! on the joint level, or blew the delayed-request bound. CI greps the
//! resulting JSONL via `obs_tool summary` for `fallbacks`/`recoveries`.
//!
//! Usage: `chaos [OUT.jsonl] [SEED]` (default `results/chaos.jsonl`, seed 1)

use jpmd_core::JointConfig;
use jpmd_faults::{chaos_trace, run_chaos, ChaosConfig, FallbackLevel, GuardConfig};
use jpmd_mem::IdlePolicy;
use jpmd_obs::{JsonlSink, Telemetry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/chaos.jsonl".to_string());
    let seed: u64 = match std::env::args().nth(2) {
        Some(s) => s.parse()?,
        None => 1,
    };
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }

    let chaos = ChaosConfig::small_test(seed);
    let trace = chaos_trace(&chaos.scale, chaos.duration_secs, 42);
    let telemetry = Telemetry::new(Box::new(JsonlSink::create(&out)?));
    let result = run_chaos(&chaos, trace.source(), &telemetry)?;

    let cfg = JointConfig::from_sim(
        &chaos
            .scale
            .sim_config(IdlePolicy::Nap, chaos.scale.total_banks()),
    );
    let delay_bound = GuardConfig::from_joint(&cfg).delay_ratio_limit;

    println!(
        "chaos: seed {seed}, {} periods, {:.1} kJ, events -> {out}",
        result.report.periods.len(),
        result.report.energy.total_j() / 1e3,
    );
    println!(
        "  injected: {} source faults ({} transient), {} hw faults ({:.2} s stalled), {} policy faults",
        result.source_faults.total(),
        result.source_faults.transient_errors,
        result.hw_faults.total(),
        result.hw_faults.stall_secs_injected,
        result.injected_policy_faults,
    );
    println!(
        "  guard: {} fallbacks, {} watchdog trips, {} promotions, {} recoveries, final level {}",
        result.guard.fallbacks,
        result.guard.watchdog_trips,
        result.guard.promotions,
        result.guard.recoveries,
        result.final_level.as_str(),
    );
    println!(
        "  engine: {} source retries, {} records dropped, {} clamped",
        result.report.engine.source_retries,
        result.report.engine.records_dropped,
        result.report.engine.records_clamped,
    );
    println!(
        "  delayed ratio {:.5} (bound {delay_bound}), utilization {:.5}",
        result.delayed_ratio(),
        result.report.utilization,
    );

    let mut failures = Vec::new();
    if result.guard.fallbacks + result.guard.watchdog_trips == 0 {
        failures.push("no degradation occurred (fault injection ineffective)".to_string());
    }
    if result.guard.recoveries == 0 {
        failures.push("guard never recovered to the joint level".to_string());
    }
    if result.final_level != FallbackLevel::Joint {
        failures.push(format!(
            "run ended degraded (level {})",
            result.final_level.as_str()
        ));
    }
    if result.delayed_ratio() > delay_bound {
        failures.push(format!(
            "delayed ratio {:.5} exceeds bound {delay_bound}",
            result.delayed_ratio()
        ));
    }
    if !failures.is_empty() {
        return Err(failures.join("; ").into());
    }
    println!("  OK: degraded gracefully and recovered");
    Ok(())
}
