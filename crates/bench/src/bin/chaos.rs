//! Chaos smoke: runs the joint method under the standard fault plan —
//! corrupted trace records, disk stalls, failed spin-ups, flaky banks,
//! and a burst of injected policy failures — and verifies the stack
//! degrades *gracefully*: no panic, typed fallbacks with telemetry, and a
//! recovery back to the joint policy before the run ends.
//!
//! Exits non-zero if the run never degraded, never recovered, did not end
//! on the joint level, or blew the delayed-request bound. CI greps the
//! resulting JSONL via `obs_tool summary` for `fallbacks`/`recoveries`.
//!
//! With `--ckpt` the run snapshots into a `.jck` file (see `jpmd-ckpt`)
//! and the telemetry sink becomes a flush-per-record WAL; `--die-after N`
//! stops the process right after the Nth checkpoint is sealed (the CI
//! crash-resume smoke's deterministic stand-in for `kill -9`), and
//! `--resume` restarts from whatever the `.jck` and WAL remember,
//! producing a report bit-identical to an uninterrupted run.
//!
//! Usage:
//!
//! ```text
//! chaos [OUT.jsonl] [SEED] [--ckpt PATH] [--every N] [--die-after N]
//!       [--resume] [--report PATH]
//! ```
//!
//! (default `results/chaos.jsonl`, seed 1, checkpoint every period)
//!
//! The telemetry WAL is always written **indexed**: a `<OUT>.jx` sparse
//! period index rides along (stride 64), so `obs_tool seek`/`range`
//! answer period queries without scanning the whole stream.

use jpmd_ckpt::{load_checkpoint, CkptMeta, FileCheckpointer};
use jpmd_core::JointConfig;
use jpmd_faults::{
    chaos_trace, run_chaos, run_chaos_checkpointed, ChaosConfig, ChaosOutcome, ChaosReport,
    FallbackLevel, GuardConfig,
};
use jpmd_mem::IdlePolicy;
use jpmd_obs::{JsonlSink, Telemetry, WalPolicy};
use jpmd_sim::{CheckpointOptions, CheckpointPolicy, SimCheckpoint};

const TRACE_SEED: u64 = 42;

/// Sparse-index stride for the telemetry WAL: one `(period, seq, offset)`
/// entry per 64 period-carrying records keeps the `.jx` sidecar tiny
/// while `obs_tool seek`/`range` stay O(index + stride).
const INDEX_STRIDE: u32 = 64;

struct Args {
    out: String,
    seed: u64,
    ckpt: Option<String>,
    every: u64,
    die_after: Option<u64>,
    resume: bool,
    report: Option<String>,
}

fn parse_args() -> Result<Args, Box<dyn std::error::Error>> {
    let mut args = Args {
        out: "results/chaos.jsonl".to_string(),
        seed: 1,
        ckpt: None,
        every: 1,
        die_after: None,
        resume: false,
        report: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = 0usize;
    let mut i = 0usize;
    while i < raw.len() {
        let flag_value = |i: &mut usize| -> Result<String, Box<dyn std::error::Error>> {
            *i += 1;
            raw.get(*i)
                .cloned()
                .ok_or_else(|| format!("flag {} needs a value", raw[*i - 1]).into())
        };
        match raw[i].as_str() {
            "--ckpt" => args.ckpt = Some(flag_value(&mut i)?),
            "--every" => args.every = flag_value(&mut i)?.parse()?,
            "--die-after" => args.die_after = Some(flag_value(&mut i)?.parse()?),
            "--resume" => args.resume = true,
            "--report" => args.report = Some(flag_value(&mut i)?),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}").into());
            }
            other => {
                match positional {
                    0 => args.out = other.to_string(),
                    1 => args.seed = other.parse()?,
                    _ => return Err(format!("unexpected argument {other}").into()),
                }
                positional += 1;
            }
        }
        i += 1;
    }
    if (args.die_after.is_some() || args.resume) && args.ckpt.is_none() {
        return Err("--die-after/--resume require --ckpt".into());
    }
    Ok(args)
}

fn ensure_parent(path: &str) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args()?;
    ensure_parent(&args.out)?;
    if let Some(ckpt) = &args.ckpt {
        ensure_parent(ckpt)?;
    }

    let result = match &args.ckpt {
        None => {
            let chaos = ChaosConfig::small_test(args.seed);
            let trace = chaos_trace(&chaos.scale, chaos.duration_secs, TRACE_SEED);
            let telemetry = Telemetry::new(Box::new(JsonlSink::create_indexed(
                &args.out,
                WalPolicy::default(),
                INDEX_STRIDE,
            )?));
            run_chaos(&chaos, trace.source(), &telemetry)?
        }
        Some(ckpt_path) if args.resume => {
            let (meta, ckpt) = load_checkpoint(ckpt_path)?;
            if meta.kind != "chaos-small" {
                return Err(
                    format!("checkpoint kind '{}' is not resumable here", meta.kind).into(),
                );
            }
            let chaos = ChaosConfig::small_test(meta.seed);
            let trace = chaos_trace(&chaos.scale, chaos.duration_secs, meta.trace_seed);
            let wal = meta.telemetry.clone().unwrap_or_else(|| args.out.clone());
            let telemetry = Telemetry::new(Box::new(JsonlSink::resume_indexed(
                &wal,
                ckpt.telemetry_seq,
                WalPolicy::wal(),
                INDEX_STRIDE,
            )?));
            println!(
                "chaos: resuming seed {} from {ckpt_path} (period {}, telemetry seq {})",
                meta.seed, ckpt.engine.stats.counts.period_boundaries, ckpt.telemetry_seq,
            );
            match run_chaos_checkpointed(&chaos, trace.source(), &telemetry, Some(&ckpt), None)? {
                ChaosOutcome::Completed(report) => *report,
                ChaosOutcome::Interrupted => unreachable!("resume runs without a checkpoint stop"),
            }
        }
        Some(ckpt_path) => {
            let chaos = ChaosConfig::small_test(args.seed);
            let trace = chaos_trace(&chaos.scale, chaos.duration_secs, TRACE_SEED);
            let telemetry = Telemetry::new(Box::new(JsonlSink::create_indexed(
                &args.out,
                WalPolicy::wal(),
                INDEX_STRIDE,
            )?));
            let meta =
                CkptMeta::chaos_small(args.seed, TRACE_SEED).with_telemetry(args.out.clone());
            let mut saver = FileCheckpointer::new(ckpt_path, meta, telemetry.clone());
            let die_after = args.die_after;
            let every = args.every;
            let mut on_checkpoint = |ckpt: SimCheckpoint| {
                saver.save(&ckpt) && die_after.is_none_or(|n| saver.saved() < n)
            };
            let outcome = run_chaos_checkpointed(
                &chaos,
                trace.source(),
                &telemetry,
                None,
                Some(CheckpointOptions {
                    policy: CheckpointPolicy::every(every),
                    on_checkpoint: &mut on_checkpoint,
                }),
            )?;
            if let Some(e) = saver.take_error() {
                return Err(format!("checkpoint save failed: {e}").into());
            }
            match outcome {
                ChaosOutcome::Completed(report) => *report,
                ChaosOutcome::Interrupted => {
                    println!(
                        "chaos: interrupted after {} checkpoint(s), state in {ckpt_path}; \
                         rerun with --ckpt {ckpt_path} --resume",
                        saver.saved(),
                    );
                    return Ok(());
                }
            }
        }
    };

    report_and_check(&args, &result)
}

fn report_and_check(args: &Args, result: &ChaosReport) -> Result<(), Box<dyn std::error::Error>> {
    let chaos = ChaosConfig::small_test(args.seed);
    let cfg = JointConfig::from_sim(
        &chaos
            .scale
            .sim_config(IdlePolicy::Nap, chaos.scale.total_banks()),
    );
    let delay_bound = GuardConfig::from_joint(&cfg).delay_ratio_limit;

    println!(
        "chaos: seed {}, {} periods, {:.1} kJ, events -> {}",
        args.seed,
        result.report.periods.len(),
        result.report.energy.total_j() / 1e3,
        args.out,
    );
    println!(
        "  injected: {} source faults ({} transient), {} hw faults ({:.2} s stalled), {} policy faults",
        result.source_faults.total(),
        result.source_faults.transient_errors,
        result.hw_faults.total(),
        result.hw_faults.stall_secs_injected,
        result.injected_policy_faults,
    );
    println!(
        "  guard: {} fallbacks, {} watchdog trips, {} promotions, {} recoveries, final level {}",
        result.guard.fallbacks,
        result.guard.watchdog_trips,
        result.guard.promotions,
        result.guard.recoveries,
        result.final_level.as_str(),
    );
    println!(
        "  engine: {} source retries, {} records dropped, {} clamped",
        result.report.engine.source_retries,
        result.report.engine.records_dropped,
        result.report.engine.records_clamped,
    );
    println!(
        "  delayed ratio {:.5} (bound {delay_bound}), utilization {:.5}",
        result.delayed_ratio(),
        result.report.utilization,
    );

    if let Some(report_path) = &args.report {
        // Wall-clock fields are excluded from RunReport equality; zero
        // them here too so two equal runs produce byte-identical JSON
        // (the CI crash-resume smoke diffs these files).
        let mut report = result.report.clone();
        report.engine.replay_wall_secs = 0.0;
        report.engine.accesses_per_sec = 0.0;
        for span in &mut report.spans {
            span.total_secs = 0.0;
            span.max_secs = 0.0;
        }
        ensure_parent(report_path)?;
        std::fs::write(report_path, serde_json::to_string_pretty(&report)?)?;
        println!("  report -> {report_path} (wall-clock fields zeroed)");
    }

    let mut failures = Vec::new();
    if result.guard.fallbacks + result.guard.watchdog_trips == 0 {
        failures.push("no degradation occurred (fault injection ineffective)".to_string());
    }
    if result.guard.recoveries == 0 {
        failures.push("guard never recovered to the joint level".to_string());
    }
    if result.final_level != FallbackLevel::Joint {
        failures.push(format!(
            "run ended degraded (level {})",
            result.final_level.as_str()
        ));
    }
    if result.delayed_ratio() > delay_bound {
        failures.push(format!(
            "delayed ratio {:.5} exceeds bound {delay_bound}",
            result.delayed_ratio()
        ));
    }
    if !failures.is_empty() {
        return Err(failures.join("; ").into());
    }
    println!("  OK: degraded gracefully and recovered");
    Ok(())
}
