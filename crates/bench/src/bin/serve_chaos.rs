//! Network-chaos smoke for `jpmd-serve`: proves the exactly-once feed
//! protocol loses nothing and duplicates nothing while every connection
//! is being actively sabotaged.
//!
//! The harness runs the same seeded multi-tenant workload twice against
//! two in-process daemons:
//!
//! 1. **reference** — plain TCP, no faults;
//! 2. **chaos** — every client connection wrapped in a
//!    [`FaultyStream`](jpmd_faults::FaultyStream) running
//!    [`NetFaultPlan::storm`]: mid-write disconnects, torn writes,
//!    garbage bytes, read stalls, and read-side resets, all seeded per
//!    connection.
//!
//! It exits `0` only if, in the chaos run, the daemon stays up through a
//! clean `SHUTDOWN`, no client gives up, the storm actually bit
//! (injected faults and reconnects are both nonzero), every tenant's
//! applied-record count equals the count its client fed (no loss, no
//! duplication), every telemetry WAL is gap-free, and each chaos WAL is
//! byte-identical (after normalization) to the reference run's — the
//! stepper consumed the *same stream* despite the storm.
//!
//! `--no-dedup` is the negative control: the chaos daemon applies
//! replayed records twice instead of deduplicating at the ack
//! watermark, and the harness must exit `1` (CI asserts that it does).
//!
//! ```text
//! serve_chaos [--dir DIR] [--seed N] [--tenants N]
//!             [--duration-secs S] [--no-dedup]
//! ```

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use jpmd_faults::{NetFaultInjector, NetFaultPlan};
use jpmd_obs::ObsRecord;
use jpmd_serve::{ClientOpts, ClientStats, Conn, Daemon, ServeClient, ServeConfig};
use jpmd_trace::{TraceRecord, TraceSource, WorkloadBuilder, MIB};

struct Args {
    dir: String,
    seed: u64,
    tenants: usize,
    duration_secs: f64,
    dedup: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dir: "results/serve_chaos".to_string(),
        seed: 1,
        tenants: 4,
        duration_secs: 1800.0,
        dedup: true,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0usize;
    while i < raw.len() {
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            raw.get(*i)
                .cloned()
                .ok_or_else(|| format!("flag {} needs a value", raw[*i - 1]))
        };
        match raw[i].as_str() {
            "--dir" => args.dir = value(&mut i)?,
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--tenants" => {
                args.tenants = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?;
            }
            "--duration-secs" => {
                args.duration_secs = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--duration-secs: {e}"))?;
            }
            "--no-dedup" => args.dedup = false,
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if args.tenants == 0 {
        return Err("--tenants must be at least 1".into());
    }
    Ok(args)
}

fn tenant_name(index: usize) -> String {
    format!("t{index:02}")
}

fn workload(seed: u64, duration_secs: f64) -> Vec<TraceRecord> {
    let trace = WorkloadBuilder::new()
        .data_set_bytes(256 * MIB)
        .rate_bytes_per_sec(2 * MIB)
        .duration_secs(duration_secs)
        .seed(seed)
        .build()
        .expect("workload parameters are static and valid");
    let mut source = trace.source();
    let mut out = Vec::new();
    while let Some(next) = source.next_record() {
        out.push(next.expect("in-memory sources cannot fail"));
    }
    out
}

/// One request/reply round trip on a fresh, *un-faulted* control
/// connection — the harness's own view of the daemon must not be
/// subject to the storm it is grading.
fn control(addr: SocketAddr, line: &str) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("control connect: {e}"))?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("control clone: {e}"))?;
    writeln!(writer, "{line}").map_err(|e| format!("control write: {e}"))?;
    writer.flush().map_err(|e| format!("control flush: {e}"))?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| format!("control read: {e}"))?;
    Ok(reply.trim_end().to_string())
}

fn field_after(reply: &str, key: &str) -> Option<u64> {
    let mut words = reply.split_whitespace();
    while let Some(word) = words.next() {
        if word == key {
            return words.next()?.parse().ok();
        }
    }
    None
}

fn wait_drained(addr: SocketAddr) -> Result<(), String> {
    let started = Instant::now();
    loop {
        let reply = control(addr, "PING")?;
        match field_after(&reply, "queued") {
            Some(0) => return Ok(()),
            Some(_) => std::thread::sleep(Duration::from_millis(10)),
            None => return Err(format!("bad ping reply: {reply}")),
        }
        if started.elapsed() > Duration::from_secs(300) {
            return Err("daemon failed to drain".into());
        }
    }
}

/// WAL lines normalized through [`ObsRecord`] so wall-clock timestamps
/// do not defeat the byte-identity comparison.
fn normalized_wal(path: &Path) -> Result<Vec<String>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    text.lines()
        .map(|line| {
            ObsRecord::from_line(line)
                .map(|r| r.normalized_line())
                .map_err(|e| format!("malformed WAL line in {}: {e}", path.display()))
        })
        .collect()
}

fn wal_gap_count(path: &Path) -> Result<u64, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut gaps = 0u64;
    for (i, line) in text.lines().enumerate() {
        let record = ObsRecord::from_line(line)
            .map_err(|e| format!("malformed WAL line in {}: {e}", path.display()))?;
        if record.seq != i as u64 {
            gaps += 1;
        }
    }
    Ok(gaps)
}

struct SideReport {
    /// Tenant → (records the client fed, records the daemon applied).
    tenants: BTreeMap<String, (u64, u64)>,
    stats: ClientStats,
    wals: BTreeMap<String, Vec<String>>,
    wal_gaps: u64,
    injected: u64,
}

/// Starts a daemon in `dir`, drives every tenant through connections
/// wrapped by `plan`, drains, verifies counts over the control
/// connection, shuts down cleanly, and reads back the sealed WALs.
fn run_side(
    dir: &Path,
    args: &Args,
    plan: NetFaultPlan,
    dedup: bool,
) -> Result<SideReport, String> {
    let _ = std::fs::remove_dir_all(dir);
    let mut cfg = ServeConfig::new(dir);
    cfg.dedup = dedup;
    let daemon = Daemon::start(cfg).map_err(|e| format!("start daemon: {e}"))?;
    let addr = daemon.addr();
    let injector = Arc::new(NetFaultInjector::new(plan));

    let workers: Vec<_> = (0..args.tenants)
        .map(|index| {
            let injector = Arc::clone(&injector);
            let name = tenant_name(index);
            let records = workload(args.seed + index as u64, args.duration_secs);
            let opts = ClientOpts {
                // Write (and flush) every feed line individually so each
                // record crosses the fault surface on its own, and give
                // the reconnect loop enough budget to outlast a streak
                // of poisoned dials — under `--no-dedup` the blind
                // replay re-sends the whole ring per attempt, so long
                // streaks of mid-replay kills are expected.
                buffer_bytes: 0,
                max_attempts: 32,
                seed: args.seed ^ (index as u64).wrapping_mul(0x9e37),
                ..ClientOpts::default()
            };
            std::thread::spawn(move || -> Result<(String, u64, ClientStats), String> {
                let connector: Box<dyn FnMut() -> std::io::Result<Box<dyn Conn>> + Send> =
                    Box::new(move || {
                        let stream = TcpStream::connect(addr)?;
                        stream.set_nodelay(true).ok();
                        stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
                        Ok(Box::new(injector.wrap(stream)) as Box<dyn Conn>)
                    });
                let mut client = ServeClient::new(connector, &name, 4096, opts);
                let total = records.len() as u64;
                for (i, record) in records.into_iter().enumerate() {
                    client
                        .feed(record)
                        .map_err(|e| format!("{name} feed {i}: {e}"))?;
                    // A periodic barrier keeps the replay ring short and
                    // exercises the ack watermark path mid-storm.
                    if (i + 1) % 64 == 0 {
                        client.sync().map_err(|e| format!("{name} sync: {e}"))?;
                    }
                }
                client
                    .sync()
                    .map_err(|e| format!("{name} final sync: {e}"))?;
                Ok((name, total, client.stats()))
            })
        })
        .collect();

    let mut fed = BTreeMap::new();
    let mut stats = ClientStats::default();
    for worker in workers {
        let (name, total, s) = worker
            .join()
            .map_err(|_| "tenant thread panicked".to_string())??;
        fed.insert(name, total);
        stats.sent += s.sent;
        stats.reconnects += s.reconnects;
        stats.replayed += s.replayed;
        stats.gave_up += s.gave_up;
    }

    wait_drained(addr)?;
    let mut tenants = BTreeMap::new();
    for (name, total) in &fed {
        let reply = control(addr, &format!("QUERY {name} status"))?;
        let applied = field_after(&reply, "records")
            .ok_or_else(|| format!("bad status reply for {name}: {reply}"))?;
        tenants.insert(name.clone(), (*total, applied));
    }

    let reply = control(addr, "SHUTDOWN")?;
    if !reply.starts_with("OK") {
        return Err(format!("shutdown refused: {reply}"));
    }
    daemon.join().map_err(|e| format!("daemon exit: {e}"))?;

    let mut wals = BTreeMap::new();
    let mut wal_gaps = 0u64;
    for name in fed.keys() {
        let path = dir.join(format!("{name}.jsonl"));
        wal_gaps += wal_gap_count(&path)?;
        wals.insert(name.clone(), normalized_wal(&path)?);
    }
    Ok(SideReport {
        tenants,
        stats,
        wals,
        wal_gaps,
        injected: injector.monitor().injected().total(),
    })
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = PathBuf::from(&args.dir);
    std::fs::create_dir_all(&root).map_err(|e| format!("create {}: {e}", root.display()))?;

    println!("reference run (no faults) ...");
    let reference = run_side(&root.join("ref"), &args, NetFaultPlan::disabled(), true)?;
    println!(
        "chaos run (storm seed {}, dedup {}) ...",
        args.seed, args.dedup
    );
    let chaos = run_side(
        &root.join("chaos"),
        &args,
        NetFaultPlan::storm(args.seed),
        args.dedup,
    )?;

    let mut ok = true;
    let mut lost = 0u64;
    let mut duplicated = 0u64;
    for (name, (fed, applied)) in &chaos.tenants {
        lost += fed.saturating_sub(*applied);
        duplicated += applied.saturating_sub(*fed);
        let wal_matches = chaos.wals.get(name) == reference.wals.get(name);
        if fed != applied || !wal_matches {
            ok = false;
        }
        println!(
            "tenant {name}: fed {fed} applied {applied} wal {}",
            if wal_matches { "identical" } else { "DIVERGED" }
        );
    }
    println!(
        "chaos faults injected {} reconnects {} replayed {} gave_up {}",
        chaos.injected, chaos.stats.reconnects, chaos.stats.replayed, chaos.stats.gave_up
    );
    if chaos.injected == 0 || chaos.stats.reconnects == 0 {
        println!("FAIL: the storm never bit (no faults or no reconnects) — harness is vacuous");
        ok = false;
    }
    if chaos.stats.gave_up > 0 {
        println!("FAIL: {} reconnect bursts gave up", chaos.stats.gave_up);
        ok = false;
    }
    if reference.wal_gaps > 0 || chaos.wal_gaps > 0 {
        println!(
            "FAIL: WAL seq gaps (reference {}, chaos {})",
            reference.wal_gaps, chaos.wal_gaps
        );
        ok = false;
    }
    if reference.stats.reconnects > 0 || reference.injected > 0 {
        println!("FAIL: the fault-free reference run saw faults or reconnects");
        ok = false;
    }
    println!("total lost {lost} duplicated {duplicated}");
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("serve_chaos: OK");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!("serve_chaos: FAILED");
            ExitCode::from(1)
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}
