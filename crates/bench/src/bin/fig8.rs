//! Regenerates paper Fig. 8: energy and long-latency rate across data
//! rates (a, b) and popularity (c, d).
//!
//! `--part rate` or `--part popularity` selects one half; default both.
//! Pass `--quick` for a shorter run, `--bars` for bar-chart rendering.

use jpmd_bench::{experiments, write_json, ExperimentConfig};

fn main() -> std::io::Result<()> {
    let cfg = ExperimentConfig::from_args();
    let args: Vec<String> = std::env::args().collect();
    let part = args
        .iter()
        .position(|a| a == "--part")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let mut tables = Vec::new();
    if part.is_none() || part == Some("rate") {
        tables.extend(experiments::fig8_rate(&cfg));
    }
    if part.is_none() || part == Some("popularity") {
        tables.extend(experiments::fig8_popularity(&cfg));
    }
    for t in &tables {
        t.print();
    }
    // `--bars` additionally renders each column as a horizontal bar chart
    // (the closest terminal analogue of the paper's grouped-bar figures).
    if std::env::args().any(|a| a == "--bars") {
        for t in &tables {
            for c in 0..t.columns.len() {
                t.print_bars(c);
            }
        }
    }
    write_json("fig8", &tables)
}
