//! Server-cluster request distribution — the paper's §II-B related work
//! (Pinheiro et al.'s *workload unbalancing* \[4\]; Rajamani & Lefurgy's
//! request-distribution study \[5\]) layered on top of per-server joint
//! power management, as the paper's conclusion proposes ("the combination
//! of the joint method with server clusters' workload distribution will be
//! a topic for future study").
//!
//! Four replicated-content servers take a 200 MB/s aggregate workload
//! under two request-distribution schemes:
//!
//! * **balanced** — round-robin: every server sees ~50 MB/s and must cache
//!   its own copy of the hot set;
//! * **unbalanced** — requests concentrate on the fewest servers that stay
//!   under a per-server rate cap; the spare servers idle, letting their
//!   joint managers shrink memory to the floor and spin the disks down.
//!
//! Expected shape: unbalanced + joint wins (duplicated hot-set caching is
//! the balanced scheme's hidden cost), and the joint manager amplifies the
//! gap because idle servers decay to near-zero power. Pass `--quick` for a
//! shorter run.

use jpmd_bench::{experiments, write_json, ExperimentConfig, Table, WorkloadPoint};
use jpmd_core::methods;
use jpmd_trace::{Trace, TraceRecord, MIB};

const SERVERS: usize = 4;
/// Per-server admission cap for the unbalanced scheme, bytes/s.
const RATE_CAP: f64 = 120.0 * MIB as f64;

/// Splits one aggregate trace into per-server traces.
fn split(trace: &Trace, balanced: bool) -> Vec<Trace> {
    let mut per_server: Vec<Vec<TraceRecord>> = vec![Vec::new(); SERVERS];
    if balanced {
        for (i, r) in trace.records().iter().enumerate() {
            per_server[i % SERVERS].push(*r);
        }
    } else {
        // Sliding 1-second admission windows per server.
        let mut window_start = [0.0f64; SERVERS];
        let mut window_bytes = [0u64; SERVERS];
        for r in trace.records() {
            let bytes = r.pages * trace.page_bytes();
            let mut placed = SERVERS - 1;
            for s in 0..SERVERS {
                if r.time - window_start[s] >= 1.0 {
                    window_start[s] = r.time;
                    window_bytes[s] = 0;
                }
                if (window_bytes[s] + bytes) as f64 <= RATE_CAP {
                    placed = s;
                    break;
                }
            }
            window_bytes[placed] += bytes;
            per_server[placed].push(*r);
        }
    }
    per_server
        .into_iter()
        .map(|records| Trace::new(records, trace.page_bytes(), trace.total_pages()))
        .collect()
}

fn main() -> std::io::Result<()> {
    let cfg = ExperimentConfig::from_args();
    let point = WorkloadPoint {
        data_gb: 16,
        rate_mb: 200,
        popularity: 0.1,
    };
    let aggregate = experiments::make_trace(&cfg, point);

    let mut table = Table::new(
        "Cluster request distribution: 4 servers, 200 MB/s aggregate",
        vec![
            "total_kJ".into(),
            "mem_kJ".into(),
            "disk_kJ".into(),
            "long/s".into(),
            "busiest_server_kJ".into(),
            "idlest_server_kJ".into(),
        ],
    );
    for (dist, balanced) in [("balanced", true), ("unbalanced", false)] {
        let shares = split(&aggregate, balanced);
        for method in ["always-on", "joint"] {
            let spec = if method == "joint" {
                methods::joint(&cfg.scale)
            } else {
                methods::always_on(&cfg.scale)
            };
            let mut total = 0.0;
            let mut mem = 0.0;
            let mut disk = 0.0;
            let mut long = 0.0;
            let mut per_server_kj = Vec::new();
            for share in &shares {
                let r = methods::run_method(
                    &spec,
                    &cfg.scale,
                    share,
                    cfg.warmup_secs,
                    cfg.duration_secs,
                    cfg.period_secs,
                );
                total += r.energy.total_j();
                mem += r.energy.mem.total_j();
                disk += r.energy.disk.total_j();
                long += r.long_latency_per_sec();
                per_server_kj.push(r.energy.total_j() / 1e3);
            }
            per_server_kj.sort_by(f64::total_cmp);
            table.push(
                format!("{dist}/{method}"),
                vec![
                    total / 1e3,
                    mem / 1e3,
                    disk / 1e3,
                    long,
                    per_server_kj[per_server_kj.len() - 1],
                    per_server_kj[0],
                ],
            );
            eprintln!("cluster: {dist}/{method} done");
        }
    }
    table.print();
    write_json("cluster", &table)
}
