//! `store_torture` — the storage-fault chaos harness for the whole
//! durability stack.
//!
//! Drives three seeded phases through [`jpmd_faults::FaultyStorage`] and
//! verifies the recovery invariants the fault seam promises:
//!
//! 1. **Journaled store** — commits `--commits` deterministic
//!    transactions (the `trace_tool db-torture` page conventions, so
//!    `trace_tool db-verify <db> <commits>` cross-checks the survivor)
//!    under a storm of ENOSPC/EIO/short-write/fsync faults, reopening
//!    after every failure. Invariant: every recovery lands on an
//!    **exact commit prefix** — the counter page names commit `m` with
//!    `acked <= m <= attempted` and every data page matches `m`.
//! 2. **Telemetry WAL** — emits through a total outage window, rides
//!    the in-memory ring, drains on recovery, then resumes the file and
//!    keeps emitting. Invariant: the final WAL is seq-gap-free with
//!    zero gap markers (the window is sized under the ring capacity).
//! 3. **Checkpoint seal** — a seal whose fsync/rename crash must fail
//!    *typed*, leave no destination and no stale `.tmp`; the bounded
//!    retry budget then rides out a transient window and the sealed
//!    `.jck` verifies by load.
//!
//! Usage: `store_torture --dir DIR [--commits N] [--seed S] [--io-faults]`
//!
//! Without `--io-faults` every phase runs over disabled plans — the
//! baseline sanity pass CI runs next to the faulted one. Exit code 0
//! means every invariant held; 1 names the violated invariant.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use jpmd_ckpt::{load_checkpoint, CkptMeta, FileCheckpointer};
use jpmd_core::methods::{self, run_method_checkpointed};
use jpmd_core::SimScale;
use jpmd_faults::{FaultyStorage, IoFaultMonitor, IoFaultPlan, SharedBackend};
use jpmd_obs::{JsonlSink, ObsEvent, ObsRecord, Sink, Telemetry, WalPolicy};
use jpmd_sim::{CheckpointOptions, CheckpointPolicy, SimCheckpoint, SimOutcome};
use jpmd_store::{journal_path, PagedFile};
use jpmd_trace::{WorkloadBuilder, MIB};

/// Page geometry mirrors `trace_tool db-torture` exactly, so its
/// `db-verify` subcommand can cross-check phase 1's survivor.
const DB_PAGE: u32 = 256;
const DB_DATA_PAGES: u64 = 16;

fn db_fill(c: u64) -> u8 {
    (c % 249 + 1) as u8
}

fn db_image(b: u8) -> Vec<u8> {
    vec![b; DB_PAGE as usize]
}

/// The exact page state `m` durable commits must leave behind
/// (`db-verify`'s expectation, inlined).
fn verify_prefix(db: &mut PagedFile, m: u64) -> Result<(), String> {
    if m == 0 {
        return Ok(());
    }
    let counter = db
        .read_page(0)
        .map_err(|e| format!("counter page unreadable at prefix {m}: {e}"))?;
    if counter != db_image(db_fill(m)) {
        return Err(format!(
            "counter page holds {:#04x}, expected {:#04x} for commit {m}",
            counter[0],
            db_fill(m)
        ));
    }
    for p in 1..=m.min(DB_DATA_PAGES) {
        let last = p + DB_DATA_PAGES * ((m - p) / DB_DATA_PAGES);
        let got = db
            .read_page(p)
            .map_err(|e| format!("page {p} unreadable at prefix {m}: {e}"))?;
        if got != db_image(db_fill(last)) {
            return Err(format!(
                "page {p} holds {:#04x}, expected {:#04x} (commit {last})",
                got[0],
                db_fill(last)
            ));
        }
    }
    Ok(())
}

/// Reads the adopted commit count back out of a recovered store. The
/// caller knows recovery must land on `m` or `m + 1`; the fill byte
/// distinguishes the two exactly.
fn recovered_count(db: &mut PagedFile, acked: u64, attempted: u64) -> Result<u64, String> {
    let byte = match db.read_page(0) {
        Ok(img) => img[0],
        Err(_) => return Ok(0), // no commit ever became durable
    };
    for candidate in [attempted, acked] {
        if candidate > 0 && byte == db_fill(candidate) {
            return Ok(candidate);
        }
    }
    Err(format!(
        "counter byte {byte:#04x} matches neither acked commit {acked} \
         ({:#04x}) nor attempted commit {attempted} ({:#04x})",
        db_fill(acked),
        db_fill(attempted)
    ))
}

fn reopen(backend: &SharedBackend, path: &Path) -> Result<PagedFile, String> {
    for _ in 0..100 {
        if let Ok(db) = PagedFile::open_on(backend.clone(), path, 8) {
            return Ok(db);
        }
    }
    PagedFile::open(path, 8).map_err(|e| format!("store unopenable even faultless: {e}"))
}

/// Phase 1: the journaled store either completes or recovers to an
/// exact commit prefix, `--commits` times over.
fn torture_store(
    dir: &Path,
    commits: u64,
    plan: IoFaultPlan,
) -> Result<(PathBuf, u64, IoFaultMonitor), String> {
    let path = dir.join("torture.jdb");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(journal_path(&path));
    let storage = FaultyStorage::new(plan);
    let monitor = storage.monitor();
    let backend = SharedBackend::from(storage);

    let mut db = None;
    for _ in 0..100 {
        if let Ok(created) = PagedFile::create_on(backend.clone(), &path, DB_PAGE, 8) {
            db = Some(created);
            break;
        }
    }
    let mut db = db.ok_or("store creation never landed inside the retry budget")?;

    let mut m = 0u64;
    let mut attempts = 0u64;
    let mut recoveries = 0u64;
    while m < commits {
        attempts += 1;
        if attempts > 100 * commits {
            return Err(format!(
                "workload stuck: {m}/{commits} after {attempts} attempts"
            ));
        }
        let next = m + 1;
        let fill = db_image(db_fill(next));
        let staged = db
            .write_page(0, &fill)
            .and_then(|()| db.write_page((next - 1) % DB_DATA_PAGES + 1, &fill))
            .and_then(|()| db.commit())
            .and_then(|seq| {
                if next.is_multiple_of(5) {
                    db.checkpoint().map(|()| seq)
                } else {
                    Ok(seq)
                }
            });
        match staged {
            Ok(_) => m = next,
            Err(_) => {
                // A typed failure is a crash: reopen, and the survivor
                // must be an exact prefix in [m, next].
                recoveries += 1;
                drop(db);
                db = reopen(&backend, &path)?;
                let recovered = recovered_count(&mut db, m, next)?;
                verify_prefix(&mut db, recovered)?;
                m = recovered;
            }
        }
    }
    drop(db);

    // Final faultless verify — exactly what `trace_tool db-verify` does.
    let mut clean =
        PagedFile::open(&path, 8).map_err(|e| format!("final faultless open failed: {e}"))?;
    verify_prefix(&mut clean, commits)?;
    println!(
        "store: {commits} commits durable over {attempts} attempts, \
         {recoveries} recoveries, {} faults injected",
        monitor.injected().total()
    );
    Ok((path, recoveries, monitor))
}

/// Phase 2: the WAL degrades to its ring through an outage, drains on
/// recovery, resumes, and ends seq-gap-free with zero gap markers.
fn torture_wal(dir: &Path, seed: u64, faulted: bool) -> Result<(), String> {
    let path = dir.join("torture.jsonl");
    let _ = std::fs::remove_file(&path);
    // Ops 0..4 land a couple of healthy lines; the outage then holds
    // ~60 emits — far below the ring capacity, so nothing is lost.
    let plan = if faulted {
        IoFaultPlan::outage(seed, 5, 125)
    } else {
        IoFaultPlan::disabled()
    };
    let storage = FaultyStorage::new(plan);
    let backend = SharedBackend::from(storage);
    let record = |seq: u64| ObsRecord {
        seq,
        t_wall_ms: None,
        shard: Some(1),
        event: ObsEvent::Message {
            text: format!("torture {seq}"),
        },
    };

    let sink = JsonlSink::create_with_on(backend.clone(), &path, WalPolicy::wal())
        .map_err(|e| format!("wal create: {e}"))?;
    let mut seq = 0u64;
    let mut saw_degraded = false;
    loop {
        sink.emit(&record(seq));
        seq += 1;
        if sink.storage_degraded() {
            saw_degraded = true;
        } else if saw_degraded || !faulted && seq >= 40 {
            break;
        }
        if seq > 4000 {
            return Err("wal never climbed back to healthy".into());
        }
    }
    sink.flush();
    let write_errors = sink.write_errors();
    if faulted && !saw_degraded {
        return Err("outage window never degraded the wal".into());
    }
    if faulted && write_errors == 0 {
        return Err("no write errors were counted through the outage".into());
    }
    if sink.dropped_records() != 0 {
        return Err(format!(
            "{} records lost though the window fits the ring",
            sink.dropped_records()
        ));
    }
    drop(sink);

    // Resume the file (the daemon-restart path) and keep emitting.
    let resumed = JsonlSink::resume_on(backend, &path, seq, WalPolicy::wal())
        .map_err(|e| format!("wal resume: {e}"))?;
    for _ in 0..20 {
        resumed.emit(&record(seq));
        seq += 1;
    }
    resumed.flush();
    drop(resumed);

    let text = std::fs::read_to_string(&path).map_err(|e| format!("wal read: {e}"))?;
    let mut gaps = 0u64;
    let mut markers = 0u64;
    for (i, line) in text.lines().enumerate() {
        let rec = ObsRecord::from_line(line).map_err(|e| format!("wal line {i}: {e}"))?;
        if rec.seq != i as u64 {
            gaps += 1;
        }
        if let ObsEvent::Message { text } = &rec.event {
            if text.contains("wal gap") {
                markers += 1;
            }
        }
    }
    if gaps != 0 || markers != 0 {
        return Err(format!(
            "wal ended with seq_gaps {gaps}, gap markers {markers}"
        ));
    }
    println!(
        "wal: {seq} records, seq_gaps 0, {write_errors} write errors absorbed, \
         degraded={}",
        u8::from(saw_degraded)
    );
    Ok(())
}

/// Captures one real checkpoint from a short always-on run (the same
/// idiom as `jpmd-ckpt`'s crash-window tests).
fn capture_checkpoint() -> Result<SimCheckpoint, String> {
    let scale = SimScale::small_test();
    let trace = WorkloadBuilder::new()
        .data_set_bytes(64 * MIB)
        .rate_bytes_per_sec(2 * MIB)
        .page_bytes(scale.page_bytes)
        .duration_secs(600.0)
        .seed(7)
        .build()
        .map_err(|e| format!("workload: {e}"))?;
    let spec = methods::always_on(&scale);
    let mut captured = None;
    let mut on_checkpoint = |ckpt: SimCheckpoint| {
        captured = Some(ckpt);
        false
    };
    let outcome = run_method_checkpointed(
        &spec,
        &scale,
        trace.source(),
        60.0,
        600.0,
        120.0,
        &Telemetry::disabled(),
        None,
        Some(CheckpointOptions {
            policy: CheckpointPolicy::every(1),
            on_checkpoint: &mut on_checkpoint,
        }),
    )
    .map_err(|e| format!("capture run: {e}"))?;
    if outcome != SimOutcome::Interrupted {
        return Err("capture run was not interrupted at its checkpoint".into());
    }
    captured.ok_or_else(|| "no checkpoint captured".into())
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().expect("ckpt file name").to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Phase 3: failed seals are typed and clean; the retry budget rides
/// out a transient window and the sealed file verifies.
fn torture_ckpt(dir: &Path, seed: u64, faulted: bool) -> Result<(), String> {
    let ckpt = capture_checkpoint()?;
    let meta = CkptMeta::new("store-torture");

    if faulted {
        // A permanently failing disk with a budget of one attempt: the
        // seal must fail typed, leave no destination, no stale temp.
        let doomed = dir.join("torture-fail.jck");
        let _ = std::fs::remove_file(&doomed);
        let backend =
            SharedBackend::from(FaultyStorage::new(IoFaultPlan::outage(seed, 0, u64::MAX)));
        let mut saver = FileCheckpointer::new(&doomed, meta.clone(), Telemetry::disabled())
            .with_backend(backend)
            .with_retry(1, std::time::Duration::ZERO);
        if saver.save(&ckpt) {
            return Err("seal through a total outage claimed success".into());
        }
        if saver.take_error().is_none() {
            return Err("failed seal produced no typed error".into());
        }
        if doomed.exists() {
            return Err("failed seal left a destination .jck".into());
        }
        if tmp_sibling(&doomed).exists() {
            return Err("failed seal leaked its .tmp sibling".into());
        }
        if load_checkpoint(&doomed).is_ok() {
            return Err("a never-sealed checkpoint verified as valid".into());
        }
    }

    // A transient window the bounded retry budget must ride out.
    let path = dir.join("torture.jck");
    let _ = std::fs::remove_file(&path);
    let plan = if faulted {
        IoFaultPlan::outage(seed, 0, 4)
    } else {
        IoFaultPlan::disabled()
    };
    let backend = SharedBackend::from(FaultyStorage::new(plan));
    let mut saver = FileCheckpointer::new(&path, meta, Telemetry::disabled())
        .with_backend(backend)
        .with_retry(5, std::time::Duration::ZERO);
    if !saver.save(&ckpt) {
        return Err(format!(
            "seal failed past its retry budget: {}",
            saver
                .take_error()
                .map_or_else(|| "unknown".into(), |e| e.to_string())
        ));
    }
    if faulted && saver.retried() == 0 {
        return Err("transient window injected nothing into the seal".into());
    }
    if tmp_sibling(&path).exists() {
        return Err("successful seal leaked its .tmp sibling".into());
    }
    load_checkpoint(&path).map_err(|e| format!("sealed checkpoint failed verify: {e}"))?;
    println!(
        "ckpt: sealed after {} retr(ies), verify ok",
        saver.retried()
    );
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let mut dir = PathBuf::from("runs/store-torture");
    let mut commits = 60u64;
    let mut seed = 1u64;
    let mut faulted = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--dir" => dir = value(&mut i)?.into(),
            "--commits" => {
                commits = value(&mut i)?
                    .parse()
                    .map_err(|_| "bad --commits".to_string())?
            }
            "--seed" => {
                seed = value(&mut i)?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "--io-faults" => faulted = true,
            other => {
                return Err(format!(
                    "unknown flag '{other}'\nusage: store_torture --dir DIR \
                     [--commits N] [--seed S] [--io-faults]"
                ))
            }
        }
        i += 1;
    }
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {dir:?}: {e}"))?;

    let plan = if faulted {
        IoFaultPlan::storm(seed)
    } else {
        IoFaultPlan::disabled()
    };
    let (db_path, recoveries, monitor) = torture_store(&dir, commits, plan)?;
    if faulted && monitor.injected().total() == 0 {
        return Err("storm plan injected nothing into the store phase".into());
    }
    if faulted && recoveries == 0 {
        return Err("store phase never exercised a recovery".into());
    }
    torture_wal(&dir, seed, faulted)?;
    torture_ckpt(&dir, seed, faulted)?;
    println!(
        "PASS store_torture (seed {seed}, io-faults {}): cross-check with \
         `trace_tool db-verify {} {commits}`",
        u8::from(faulted),
        db_path.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("store_torture FAILED: {message}");
            ExitCode::from(1)
        }
    }
}
