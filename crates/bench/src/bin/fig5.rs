//! Regenerates paper Fig. 5: Pareto CDFs for two parameter pairs.

use jpmd_bench::{experiments, write_json};

fn main() -> std::io::Result<()> {
    let table = experiments::fig5();
    table.print();
    write_json("fig5", &table)
}
