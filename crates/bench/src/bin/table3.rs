//! Regenerates paper Table III: memory and disk accesses under different
//! data sets. Pass `--quick` for a shorter run.

use jpmd_bench::{experiments, write_json, ExperimentConfig};

fn main() -> std::io::Result<()> {
    let cfg = ExperimentConfig::from_args();
    let table = experiments::table3(&cfg);
    table.print();
    write_json("table3", &table)
}
