//! Regenerates paper Fig. 9: per-period disk requests and idle lengths at
//! fixed 8/16 GB memories (32 GB data set), validating last-period
//! prediction. Pass `--quick` for a shorter run.

use jpmd_bench::{experiments, write_json, ExperimentConfig};

fn main() -> std::io::Result<()> {
    let cfg = ExperimentConfig::from_args();
    let (series, summary) = experiments::fig9(&cfg);
    series.print();
    summary.print();
    write_json("fig9", &vec![series, summary])
}
