//! Multi-speed (DRPM) disk versus spin-down — the paper's §VI future-work
//! item "multiple-speed disks" and related work \[12\].
//!
//! Drives a single-speed disk (always-on / 2-competitive spin-down) and a
//! multi-speed disk (fixed top speed / utilization-driven DRPM control)
//! with the *same* miss request streams, at several traffic intensities.
//!
//! Expected shape (the DRPM paper's core claim): at moderate intensities
//! the idle intervals are too short for spin-down's 11.7 s break-even, so
//! 2T ≈ always-on, while DRPM still harvests energy by dropping to a lower
//! speed; under very light traffic spin-down wins (0.9 W standby beats any
//! spinning speed); under saturation everything converges to full speed.

use jpmd_bench::{write_json, Table};
use jpmd_disk::{Disk, DiskPowerModel, MultiSpeedDisk, MultiSpeedModel, ServiceModel, SpeedPolicy};
use jpmd_stats::Pareto;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One synthetic request stream: Pareto think times with the given mean.
fn request_stream(mean_gap_s: f64, requests: usize, seed: u64) -> Vec<(f64, u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Pareto-distributed gaps (alpha = 1.5) with the requested mean.
    let beta = mean_gap_s / 3.0; // mean = alpha*beta/(alpha-1) = 3*beta
    let gaps = Pareto::new(1.5, beta)
        .expect("valid")
        .sample_n(&mut rng, requests);
    let mut t = 0.0;
    gaps.iter()
        .map(|g| {
            t += g;
            (t, rng.gen_range(0..100_000u64), rng.gen_range(1..8u64))
        })
        .collect()
}

fn main() -> std::io::Result<()> {
    let power = DiskPowerModel::default();
    let service = ServiceModel::scaled_pages();
    let ms_model = MultiSpeedModel::default();
    let mut table = Table::new(
        "DRPM vs spin-down (identical Pareto request streams, 2000 requests)",
        vec![
            "always_on_J".into(),
            "2T_J".into(),
            "ms_full_J".into(),
            "drpm_J".into(),
            "drpm_lat_ms".into(),
            "speed_chg".into(),
        ],
    );

    for &mean_gap in &[1.0f64, 5.0, 20.0, 60.0, 240.0] {
        let stream = request_stream(mean_gap, 2000, 99);
        let end = stream.last().expect("nonempty").0 + 60.0;

        let single = |timeout: f64| {
            let mut d = Disk::new(power, service, 131_072);
            d.set_timeout(timeout);
            for &(t, page, pages) in &stream {
                d.submit(t, page, pages, 1 << 20);
            }
            d.settle(end);
            d.energy().total_j()
        };
        let multi = |policy: SpeedPolicy| {
            let mut d = MultiSpeedDisk::new(ms_model.clone(), policy, 131_072);
            let mut lat = 0.0;
            for &(t, page, pages) in &stream {
                lat += d.submit(t, page, pages, 1 << 20).latency;
            }
            d.settle(end);
            (d.energy_j(), lat / stream.len() as f64, d.speed_changes())
        };

        let always_on = single(f64::INFINITY);
        let two_t = single(power.break_even_s());
        let (ms_full, _, _) = multi(SpeedPolicy::Fixed(ms_model.num_levels() - 1));
        let (drpm, drpm_lat, changes) = multi(SpeedPolicy::UtilizationDriven {
            low: 0.2,
            high: 0.7,
            window_s: 60.0,
        });
        table.push(
            format!("gap={mean_gap}s"),
            vec![
                always_on,
                two_t,
                ms_full,
                drpm,
                drpm_lat * 1e3,
                changes as f64,
            ],
        );
        eprintln!("drpm: mean gap {mean_gap}s done");
    }
    table.print();
    write_json("drpm", &table)
}
