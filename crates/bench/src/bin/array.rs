//! Multi-disk extension experiment (paper §VI future work): the joint
//! method over a disk array, across member counts and data layouts.
//!
//! Expected shape: the partitioned layout consolidates idleness on cold
//! members (they spin down; cf. Pinheiro & Bianchini, paper ref. \[31\]),
//! while striping keeps every member awake; the array-aware joint policy
//! beats per-disk static timeouts on total energy at equal or better
//! latency. Pass `--quick` for a shorter run.

use jpmd_bench::{experiments, write_json, ExperimentConfig, Table, WorkloadPoint};
use jpmd_core::{ArrayJointPolicy, JointConfig};
use jpmd_disk::{Layout, SpinDownPolicy};
use jpmd_mem::IdlePolicy;
use jpmd_sim::{run_array_simulation, ArrayConfig, NullArrayController, RunReport};

fn main() -> std::io::Result<()> {
    let cfg = ExperimentConfig::from_args();
    let point = WorkloadPoint {
        data_gb: 16,
        rate_mb: 100,
        popularity: 0.1,
    };
    let trace = experiments::make_trace(&cfg, point);
    let mut sim = cfg
        .scale
        .sim_config(IdlePolicy::Nap, cfg.scale.total_banks());
    sim.warmup_secs = cfg.warmup_secs;
    sim.period_secs = cfg.period_secs;

    let run = |disks: usize, layout: Layout, method: &str| -> RunReport {
        let array = ArrayConfig { disks, layout };
        match method {
            "always-on" => run_array_simulation(
                &sim,
                &array,
                SpinDownPolicy::AlwaysOn,
                &mut NullArrayController,
                &trace,
                cfg.duration_secs,
                method,
            ),
            "2T" => run_array_simulation(
                &sim,
                &array,
                SpinDownPolicy::two_competitive(&sim.disk_power),
                &mut NullArrayController,
                &trace,
                cfg.duration_secs,
                method,
            ),
            "joint" => {
                let mut controller = ArrayJointPolicy::new(
                    JointConfig::from_sim(&sim),
                    disks,
                    layout,
                    trace.total_pages(),
                );
                run_array_simulation(
                    &sim,
                    &array,
                    SpinDownPolicy::controlled(f64::INFINITY),
                    &mut controller,
                    &trace,
                    cfg.duration_secs,
                    method,
                )
            }
            other => unreachable!("unknown method {other}"),
        }
    };

    let mut table = Table::new(
        "Multi-disk extension: 16 GB, 100 MB/s, popularity 0.1",
        vec![
            "total_kJ".into(),
            "disk_kJ".into(),
            "mem_kJ".into(),
            "spins".into(),
            "long/s".into(),
            "lat_ms".into(),
        ],
    );
    for &disks in &[1usize, 2, 4] {
        for (layout, lname) in [
            (Layout::Partitioned, "part"),
            (Layout::Striped { stripe_pages: 16 }, "stripe"),
        ] {
            for method in ["always-on", "2T", "joint"] {
                let r = run(disks, layout, method);
                table.push(
                    format!("{disks}d/{lname}/{method}"),
                    vec![
                        r.energy.total_j() / 1e3,
                        r.energy.disk.total_j() / 1e3,
                        r.energy.mem.total_j() / 1e3,
                        r.spin_downs as f64,
                        r.long_latency_per_sec(),
                        r.mean_latency_secs * 1e3,
                    ],
                );
                eprintln!("array: {disks}d {lname} {method} done");
            }
        }
    }
    table.print();
    write_json("array", &table)
}
