//! Regenerates paper Table IV: joint-method sensitivity to the period
//! length. Pass `--quick` for a shorter run.

use jpmd_bench::{experiments, write_json, ExperimentConfig};

fn main() -> std::io::Result<()> {
    let cfg = ExperimentConfig::from_args();
    let table = experiments::table4(&cfg);
    table.print();
    write_json("table4", &table)
}
