//! Table formatting and JSON persistence for the experiment binaries.

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// One labeled row of numeric cells.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Row label (method name, sweep value, …).
    pub label: String,
    /// Cell values, aligned with the table's column headers.
    pub values: Vec<f64>,
}

/// A printable, serializable result table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `"Fig. 7(a) total energy %"`).
    pub title: String,
    /// Column headers (not counting the label column).
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count differs from the column count.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(Row {
            label: label.into(),
            values,
        });
    }

    /// Renders the table to stdout. `NaN` cells print as `-`, matching the
    /// paper's omitted bars (e.g. 2TFM-8GB at the 64 GB data set).
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        print!("{:16}", "");
        for c in &self.columns {
            print!(" {c:>11}");
        }
        println!();
        for row in &self.rows {
            print!("{:16}", row.label);
            for v in &row.values {
                if v.is_nan() {
                    print!(" {:>11}", "-");
                } else if v.abs() >= 1000.0 {
                    print!(" {v:>11.0}");
                } else {
                    print!(" {v:>11.3}");
                }
            }
            println!();
        }
    }
}

impl Table {
    /// Renders one column of the table as a horizontal ASCII bar chart —
    /// the closest terminal analogue of the paper's grouped-bar figures.
    /// `NaN` cells render as `(omitted)`, matching the paper's missing
    /// bars.
    ///
    /// # Panics
    ///
    /// Panics if `column` is out of range.
    pub fn print_bars(&self, column: usize) {
        assert!(column < self.columns.len(), "column out of range");
        println!("\n-- {} @ {} --", self.title, self.columns[column]);
        let max = self
            .rows
            .iter()
            .map(|r| r.values[column])
            .filter(|v| v.is_finite())
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        const WIDTH: usize = 48;
        for row in &self.rows {
            let v = row.values[column];
            if v.is_nan() {
                println!("{:16} (omitted)", row.label);
                continue;
            }
            let filled = ((v / max) * WIDTH as f64).round().clamp(0.0, WIDTH as f64) as usize;
            println!(
                "{:16} {:bar$}{:space$} {v:.3}",
                row.label,
                "#".repeat(filled),
                "",
                bar = filled.clamp(1, WIDTH),
                space = WIDTH - filled,
            );
        }
    }

    /// Renders the table as CSV (label column first, `NaN` as empty cell)
    /// for spreadsheet/plotting pipelines.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("label");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.label);
            for v in &row.values {
                out.push(',');
                if !v.is_nan() {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Writes any serializable result to `results/<name>.json` relative to the
/// workspace root (or the current directory when run elsewhere).
///
/// # Errors
///
/// Propagates filesystem and serialization failures.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<()> {
    let dir = workspace_results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    fs::write(&path, json)?;
    println!("[saved {}]", path.display());
    Ok(())
}

fn workspace_results_dir() -> std::path::PathBuf {
    // crates/bench -> workspace root, when run via cargo from anywhere.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(manifest)
        .join("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_checks_width() {
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        t.push("row", vec![1.0, 2.0]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_width_panics() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push("row", vec![1.0, 2.0]);
    }

    #[test]
    fn bars_render_without_panicking() {
        let mut t = Table::new("t", vec!["x".into()]);
        t.push("a", vec![10.0]);
        t.push("b", vec![f64::NAN]);
        t.push("c", vec![0.0]);
        t.print_bars(0); // visual smoke: must not panic on NaN/zero/max
    }

    #[test]
    #[should_panic(expected = "column out of range")]
    fn bars_check_column_bounds() {
        let t = Table::new("t", vec!["x".into()]);
        t.print_bars(1);
    }

    #[test]
    fn csv_renders_nan_as_empty() {
        let mut t = Table::new("t", vec!["x".into(), "y".into()]);
        t.push("a", vec![1.5, f64::NAN]);
        t.push("b", vec![2.0, 3.0]);
        assert_eq!(t.to_csv(), "label,x,y\na,1.5,\nb,2,3\n");
    }
}
