//! The supervisor's retry path composed with `jpmd-ckpt`: a task that
//! checkpoints every period and then crashes is retried by
//! [`run_queue_supervised`], and the retry — seeing a nonzero attempt —
//! resumes from the `.jck` on disk and still produces a report
//! bit-identical to an uninterrupted run.

use std::fs;
use std::path::PathBuf;

use jpmd_bench::{run_queue_supervised, TaskSupervision};
use jpmd_ckpt::{load_checkpoint, CkptMeta, FileCheckpointer};
use jpmd_core::methods::{self, run_method_checkpointed};
use jpmd_core::{MethodSpec, SimScale};
use jpmd_obs::Telemetry;
use jpmd_sim::{CheckpointOptions, CheckpointPolicy, RunReport, SimCheckpoint, SimOutcome};
use jpmd_trace::{Trace, WorkloadBuilder, MIB};

const WARMUP: f64 = 60.0;
const DURATION: f64 = 600.0;
const PERIOD: f64 = 120.0;

fn workload(scale: &SimScale) -> Trace {
    WorkloadBuilder::new()
        .data_set_bytes(64 * MIB)
        .rate_bytes_per_sec(2 * MIB)
        .page_bytes(scale.page_bytes)
        .duration_secs(DURATION)
        .seed(7)
        .build()
        .expect("workload builds")
}

fn complete(
    spec: &MethodSpec,
    scale: &SimScale,
    trace: &Trace,
    resume: Option<&SimCheckpoint>,
) -> RunReport {
    run_method_checkpointed(
        spec,
        scale,
        trace.source(),
        WARMUP,
        DURATION,
        PERIOD,
        &Telemetry::disabled(),
        resume,
        None,
    )
    .expect("run succeeds")
    .into_report()
    .expect("run completes")
}

#[test]
fn a_crashed_task_resumes_from_its_checkpoint_on_retry() {
    let scale = SimScale::small_test();
    let trace = workload(&scale);
    let spec = methods::always_on(&scale);
    let jck: PathBuf =
        std::env::temp_dir().join(format!("jpmd-bench-supervised-{}.jck", std::process::id()));

    let baseline = complete(&spec, &scale, &trace, None);

    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let items = [spec];
    let results = run_queue_supervised(
        &items,
        1,
        TaskSupervision::none().with_retries(1),
        |s| s.label.clone(),
        |spec, ctx| {
            if ctx.attempt() == 0 {
                // First attempt: checkpoint every period, then die right
                // after the second snapshot seals.
                let telemetry = Telemetry::disabled();
                let mut saver = FileCheckpointer::new(&jck, CkptMeta::new("method"), telemetry);
                let mut on_checkpoint =
                    |ckpt: SimCheckpoint| saver.save(&ckpt) && saver.saved() < 2;
                let outcome = run_method_checkpointed(
                    spec,
                    &scale,
                    trace.source(),
                    WARMUP,
                    DURATION,
                    PERIOD,
                    &Telemetry::disabled(),
                    None,
                    Some(CheckpointOptions {
                        policy: CheckpointPolicy::every(1),
                        on_checkpoint: &mut on_checkpoint,
                    }),
                )
                .expect("interrupted run");
                assert_eq!(outcome, SimOutcome::Interrupted);
                ctx.beat();
                panic!("injected crash after checkpoint");
            }
            // Retry: resume strictly from what the disk remembers.
            let (_, ckpt) = load_checkpoint(&jck).expect("checkpoint loads");
            complete(spec, &scale, &trace, Some(&ckpt))
        },
    );
    std::panic::set_hook(prev);

    assert_eq!(results.len(), 1);
    assert_eq!(
        results[0].as_ref().expect("retry succeeds"),
        &baseline,
        "resumed retry must match the uninterrupted run"
    );
    fs::remove_file(&jck).ok();
}
