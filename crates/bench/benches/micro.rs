//! Criterion microbenchmarks for the hot paths of the simulator: the
//! stack-distance profiler, the LRU cache, the per-size predictor, the
//! Pareto fit, one joint decision, and the disk model. These are the
//! operations whose cost the paper argues is negligible against the
//! 10-minute period ("shorter than 100 ms every period"); the `joint
//! decision` benchmark checks our implementation meets the same budget.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use jpmd_core::{predict_sizes, JointConfig, JointPolicy, SimScale};
use jpmd_disk::{Disk, DiskPowerModel, ServiceModel};
use jpmd_mem::{AccessLog, DiskCache, IdlePolicy, StackProfiler};
use jpmd_sim::{PeriodController, PeriodObservation};
use jpmd_stats::{fit, IdleIntervals, Pareto};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic period log: `n` accesses with Zipf-ish reuse.
fn synth_log(n: usize, pages: u64) -> AccessLog {
    let mut rng = StdRng::seed_from_u64(7);
    let mut profiler = StackProfiler::new();
    let mut log = AccessLog::new();
    for i in 0..n {
        let r: f64 = rng.gen();
        let page = (pages as f64 * r * r) as u64; // quadratic skew
        log.record(i as f64 * 0.01, page, profiler.observe(page));
    }
    log
}

fn bench_stack_profiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("stack_profiler");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("observe_10k_zipf", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let pages: Vec<u64> = (0..10_000)
            .map(|_| {
                let r: f64 = rng.gen();
                (65_536.0 * r * r) as u64
            })
            .collect();
        b.iter_batched(
            StackProfiler::new,
            |mut p| {
                for &page in &pages {
                    black_box(p.observe(page));
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk_cache");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("access_10k", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let pages: Vec<u64> = (0..10_000).map(|_| rng.gen_range(0..32_768)).collect();
        b.iter_batched(
            || DiskCache::new(1024, 16),
            |mut cache| {
                for &page in &pages {
                    black_box(cache.access(page));
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let log = synth_log(60_000, 16_384);
    let candidates: Vec<u64> = (0..=1024u64).map(|b| b * 16).collect();
    let mut group = c.benchmark_group("predictor");
    group.bench_function("predict_1025_sizes_over_60k_log", |b| {
        b.iter(|| black_box(predict_sizes(&log, &candidates, 0.1)));
    });
    group.finish();
}

fn bench_pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto");
    group.bench_function("moment_fit", |b| {
        b.iter(|| black_box(fit::pareto_from_mean(black_box(2.37), 0.1)));
    });
    let truth = Pareto::new(1.7, 0.1).expect("valid");
    let mut rng = StdRng::seed_from_u64(3);
    let samples = truth.sample_n(&mut rng, 10_000);
    group.bench_function("mle_fit_10k", |b| {
        b.iter(|| black_box(fit::pareto_mle(&samples, 0.1)));
    });
    let ts: Vec<f64> = (0..10_000).map(|i| i as f64 * 0.13).collect();
    group.bench_function("idle_extraction_10k", |b| {
        b.iter(|| black_box(IdleIntervals::from_timestamps(&ts, 0.1)));
    });
    group.finish();
}

fn bench_joint_decision(c: &mut Criterion) {
    // One full period decision over a realistic 60k-access log at the
    // paper scale (8192 banks): must stay well under the paper's 100 ms.
    let scale = SimScale::default();
    let sim = scale.sim_config(IdlePolicy::Nap, scale.total_banks());
    let log = synth_log(60_000, 65_536);
    let obs = PeriodObservation {
        start: 0.0,
        end: 600.0,
        cache_accesses: log.len() as u64,
        disk_page_accesses: 3_000,
        disk_requests: 400,
        disk_busy_secs: 50.0,
        idle: IdleIntervals::default().stats(),
        delayed_page_accesses: 0,
        enabled_banks: scale.total_banks(),
        disk_timeout: 11.7,
        energy_total_j: 0.0,
    };
    let mut group = c.benchmark_group("joint");
    group.bench_function("period_decision_60k_log", |b| {
        b.iter_batched(
            || JointPolicy::new(JointConfig::from_sim(&sim)),
            |mut policy| black_box(policy.on_period_end(&obs, &log)),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_disk(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("submit_1k_with_spindown", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let reqs: Vec<(f64, u64)> = {
            let mut t = 0.0;
            (0..1_000)
                .map(|_| {
                    t += rng.gen_range(0.01..30.0);
                    (t, rng.gen_range(0..100_000))
                })
                .collect()
        };
        b.iter_batched(
            || {
                let mut d = Disk::new(
                    DiskPowerModel::default(),
                    ServiceModel::scaled_pages(),
                    131_072,
                );
                d.set_timeout(11.7);
                d
            },
            |mut disk| {
                for &(t, page) in &reqs {
                    black_box(disk.submit(t, page, 4, 1 << 20));
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_routed_predict(c: &mut Criterion) {
    // The multi-disk variant: per-route gap merging over the same log.
    let log = synth_log(60_000, 16_384);
    let candidates: Vec<u64> = (0..=1024u64).map(|b| b * 16).collect();
    let mut group = c.benchmark_group("predictor");
    group.bench_function("routed_4_disks_1025_sizes_60k_log", |b| {
        b.iter(|| {
            black_box(jpmd_core::predict_sizes_routed(
                &log,
                &candidates,
                0.1,
                |page| (page % 4) as usize,
                4,
            ))
        });
    });
    group.finish();
}

fn bench_multispeed(c: &mut Criterion) {
    use jpmd_disk::{MultiSpeedDisk, MultiSpeedModel, SpeedPolicy};
    let mut group = c.benchmark_group("disk");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("multispeed_submit_1k_drpm", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let reqs: Vec<(f64, u64)> = {
            let mut t = 0.0;
            (0..1_000)
                .map(|_| {
                    t += rng.gen_range(0.01..30.0);
                    (t, rng.gen_range(0..100_000))
                })
                .collect()
        };
        b.iter_batched(
            || {
                MultiSpeedDisk::new(
                    MultiSpeedModel::default(),
                    SpeedPolicy::UtilizationDriven {
                        low: 0.2,
                        high: 0.7,
                        window_s: 60.0,
                    },
                    131_072,
                )
            },
            |mut disk| {
                for &(t, page) in &reqs {
                    black_box(disk.submit(t, page, 4, 1 << 20));
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_evacuation(c: &mut Criterion) {
    // Consolidation primitive: drain a full 16-frame bank into free space.
    let mut group = c.benchmark_group("disk_cache");
    group.bench_function("evacuate_one_bank_of_16", |b| {
        b.iter_batched(
            || {
                let mut cache = DiskCache::new(64, 16);
                for p in 0..16u64 {
                    cache.access(p);
                }
                cache
            },
            |mut cache| black_box(cache.evacuate_bank(0)),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_obs_handles(c: &mut Criterion) {
    // The disabled-handle contract: a metric handle from a disabled
    // registry must cost one branch — indistinguishable from no
    // instrumentation at all on the hot path.
    use jpmd_obs::{MetricsRegistry, Telemetry};
    let mut group = c.benchmark_group("obs");
    group.throughput(Throughput::Elements(10_000));
    let live = MetricsRegistry::new().counter("bench.events");
    let dead = MetricsRegistry::disabled().counter("bench.events");
    group.bench_function("counter_enabled_10k", |b| {
        b.iter(|| {
            for _ in 0..10_000 {
                black_box(&live).inc();
            }
        });
    });
    group.bench_function("counter_disabled_10k", |b| {
        b.iter(|| {
            for _ in 0..10_000 {
                black_box(&dead).inc();
            }
        });
    });
    group.bench_function("loop_baseline_10k", |b| {
        b.iter(|| {
            for i in 0..10_000u64 {
                black_box(i);
            }
        });
    });
    let off = Telemetry::disabled();
    group.bench_function("emit_with_disabled_10k", |b| {
        b.iter(|| {
            for i in 0..10_000u64 {
                // The closure must never run on a disabled handle.
                off.emit_with(|| jpmd_obs::ObsEvent::Message {
                    text: format!("never built {i}"),
                });
            }
        });
    });
    group.finish();
}

fn bench_engine_telemetry_overhead(c: &mut Criterion) {
    // The overhead contract from DESIGN.md: replaying a trace with
    // telemetry wired to a null sink must stay within a few percent of
    // the uninstrumented replay (the disabled path must be ≈ free).
    // Compare `replay_disabled` against `replay_null_sink` in the report.
    use jpmd_core::methods;
    use jpmd_obs::{NullSink, Telemetry};
    use jpmd_trace::{WorkloadBuilder, GIB, MIB};
    let scale = SimScale::small_test();
    let trace = WorkloadBuilder::new()
        .data_set_bytes(GIB / 2)
        .rate_bytes_per_sec(4 * MIB)
        .page_bytes(scale.page_bytes)
        .duration_secs(700.0)
        .seed(9)
        .build()
        .expect("workload");
    let spec = methods::joint(&scale);
    let mut group = c.benchmark_group("obs_engine");
    group.bench_function("replay_disabled", |b| {
        b.iter(|| {
            black_box(
                methods::run_method_source_with(
                    &spec,
                    &scale,
                    trace.source(),
                    0.0,
                    700.0,
                    300.0,
                    &Telemetry::disabled(),
                )
                .expect("in-memory source"),
            )
        });
    });
    group.bench_function("replay_null_sink", |b| {
        b.iter(|| {
            let telemetry = Telemetry::new(Box::new(NullSink));
            black_box(
                methods::run_method_source_with(
                    &spec,
                    &scale,
                    trace.source(),
                    0.0,
                    700.0,
                    300.0,
                    &telemetry,
                )
                .expect("in-memory source"),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stack_profiler,
    bench_cache,
    bench_predict,
    bench_routed_predict,
    bench_pareto,
    bench_joint_decision,
    bench_disk,
    bench_multispeed,
    bench_evacuation,
    bench_obs_handles,
    bench_engine_telemetry_overhead
);
criterion_main!(benches);
