//! [`ServeClient`] — the reusable exactly-once feed client.
//!
//! The daemon's wire protocol makes lossless ingest *possible*
//! ([`crate::proto`]: sequenced `FEED`, the ack watermark, `ATTACH`);
//! this client makes it *automatic*. It owns the three mechanisms a
//! caller would otherwise reinvent:
//!
//! * **a bounded replay ring** — every fed record stays in a
//!   [`ClientOpts::ring_cap`]-bounded deque until the daemon's
//!   watermark passes its seq (learned from pushed `ACK` lines, the
//!   [`ServeClient::sync`] barrier, or an `ATTACH` reply);
//! * **reconnect with capped exponential backoff + jitter** — any I/O
//!   error, stall, or seq-gap response drops the connection, dials a
//!   fresh one through the caller-supplied [`Connector`], re-`ATTACH`es,
//!   and replays exactly the un-acked suffix of the ring. The watermark
//!   makes replay idempotent, so a crash *during* replay just replays
//!   again;
//! * **typed give-up** — after [`ClientOpts::max_attempts`] consecutive
//!   failed reconnects the client stops retrying and surfaces
//!   [`ClientError::GaveUp`]; nothing is silently dropped.
//!
//! The [`Connector`] seam is what makes the client testable and
//! chaos-drivable: the bundled [`ServeClient::tcp`] dials plain
//! `TcpStream`s, `serve_chaos` dials through a
//! [`FaultyStream`](jpmd_faults::FaultyStream), and unit tests hand in
//! in-memory duplexes.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::time::Duration;

use jpmd_faults::FaultRng;
use jpmd_trace::TraceRecord;

use crate::proto::{format_feed_seq, parse_ack};

/// What the client needs from a transport: a byte stream it can write
/// requests to and read reply lines from. Blanket-implemented, so any
/// `Read + Write + Send` stream qualifies — `TcpStream`, a
/// [`FaultyStream`](jpmd_faults::FaultyStream) around one, or an
/// in-memory duplex in tests.
pub trait Conn: Read + Write + Send {}
impl<S: Read + Write + Send> Conn for S {}

/// Dials one fresh connection to the daemon. Called on first use and on
/// every reconnect; each call must return a *new* stream (the old one
/// is dropped, closing the real socket underneath a wrapper).
pub type Connector = Box<dyn FnMut() -> io::Result<Box<dyn Conn>> + Send>;

/// Tuning knobs for [`ServeClient`]. `Default` is sized for the
/// loadgen/chaos scale.
#[derive(Debug, Clone)]
pub struct ClientOpts {
    /// Consecutive failed reconnect attempts before the client gives
    /// up with [`ClientError::GaveUp`].
    pub max_attempts: u32,
    /// First retry delay; attempt `n` waits `base * 2^n` (capped).
    pub base_backoff: Duration,
    /// Ceiling on the exponential backoff.
    pub max_backoff: Duration,
    /// Most un-acked records held for replay. [`ServeClient::feed`]
    /// runs a [`ServeClient::sync`] barrier when the ring is full, so
    /// this bounds memory, not throughput.
    pub ring_cap: usize,
    /// Seed for backoff jitter (deterministic per client).
    pub seed: u64,
    /// Coalesce feed lines into batches of about this many bytes before
    /// writing. `0` writes (and flushes) every feed immediately — the
    /// chaos harness uses that to maximize the fault surface.
    pub buffer_bytes: usize,
}

impl Default for ClientOpts {
    fn default() -> Self {
        ClientOpts {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            ring_cap: 4096,
            seed: 0,
            buffer_bytes: 8192,
        }
    }
}

/// Why the client stopped.
#[derive(Debug)]
pub enum ClientError {
    /// Every reconnect attempt in one burst failed; the stream cannot
    /// make progress without operator attention.
    GaveUp {
        /// Consecutive attempts made.
        attempts: u32,
        /// The last attempt's failure.
        last: String,
    },
    /// The replay ring is full even after a sync barrier — the daemon
    /// is acknowledging nothing.
    RingOverflow {
        /// The configured ring capacity.
        cap: usize,
    },
    /// The daemon answered with a non-retryable `ERR`.
    Protocol {
        /// The full reply line.
        reply: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::GaveUp { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            ClientError::RingOverflow { cap } => {
                write!(f, "replay ring full ({cap} un-acked records)")
            }
            ClientError::Protocol { reply } => write!(f, "daemon: {reply}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Counters the client accumulates over its lifetime (reported by
/// `serve_loadgen` and asserted on by the chaos harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Records offered through [`ServeClient::feed`].
    pub sent: u64,
    /// Successful re-`ATTACH`es after the first connection.
    pub reconnects: u64,
    /// Un-acked records rewritten during `ATTACH` replays.
    pub replayed: u64,
    /// Reconnect bursts that exhausted [`ClientOpts::max_attempts`].
    pub gave_up: u64,
}

/// Longest reply line the client will assemble before declaring the
/// connection garbage and redialing.
const MAX_REPLY: usize = 64 * 1024;

/// An exactly-once feed client for one tenant (see the module docs).
pub struct ServeClient {
    connector: Connector,
    tenant: String,
    pages: u64,
    opts: ClientOpts,
    conn: Option<Box<dyn Conn>>,
    /// Bytes read off the connection but not yet consumed as lines.
    read_buf: Vec<u8>,
    /// Feed lines accepted by [`ServeClient::feed`] but not yet written.
    out_buf: String,
    /// Un-acked `(seq, record)` pairs, oldest first, contiguous.
    ring: VecDeque<(u64, TraceRecord)>,
    /// The next seq [`ServeClient::feed`] will assign.
    next_seq: u64,
    /// Highest watermark the daemon has reported.
    acked: u64,
    ever_connected: bool,
    rng: FaultRng,
    stats: ClientStats,
}

impl ServeClient {
    /// A client for `tenant` dialing through `connector`. `pages` sizes
    /// the tenant if the first `ATTACH` creates it.
    pub fn new(
        connector: Connector,
        tenant: impl Into<String>,
        pages: u64,
        opts: ClientOpts,
    ) -> Self {
        let rng = FaultRng::fork(opts.seed, 0x5e37e);
        ServeClient {
            connector,
            tenant: tenant.into(),
            pages,
            opts,
            conn: None,
            read_buf: Vec::new(),
            out_buf: String::new(),
            ring: VecDeque::new(),
            next_seq: 1,
            acked: 0,
            ever_connected: false,
            rng,
            stats: ClientStats::default(),
        }
    }

    /// A client dialing plain TCP to `addr`, with a 5 s read timeout so
    /// a dead daemon surfaces as a reconnectable error instead of a
    /// hang.
    pub fn tcp(
        addr: impl Into<String>,
        tenant: impl Into<String>,
        pages: u64,
        opts: ClientOpts,
    ) -> Self {
        let addr = addr.into();
        let connector: Connector = Box::new(move || {
            let stream = std::net::TcpStream::connect(&addr)?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
            Ok(Box::new(stream) as Box<dyn Conn>)
        });
        ServeClient::new(connector, tenant, pages, opts)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The highest watermark the daemon has reported.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Un-acked records currently held for replay.
    pub fn unacked(&self) -> usize {
        self.ring.len()
    }

    /// Feeds one record exactly-once: assigns it the next seq, parks it
    /// in the replay ring, and writes it (batched per
    /// [`ClientOpts::buffer_bytes`]). Reconnects and replays as needed.
    ///
    /// # Errors
    ///
    /// [`ClientError::GaveUp`] when reconnecting stops working,
    /// [`ClientError::RingOverflow`] when the daemon stops
    /// acknowledging.
    pub fn feed(&mut self, record: TraceRecord) -> Result<(), ClientError> {
        if self.ring.len() >= self.opts.ring_cap {
            // A sync barrier acks everything the daemon has queued —
            // after it the ring is effectively empty unless the daemon
            // is refusing to advance.
            self.sync()?;
            if self.ring.len() >= self.opts.ring_cap {
                return Err(ClientError::RingOverflow {
                    cap: self.opts.ring_cap,
                });
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.out_buf
            .push_str(&format_feed_seq(&self.tenant, seq, &record));
        self.out_buf.push('\n');
        self.ring.push_back((seq, record));
        self.stats.sent += 1;
        if self.out_buf.len() >= self.opts.buffer_bytes.max(1) {
            self.flush_feeds()?;
        }
        Ok(())
    }

    /// Synchronous barrier: flushes pending feeds, asks the daemon for
    /// the tenant's watermark, and prunes the ring to it. After `Ok`,
    /// every record previously fed is applied (or queued) daemon-side.
    ///
    /// # Errors
    ///
    /// Same failure surface as [`ServeClient::feed`], plus
    /// [`ClientError::Protocol`] for a typed daemon refusal.
    pub fn sync(&mut self) -> Result<(), ClientError> {
        let reply = self.ask(&format!("QUERY {} acked", self.tenant))?;
        match token_after(&reply, "acked") {
            Some(acked) if reply.starts_with("OK") => {
                self.note_ack(acked);
                Ok(())
            }
            _ => Err(ClientError::Protocol { reply }),
        }
    }

    /// One control round trip (`PING`, `QUERY`, `STATS`, ...): flushes
    /// pending feeds first so ordering is preserved, writes the line,
    /// and returns the first reply that is not a pushed `ACK`.
    /// Reconnects (with replay) on I/O errors and on async seq-gap
    /// errors; other `ERR` replies are returned for the caller to
    /// judge.
    ///
    /// # Errors
    ///
    /// [`ClientError::GaveUp`] when reconnecting stops working.
    pub fn ask(&mut self, line: &str) -> Result<String, ClientError> {
        let mut burst = 0u32;
        loop {
            self.flush_feeds()?;
            let attempt = (|| -> io::Result<String> {
                let conn = self.conn.as_mut().expect("flush_feeds leaves a live conn");
                conn.write_all(line.as_bytes())?;
                conn.write_all(b"\n")?;
                conn.flush()?;
                loop {
                    let reply = read_reply_line(
                        self.conn.as_mut().expect("conn checked above").as_mut(),
                        &mut self.read_buf,
                    )?;
                    if let Some(acked) = parse_ack(&reply) {
                        self.note_ack_value_only(acked);
                        continue;
                    }
                    return Ok(reply);
                }
            })();
            match attempt {
                Ok(reply) if reply.starts_with("ERR feed seq gap") => {
                    // An async refusal of an earlier feed: the daemon
                    // and our seq stream disagree. Re-attaching resyncs
                    // on the watermark.
                    self.drop_conn();
                }
                Ok(reply) => {
                    self.prune_ring();
                    return Ok(reply);
                }
                Err(_) => self.drop_conn(),
            }
            burst += 1;
            if burst > self.opts.max_attempts {
                self.stats.gave_up += 1;
                return Err(ClientError::GaveUp {
                    attempts: burst,
                    last: "control round trip kept failing".into(),
                });
            }
        }
    }

    /// Seals the tenant (`CLOSE`) after a final sync, then resets the
    /// client's seq stream so a later [`ServeClient::feed`] recreates
    /// the tenant from scratch — the churn flow.
    ///
    /// # Errors
    ///
    /// Same failure surface as [`ServeClient::sync`].
    pub fn close(&mut self) -> Result<(), ClientError> {
        self.sync()?;
        let reply = self.ask(&format!("CLOSE {}", self.tenant))?;
        // "ERR unknown tenant" after a reconnect means the CLOSE landed
        // just before the connection died — that is success.
        if !reply.starts_with("OK") && !reply.contains("unknown tenant") {
            return Err(ClientError::Protocol { reply });
        }
        self.ring.clear();
        self.next_seq = 1;
        self.acked = 0;
        // The daemon-side tenant is gone; the next operation must
        // re-ATTACH (recreating it) rather than feed a ghost.
        self.drop_conn();
        Ok(())
    }

    /// Flushes buffered feed lines, reconnecting (and replaying) as
    /// needed until they are on the wire or the attempt budget is gone.
    ///
    /// # Errors
    ///
    /// [`ClientError::GaveUp`] when reconnecting stops working.
    pub fn flush_feeds(&mut self) -> Result<(), ClientError> {
        let mut burst = 0u32;
        let mut last = String::from("never attempted");
        loop {
            if burst > self.opts.max_attempts {
                self.stats.gave_up += 1;
                return Err(ClientError::GaveUp {
                    attempts: burst,
                    last,
                });
            }
            if burst > 0 {
                self.backoff(burst);
            }
            if self.conn.is_none() {
                match self.attach_once() {
                    Ok(()) => {}
                    Err(e) => {
                        last = e;
                        burst += 1;
                        continue;
                    }
                }
                // A successful attach replayed the whole un-acked ring,
                // which covers everything out_buf held.
                return Ok(());
            }
            if self.out_buf.is_empty() {
                return Ok(());
            }
            let conn = self.conn.as_mut().expect("checked above");
            match conn
                .write_all(self.out_buf.as_bytes())
                .and_then(|()| conn.flush())
            {
                Ok(()) => {
                    self.out_buf.clear();
                    return Ok(());
                }
                Err(e) => {
                    last = format!("write: {e}");
                    self.drop_conn();
                    burst += 1;
                }
            }
        }
    }

    /// Dials one connection, `ATTACH`es, adopts the watermark, and
    /// replays the un-acked ring. Returns a human-readable failure
    /// reason (the conn is dropped) instead of retrying itself.
    fn attach_once(&mut self) -> Result<(), String> {
        self.read_buf.clear();
        // Anything pending is covered by the ring replay below.
        self.out_buf.clear();
        let mut conn = (self.connector)().map_err(|e| format!("connect: {e}"))?;
        let attach = format!("ATTACH {} {}\n", self.tenant, self.pages);
        let reply = (|| -> io::Result<String> {
            conn.write_all(attach.as_bytes())?;
            conn.flush()?;
            loop {
                let reply = read_reply_line(conn.as_mut(), &mut self.read_buf)?;
                if parse_ack(&reply).is_none() {
                    return Ok(reply);
                }
            }
        })()
        .map_err(|e| format!("attach: {e}"))?;
        let Some(acked) = token_after(&reply, "acked").filter(|_| reply.starts_with("OK")) else {
            return Err(format!("attach refused: {reply}"));
        };
        if self.stats.sent == 0 && self.next_seq == 1 {
            // Fresh client against a resumed tenant: continue the seq
            // stream where the previous incarnation left it instead of
            // colliding with already-applied seqs.
            self.next_seq = acked + 1;
        }
        self.acked = self.acked.max(acked);
        self.prune_ring();
        // Replay everything past the watermark, in seq order. The
        // daemon drops any prefix it already holds.
        let mut replayed = 0u64;
        let replay = (|| -> io::Result<()> {
            for (seq, record) in &self.ring {
                conn.write_all(format_feed_seq(&self.tenant, *seq, record).as_bytes())?;
                conn.write_all(b"\n")?;
                replayed += 1;
            }
            conn.flush()
        })();
        self.stats.replayed += replayed;
        replay.map_err(|e| format!("replay: {e}"))?;
        if self.ever_connected {
            self.stats.reconnects += 1;
        }
        self.ever_connected = true;
        self.conn = Some(conn);
        Ok(())
    }

    /// Adopts a watermark report and prunes acknowledged records.
    fn note_ack(&mut self, acked: u64) {
        self.note_ack_value_only(acked);
        self.prune_ring();
    }

    fn note_ack_value_only(&mut self, acked: u64) {
        self.acked = self.acked.max(acked);
    }

    fn prune_ring(&mut self) {
        while self.ring.front().is_some_and(|(seq, _)| *seq <= self.acked) {
            self.ring.pop_front();
        }
    }

    fn drop_conn(&mut self) {
        self.conn = None;
        self.read_buf.clear();
    }

    /// Sleeps `base * 2^(burst-1)` capped at `max`, plus up to one
    /// `base` of seeded jitter — so a thousand clients dropped by one
    /// fault window don't redial in lockstep.
    fn backoff(&mut self, burst: u32) {
        let base = self.opts.base_backoff.max(Duration::from_millis(1));
        let exp = base.saturating_mul(1u32 << burst.saturating_sub(1).min(16));
        let jitter = Duration::from_millis(self.rng.below(base.as_millis().max(1) as u64 + 1));
        std::thread::sleep(exp.min(self.opts.max_backoff) + jitter);
    }
}

/// Reads one `\n`-terminated line from `conn` (buffering partial reads
/// in `buf`), trimmed. EOF mid-line or a reply past [`MAX_REPLY`] is an
/// error — both mean the connection is done.
fn read_reply_line(conn: &mut dyn Conn, buf: &mut Vec<u8>) -> io::Result<String> {
    loop {
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            return Ok(String::from_utf8_lossy(&line).trim_end().to_string());
        }
        if buf.len() > MAX_REPLY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "reply line past 64 KiB",
            ));
        }
        let mut chunk = [0u8; 4096];
        let n = conn.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-reply",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// The numeric token after `key` in a space-separated reply line.
fn token_after(line: &str, key: &str) -> Option<u64> {
    let mut words = line.split_ascii_whitespace();
    while let Some(word) = words.next() {
        if word == key {
            return words.next()?.parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_after_finds_watermarks() {
        assert_eq!(
            token_after("OK attached t pages 64 acked 17", "acked"),
            Some(17)
        );
        assert_eq!(token_after("OK acked 0", "acked"), Some(0));
        assert_eq!(token_after("OK pong queued 5", "acked"), None);
        assert_eq!(token_after("OK acked x", "acked"), None);
    }

    #[test]
    fn reply_lines_assemble_across_chunks() {
        let mut buf = Vec::new();
        let mut source = std::io::Cursor::new(b"ACK 32\nOK acked 64\n".to_vec());
        assert_eq!(read_reply_line(&mut source, &mut buf).unwrap(), "ACK 32");
        assert_eq!(
            read_reply_line(&mut source, &mut buf).unwrap(),
            "OK acked 64"
        );
        assert!(
            read_reply_line(&mut source, &mut buf).is_err(),
            "EOF is typed"
        );
    }
}
