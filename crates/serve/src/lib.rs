//! # jpmd-serve — a long-running multi-tenant policy daemon
//!
//! Everything below `jpmd-serve` answers *"what would the joint policy
//! have done on this trace?"* — batch replays with a beginning and an
//! end. This crate turns the same stack into a **service**: a daemon
//! that accepts streamed access records for many concurrent tenants
//! over a line-based TCP protocol, runs each tenant's joint policy
//! incrementally ([`jpmd_core::PolicyStepper`] — bit-identical to the
//! batch loop), and answers control queries (current disk timeout,
//! bank count, predicted miss curve, energy so far) with bounded
//! latency while the streams keep flowing.
//!
//! The daemon composes three existing subsystems instead of growing
//! new ones:
//!
//! * **Observability** — every tenant counter lives in a shared
//!   [`jpmd_obs::MetricsRegistry`], exported in Prometheus
//!   text-exposition format on an HTTP `GET /metrics` endpoint (a
//!   hand-rolled HTTP/1.0 responder on the same listening socket —
//!   zero new dependencies).
//! * **Fault tolerance** — each tenant's policy runs under a
//!   [`jpmd_faults::DegradationGuard`] whose innermost policy is an
//!   [`OverloadPolicy`]: when the daemon's global feed backlog crosses
//!   the shed watermark, every tenant's next decision *fails
//!   deliberately* and the guard walks its fallback chain
//!   (joint → power-down → always-on) while new tenant admissions are
//!   rejected. Recovery is the guard's own promotion ladder — the
//!   daemon never stalls, it degrades.
//! * **Durability** — `SIGTERM` or a `SHUTDOWN` command seals one
//!   [`jpmd_ckpt`] checkpoint per tenant plus a
//!   [`TenantManifest`](jpmd_ckpt::TenantManifest), and a restart with
//!   [`ServeConfig::resume`] rebuilds every tenant from its image; the
//!   client replays its stream from the start and the stepper discards
//!   the consumed prefix.
//!
//! The bundled `serve_loadgen` binary drives the daemon (open- or
//! closed-loop, tenant churn, seeded synthetic workloads from
//! [`jpmd_trace`]) and reports sustained tenants × records/s into
//! `results/serve_bench.json`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use jpmd_core::SimScale;
use jpmd_faults::SharedBackend;

pub mod client;
pub mod daemon;
pub mod proto;
pub mod tenant;

pub use client::{ClientError, ClientOpts, ClientStats, Conn, Connector, ServeClient};
pub use daemon::{Daemon, DaemonStats};
pub use proto::{parse_request, QueryKind, Request};
pub use tenant::{build_stepper, OverloadPolicy, TenantController};

/// The daemon's configuration. Start from [`ServeConfig::new`] and
/// override fields; every default is sized for the small-test scale the
/// integration tests and the CI smoke use.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory for per-tenant telemetry WALs, checkpoints, and the
    /// shutdown manifest. Created if absent.
    pub dir: PathBuf,
    /// TCP port to listen on (loopback only). `0` binds an ephemeral
    /// port; read the real one from [`Daemon::addr`].
    pub port: u16,
    /// The simulation scale every tenant runs at.
    pub scale: SimScale,
    /// Control-period length, stream seconds.
    pub period_secs: f64,
    /// Stream-time horizon per tenant. Serving runs are open-ended, so
    /// the default is effectively infinite; the stepper still closes
    /// cleanly at shutdown without reaching it.
    pub duration_secs: f64,
    /// Page-space size for tenants that do not declare one in `OPEN`.
    pub default_pages: u64,
    /// Hard cap on concurrently open tenants; `OPEN` beyond it is
    /// rejected.
    pub max_tenants: usize,
    /// Queued-record high watermark: at or above it the daemon enters
    /// admission shedding (policy decisions degrade, new `OPEN`s are
    /// rejected).
    pub shed_high: u64,
    /// Queued-record low watermark: below it shedding clears.
    pub shed_low: u64,
    /// Records a worker feeds a tenant per scheduling turn before
    /// yielding the tenant back to the run queue (fairness quantum).
    pub batch: usize,
    /// Worker threads; `0` picks from available parallelism.
    pub workers: usize,
    /// Whether tenants stream telemetry WALs into [`ServeConfig::dir`].
    pub telemetry: bool,
    /// Resume tenants from the manifest sealed by a previous shutdown.
    pub resume: bool,
    /// Emit a standalone `ACK <seq>` line after this many accepted
    /// sequenced records per tenant (every seq divisible by it). Lets
    /// clients prune their replay rings without a synchronous round
    /// trip per record.
    pub ack_every: u64,
    /// Whether the ack-watermark dedup machinery is live: sequenced
    /// feeds at or below the watermark are dropped and `ATTACH` reports
    /// the watermark so clients can prune their replay rings before
    /// replaying (exactly-once). Disabling this — `serve_chaos
    /// --no-dedup`, the negative control — reports `acked 0` at attach
    /// and applies replays twice, which the chaos harness must detect.
    pub dedup: bool,
    /// Storage backend every durable write (tenant WALs, checkpoint
    /// seals) goes through. The default is the real filesystem; the
    /// chaos smoke swaps in a
    /// [`FaultyStorage`](jpmd_faults::FaultyStorage) to prove the
    /// daemon sheds telemetry, not tenants, when the disk misbehaves.
    pub backend: SharedBackend,
}

impl ServeConfig {
    /// A configuration rooted at `dir` with every default: ephemeral
    /// port, small-test scale, 300 s periods, telemetry on.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            dir: dir.into(),
            port: 0,
            scale: SimScale::small_test(),
            period_secs: 300.0,
            duration_secs: 1e9,
            default_pages: 4096,
            max_tenants: 1024,
            shed_high: 100_000,
            shed_low: 20_000,
            batch: 512,
            workers: 0,
            telemetry: true,
            resume: false,
            ack_every: 32,
            dedup: true,
            backend: SharedBackend::real_fs(),
        }
    }
}

/// Set by the `SIGTERM` handler; polled by the daemon's accept loop so a
/// supervisor's stop request seals checkpoints exactly like a `SHUTDOWN`
/// command.
static SIGTERM_RECEIVED: AtomicBool = AtomicBool::new(false);

/// Whether a `SIGTERM` has arrived since
/// [`install_sigterm_handler`] ran.
pub fn sigterm_received() -> bool {
    SIGTERM_RECEIVED.load(Ordering::Relaxed)
}

/// Installs a `SIGTERM` handler that flips the flag behind
/// [`sigterm_received`]. The handler only stores an atomic — it is
/// async-signal-safe. Idempotent; a no-op on platforms without
/// `signal(2)` semantics is acceptable because the daemon also honors
/// the in-band `SHUTDOWN` command.
#[cfg(unix)]
pub fn install_sigterm_handler() {
    #[allow(unsafe_code)]
    mod ffi {
        //! The one FFI corner of the crate: registering a signal
        //! handler has no safe std API. The handler body is a single
        //! relaxed atomic store, which is async-signal-safe.
        use std::sync::atomic::Ordering;

        const SIGTERM: i32 = 15;

        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }

        extern "C" fn handle_term(_signum: i32) {
            super::SIGTERM_RECEIVED.store(true, Ordering::Relaxed);
        }

        pub fn install() {
            unsafe {
                signal(SIGTERM, handle_term as *const () as usize);
            }
        }
    }
    ffi::install();
}

/// Non-unix stub: the daemon still shuts down via the `SHUTDOWN`
/// command.
#[cfg(not(unix))]
pub fn install_sigterm_handler() {}
