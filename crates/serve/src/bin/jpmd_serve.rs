//! The `jpmd-serve` daemon binary.
//!
//! Binds a loopback TCP listener, serves the line protocol and
//! `GET /metrics`, and seals per-tenant checkpoints on `SHUTDOWN` or
//! `SIGTERM`. With `--port 0` (the default) the kernel picks the port;
//! `--addr-file` publishes the bound address for scripts.
//!
//! ```text
//! jpmd_serve --dir runs/serve [--port 0] [--addr-file PATH]
//!            [--period-secs 300] [--default-pages 4096]
//!            [--shed-high 100000] [--shed-low 20000]
//!            [--batch 512] [--workers 0] [--max-tenants 1024]
//!            [--resume] [--no-telemetry]
//!            [--ack-every N] [--no-dedup]
//!            [--wal-faults FROM:UNTIL] [--fault-seed N]
//! ```
//!
//! `--wal-faults FROM:UNTIL` routes every durable write (tenant WALs,
//! checkpoint seals) through a deterministic
//! [`FaultyStorage`](jpmd_faults::FaultyStorage) running a total outage
//! while the global storage-operation counter is inside `[FROM, UNTIL)`
//! — the chaos smoke's lever for proving the daemon keeps answering
//! queries with `serve_storage_degraded` raised, then recovers to
//! gap-free WALs.
//!
//! Exit codes follow the workspace convention: `0` clean shutdown, `1`
//! runtime failure, `2` bad invocation.

use std::io::Write;
use std::process::ExitCode;

use jpmd_faults::{FaultyStorage, IoFaultPlan, SharedBackend};
use jpmd_serve::{install_sigterm_handler, Daemon, ServeConfig};

const USAGE: &str = "usage: jpmd_serve --dir DIR [--port N] [--addr-file PATH] \
[--period-secs S] [--duration-secs S] [--default-pages N] [--max-tenants N] \
[--shed-high N] [--shed-low N] [--batch N] [--workers N] [--resume] [--no-telemetry] \
[--ack-every N] [--no-dedup] [--wal-faults FROM:UNTIL] [--fault-seed N]";

enum CliError {
    Usage(String),
    Runtime(String),
}

fn parse_value<T: std::str::FromStr>(
    args: &[String],
    i: &mut usize,
    flag: &str,
) -> Result<T, CliError> {
    *i += 1;
    let word = args
        .get(*i)
        .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
    word.parse()
        .map_err(|_| CliError::Usage(format!("bad value '{word}' for {flag}")))
}

/// Parses `FROM:UNTIL` into an operation window.
fn parse_window(word: &str) -> Option<(u64, u64)> {
    let (from, until) = word.split_once(':')?;
    Some((from.parse().ok()?, until.parse().ok()?))
}

fn parse_config(args: &[String]) -> Result<(ServeConfig, Option<String>), CliError> {
    let mut dir: Option<String> = None;
    let mut addr_file: Option<String> = None;
    let mut wal_faults: Option<(u64, u64)> = None;
    let mut fault_seed: u64 = 0;
    let mut cfg = ServeConfig::new(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => dir = Some(parse_value(args, &mut i, "--dir")?),
            "--addr-file" => addr_file = Some(parse_value(args, &mut i, "--addr-file")?),
            "--port" => cfg.port = parse_value(args, &mut i, "--port")?,
            "--period-secs" => cfg.period_secs = parse_value(args, &mut i, "--period-secs")?,
            "--duration-secs" => cfg.duration_secs = parse_value(args, &mut i, "--duration-secs")?,
            "--default-pages" => cfg.default_pages = parse_value(args, &mut i, "--default-pages")?,
            "--max-tenants" => cfg.max_tenants = parse_value(args, &mut i, "--max-tenants")?,
            "--shed-high" => cfg.shed_high = parse_value(args, &mut i, "--shed-high")?,
            "--shed-low" => cfg.shed_low = parse_value(args, &mut i, "--shed-low")?,
            "--batch" => cfg.batch = parse_value(args, &mut i, "--batch")?,
            "--workers" => cfg.workers = parse_value(args, &mut i, "--workers")?,
            "--resume" => cfg.resume = true,
            "--no-telemetry" => cfg.telemetry = false,
            "--ack-every" => cfg.ack_every = parse_value(args, &mut i, "--ack-every")?,
            // The chaos harness's negative control: apply sequenced
            // replays twice instead of deduplicating them.
            "--no-dedup" => cfg.dedup = false,
            "--wal-faults" => {
                let word: String = parse_value(args, &mut i, "--wal-faults")?;
                wal_faults = Some(parse_window(&word).ok_or_else(|| {
                    CliError::Usage(format!("bad window '{word}' for --wal-faults (FROM:UNTIL)"))
                })?);
            }
            "--fault-seed" => fault_seed = parse_value(args, &mut i, "--fault-seed")?,
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
        i += 1;
    }
    let dir = dir.ok_or_else(|| CliError::Usage("--dir is required".into()))?;
    cfg.dir = dir.into();
    if cfg.shed_low >= cfg.shed_high {
        return Err(CliError::Usage(
            "--shed-low must be below --shed-high".into(),
        ));
    }
    if let Some((from, until)) = wal_faults {
        if from >= until {
            return Err(CliError::Usage(
                "--wal-faults needs FROM below UNTIL".into(),
            ));
        }
        cfg.backend = SharedBackend::from(FaultyStorage::new(IoFaultPlan::outage(
            fault_seed, from, until,
        )));
    }
    Ok((cfg, addr_file))
}

fn run(args: &[String]) -> Result<(), CliError> {
    let (cfg, addr_file) = parse_config(args)?;
    install_sigterm_handler();
    let resumed = cfg.resume;
    let daemon = Daemon::start(cfg).map_err(|e| CliError::Runtime(e.to_string()))?;
    let addr = daemon.addr();
    if let Some(path) = addr_file {
        // Write-then-rename so a watcher never reads a half-written
        // address.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{addr}\n")).map_err(|e| CliError::Runtime(e.to_string()))?;
        std::fs::rename(&tmp, &path).map_err(|e| CliError::Runtime(e.to_string()))?;
    }
    println!(
        "jpmd-serve listening on {addr}{}",
        if resumed { " (resumed)" } else { "" }
    );
    std::io::stdout().flush().ok();
    daemon.join().map_err(|e| CliError::Runtime(e.to_string()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}
