//! Load generator and control client for the `jpmd-serve` daemon.
//!
//! `run` drives N concurrent tenants over TCP with seeded synthetic
//! workloads ([`jpmd_trace::WorkloadBuilder`]) — closed-loop (paced by
//! `PING` backlog probes) or open-loop (target records/s per tenant) —
//! optionally churning tenants (close + reopen mid-stream), waits for
//! the daemon to drain, and reports sustained tenants × records/s into
//! a JSON results file.
//!
//! Every tenant streams through a [`jpmd_serve::ServeClient`]: feeds
//! carry client-assigned seqs, un-acked records ride a bounded replay
//! ring, and a dropped connection reconnects + replays transparently.
//! The client-side `reconnects`/`replayed`/`gave_up` counters land in
//! the stats line and `results/serve_bench.json`.
//!
//! The other verbs are thin control-plane clients so scripts and CI
//! need neither `curl` nor `nc`:
//!
//! ```text
//! serve_loadgen run --addr HOST:PORT [--tenants 32] [--seed 1]
//!                   [--duration-secs 1800] [--data-mb 256] [--rate-mb 2]
//!                   [--qps N] [--churn] [--max-backlog 200000]
//!                   [--report results/serve_bench.json]
//! serve_loadgen metrics --addr HOST:PORT          # GET /metrics body
//! serve_loadgen query --addr HOST:PORT TENANT timeout|banks|misscurve|energy|status
//! serve_loadgen stats --addr HOST:PORT
//! serve_loadgen shutdown --addr HOST:PORT
//! ```
//!
//! Exit codes: `0` ok, `1` runtime failure (including an `ERR`
//! response), `2` bad invocation.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use jpmd_serve::{ClientOpts, ClientStats, ServeClient};
use jpmd_trace::{TraceSource, WorkloadBuilder, MIB};

const USAGE: &str =
    "usage: serve_loadgen <run|metrics|query|stats|shutdown> --addr HOST:PORT [options]
  run      [--tenants N] [--seed N] [--duration-secs S] [--data-mb N] [--rate-mb N]
           [--qps N] [--churn] [--max-backlog N] [--report PATH] [--no-drain]
  query    TENANT timeout|banks|misscurve|energy|status";

enum CliError {
    Usage(String),
    Runtime(String),
}

fn runtime(e: impl std::fmt::Display) -> CliError {
    CliError::Runtime(e.to_string())
}

/// One request/response exchange on a fresh connection.
fn exchange(addr: &str, line: &str) -> Result<String, CliError> {
    let stream = TcpStream::connect(addr).map_err(runtime)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(runtime)?);
    let mut writer = stream;
    writeln!(writer, "{line}").map_err(runtime)?;
    writer.flush().map_err(runtime)?;
    let mut response = String::new();
    reader.read_line(&mut response).map_err(runtime)?;
    Ok(response.trim_end().to_string())
}

/// Fetches an HTTP path from the daemon and returns the body.
fn http_get(addr: &str, path: &str) -> Result<String, CliError> {
    let mut stream = TcpStream::connect(addr).map_err(runtime)?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: jpmd-serve\r\n\r\n").map_err(runtime)?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(runtime)?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("");
    Ok(body.to_string())
}

/// Parses the backlog out of an `OK pong queued <n>` response.
fn parse_queued(response: &str) -> Option<u64> {
    let mut words = response.split_ascii_whitespace();
    while let Some(word) = words.next() {
        if word == "queued" {
            return words.next()?.parse().ok();
        }
    }
    None
}

#[derive(Clone)]
struct RunOpts {
    addr: String,
    tenants: usize,
    seed: u64,
    duration_secs: f64,
    data_mb: u64,
    rate_mb: u64,
    /// Open-loop target records/s per tenant; 0 = closed loop.
    qps: f64,
    churn: bool,
    max_backlog: u64,
    report: String,
    drain: bool,
}

impl RunOpts {
    fn new(addr: String) -> Self {
        RunOpts {
            addr,
            tenants: 32,
            seed: 1,
            duration_secs: 1800.0,
            data_mb: 256,
            rate_mb: 2,
            qps: 0.0,
            churn: false,
            max_backlog: 200_000,
            report: "results/serve_bench.json".into(),
            drain: true,
        }
    }
}

/// Streams one tenant's workload through a [`ServeClient`]; returns
/// records sent plus the client's reliability counters.
fn drive_tenant(opts: &RunOpts, index: usize) -> Result<(u64, ClientStats), CliError> {
    let name = format!("tenant-{index:03}");
    let trace = WorkloadBuilder::new()
        .data_set_bytes(opts.data_mb * MIB)
        .rate_bytes_per_sec(opts.rate_mb * MIB)
        .duration_secs(opts.duration_secs)
        .seed(opts.seed + index as u64)
        .build()
        .map_err(runtime)?;
    let pages = trace.total_pages();

    let client_opts = ClientOpts {
        seed: opts.seed + index as u64,
        ..ClientOpts::default()
    };
    let mut client = ServeClient::tcp(&opts.addr, &name, pages, client_opts);

    let records: Vec<_> = {
        let mut source = trace.source();
        let mut out = Vec::new();
        while let Some(next) = source.next_record() {
            out.push(next.map_err(runtime)?);
        }
        out
    };
    let churn_at = if opts.churn {
        records.len() / 2
    } else {
        usize::MAX
    };
    let started = Instant::now();
    let mut sent = 0u64;
    for (i, record) in records.iter().enumerate() {
        if i == churn_at {
            // Seal and recreate the tenant mid-stream; the client
            // resets its seq stream to match the fresh tenant.
            client
                .close()
                .map_err(|e| CliError::Runtime(format!("close {name}: {e}")))?;
        }
        client
            .feed(*record)
            .map_err(|e| CliError::Runtime(format!("feed {name}: {e}")))?;
        sent += 1;
        if sent.is_multiple_of(256) {
            if opts.qps > 0.0 {
                // Open loop: pace to the target rate, never wait on the
                // daemon.
                client
                    .flush_feeds()
                    .map_err(|e| CliError::Runtime(format!("flush {name}: {e}")))?;
                let due = sent as f64 / opts.qps;
                let elapsed = started.elapsed().as_secs_f64();
                if due > elapsed {
                    std::thread::sleep(Duration::from_secs_f64(due - elapsed));
                }
            } else {
                // Closed loop: one PING round trip per batch, plus a
                // backlog cap so the daemon is paced, not buried.
                loop {
                    let reply = client
                        .ask("PING")
                        .map_err(|e| CliError::Runtime(format!("ping {name}: {e}")))?;
                    match parse_queued(&reply) {
                        Some(queued) if queued > opts.max_backlog => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        _ => break,
                    }
                }
            }
        }
    }
    // Final barrier: every record fed is acked (applied or queued)
    // daemon-side before this tenant's thread reports success.
    client
        .sync()
        .map_err(|e| CliError::Runtime(format!("final sync {name}: {e}")))?;
    Ok((sent, client.stats()))
}

#[derive(serde::Serialize)]
struct RunReportJson {
    tenants: usize,
    records_sent: u64,
    send_secs: f64,
    drain_secs: f64,
    wall_secs: f64,
    records_per_sec: f64,
    mode: String,
    qps_per_tenant: f64,
    churn: bool,
    seed: u64,
    duration_secs: f64,
    reconnects: u64,
    replayed: u64,
    gave_up: u64,
    daemon_stats: String,
}

fn cmd_run(opts: &RunOpts) -> Result<(), CliError> {
    let started = Instant::now();
    let workers: Vec<_> = (0..opts.tenants)
        .map(|index| {
            let opts = opts.clone();
            std::thread::spawn(move || drive_tenant(&opts, index))
        })
        .collect();
    let mut records_sent = 0u64;
    let mut net = ClientStats::default();
    for worker in workers {
        let (sent, stats) = worker
            .join()
            .map_err(|_| CliError::Runtime("tenant thread panicked".into()))??;
        records_sent += sent;
        net.reconnects += stats.reconnects;
        net.replayed += stats.replayed;
        net.gave_up += stats.gave_up;
    }
    let send_secs = started.elapsed().as_secs_f64();

    // Sustained throughput counts work the daemon *finished*: wait for
    // the backlog to drain before stopping the clock.
    let drain_started = Instant::now();
    if opts.drain {
        loop {
            let reply = exchange(&opts.addr, "PING")?;
            match parse_queued(&reply) {
                Some(0) => break,
                Some(_) => std::thread::sleep(Duration::from_millis(20)),
                None => return Err(CliError::Runtime(format!("bad ping reply: {reply}"))),
            }
            if drain_started.elapsed() > Duration::from_secs(600) {
                return Err(CliError::Runtime("drain timed out".into()));
            }
        }
    }
    let wall_secs = started.elapsed().as_secs_f64();
    let stats = exchange(&opts.addr, "STATS")?;
    let report = RunReportJson {
        tenants: opts.tenants,
        records_sent,
        send_secs,
        drain_secs: drain_started.elapsed().as_secs_f64(),
        wall_secs,
        records_per_sec: records_sent as f64 / wall_secs.max(f64::MIN_POSITIVE),
        mode: if opts.qps > 0.0 { "open" } else { "closed" }.into(),
        qps_per_tenant: opts.qps,
        churn: opts.churn,
        seed: opts.seed,
        duration_secs: opts.duration_secs,
        reconnects: net.reconnects,
        replayed: net.replayed,
        gave_up: net.gave_up,
        daemon_stats: stats,
    };
    println!(
        "sustained {} tenants x {:.0} records/s ({} records in {:.2} s) \
reconnects {} replayed {} gave_up {}",
        report.tenants,
        report.records_per_sec,
        report.records_sent,
        report.wall_secs,
        report.reconnects,
        report.replayed,
        report.gave_up
    );
    if !opts.report.is_empty() {
        if let Some(parent) = std::path::Path::new(&opts.report).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(runtime)?;
            }
        }
        let json = serde_json::to_string(&report).map_err(runtime)?;
        std::fs::write(&opts.report, json + "\n").map_err(runtime)?;
        println!("wrote {}", opts.report);
    }
    Ok(())
}

fn parse_value<T: std::str::FromStr>(
    args: &[String],
    i: &mut usize,
    flag: &str,
) -> Result<T, CliError> {
    *i += 1;
    let word = args
        .get(*i)
        .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
    word.parse()
        .map_err(|_| CliError::Usage(format!("bad value '{word}' for {flag}")))
}

fn split_flags(args: &[String]) -> Result<(String, Vec<String>, Vec<String>), CliError> {
    let mut addr = None;
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--addr" {
            addr = Some(parse_value::<String>(args, &mut i, "--addr")?);
        } else if args[i].starts_with("--") {
            flags.push(args[i].clone());
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.push(args[i + 1].clone());
                i += 1;
            }
        } else {
            positional.push(args[i].clone());
        }
        i += 1;
    }
    let addr = addr.ok_or_else(|| CliError::Usage("--addr is required".into()))?;
    Ok((addr, positional, flags))
}

fn parse_run_opts(addr: String, flags: &[String]) -> Result<RunOpts, CliError> {
    let mut opts = RunOpts::new(addr);
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--tenants" => opts.tenants = parse_value(flags, &mut i, "--tenants")?,
            "--seed" => opts.seed = parse_value(flags, &mut i, "--seed")?,
            "--duration-secs" => {
                opts.duration_secs = parse_value(flags, &mut i, "--duration-secs")?
            }
            "--data-mb" => opts.data_mb = parse_value(flags, &mut i, "--data-mb")?,
            "--rate-mb" => opts.rate_mb = parse_value(flags, &mut i, "--rate-mb")?,
            "--qps" => opts.qps = parse_value(flags, &mut i, "--qps")?,
            "--churn" => opts.churn = true,
            "--max-backlog" => opts.max_backlog = parse_value(flags, &mut i, "--max-backlog")?,
            "--report" => opts.report = parse_value(flags, &mut i, "--report")?,
            "--no-drain" => opts.drain = false,
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
        i += 1;
    }
    if opts.tenants == 0 {
        return Err(CliError::Usage("--tenants must be positive".into()));
    }
    Ok(opts)
}

fn run(args: &[String]) -> Result<(), CliError> {
    let verb = args
        .first()
        .ok_or_else(|| CliError::Usage("missing subcommand".into()))?;
    let (addr, positional, flags) = split_flags(&args[1..])?;
    match verb.as_str() {
        "run" => {
            if !positional.is_empty() {
                return Err(CliError::Usage("run takes no positional arguments".into()));
            }
            cmd_run(&parse_run_opts(addr, &flags)?)
        }
        "metrics" => {
            print!("{}", http_get(&addr, "/metrics")?);
            Ok(())
        }
        "query" => {
            let [tenant, what] = positional.as_slice() else {
                return Err(CliError::Usage("query TENANT WHAT".into()));
            };
            let reply = exchange(&addr, &format!("QUERY {tenant} {what}"))?;
            println!("{reply}");
            if reply.starts_with("ERR") {
                return Err(CliError::Runtime(format!("query failed: {reply}")));
            }
            Ok(())
        }
        "stats" => {
            println!("{}", exchange(&addr, "STATS")?);
            Ok(())
        }
        "shutdown" => {
            println!("{}", exchange(&addr, "SHUTDOWN")?);
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown subcommand '{other}'"))),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}
