//! The daemon's line-based wire protocol.
//!
//! One request per line, ASCII, space-separated; every response is a
//! single line starting `OK` or `ERR`. The only asymmetric verb is
//! `FEED`, which carries no per-record response — a synchronous
//! acknowledgement would serialize the stream on round trips. Instead
//! the ingest path is **exactly-once by sequence**: a sequenced `FEED`
//! carries a client-assigned per-tenant seq (1-based, contiguous), the
//! daemon tracks the highest contiguously applied seq per tenant (the
//! *ack watermark*), drops replays at or below it, rejects gaps above
//! `watermark + 1` with a typed `ERR`, and pushes standalone
//! `ACK <seq>` lines every `ack_every` accepted records. `OPEN` and
//! `ATTACH` answer with the watermark, so a reconnecting client knows
//! exactly which buffered records to replay. Unsequenced `FEED` (the
//! pre-seq form, still accepted) remains fire-and-forget. Clients that
//! want flow control interleave `PING`, which answers with the daemon's
//! current global backlog so a closed-loop sender can pace itself.
//!
//! ```text
//! OPEN <tenant> [pages]   -> OK opened <tenant> pages <n> acked <seq> | ERR ...
//! ATTACH <tenant> [pages] -> OK attached <tenant> pages <n> acked <seq> | ERR ...
//! FEED <tenant> <seq> <time> <file> <page> <n> <r|w>   (async ACK <seq> lines)
//! FEED <tenant> <time> <file> <page> <n> <r|w>         (no response, legacy)
//! PING                    -> OK pong queued <backlog>
//! QUERY <tenant> timeout|banks|misscurve|energy|status|acked -> OK ...
//! STATS                   -> OK tenants <n> queued <n> shedding <0|1> ...
//! CLOSE <tenant>          -> OK closed <tenant> (checkpoint sealed)
//! SHUTDOWN                -> OK shutting-down
//! ```
//!
//! `ATTACH` is the reconnect verb: idempotent for a live tenant and —
//! unlike `OPEN` — exempt from overload shedding, because a
//! reconnecting client must always be able to learn the watermark.
//! `QUERY <t> acked` answers `OK acked <seq>` — the client's
//! synchronous barrier.
//!
//! The same listening socket also speaks just enough HTTP/1.0 for
//! `GET /metrics` (see [`crate::daemon`]); the dispatcher sniffs the
//! first line.

use jpmd_trace::{AccessKind, FileId, TraceRecord};

/// What a control query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// The disk spin-down timeout currently in force, s.
    Timeout,
    /// Enabled / total memory banks.
    Banks,
    /// The candidate table from the tenant's most recent joint decision:
    /// predicted disk accesses per candidate size (the paper's miss
    /// curve).
    MissCurve,
    /// Total energy accrued so far, J.
    Energy,
    /// One-line tenant status: records, periods, degradation level.
    Status,
    /// The tenant's feed ack watermark (highest contiguously applied
    /// client seq; 0 before any sequenced record).
    Acked,
}

impl QueryKind {
    fn parse(word: &str) -> Option<Self> {
        Some(match word {
            "timeout" => QueryKind::Timeout,
            "banks" => QueryKind::Banks,
            "misscurve" => QueryKind::MissCurve,
            "energy" => QueryKind::Energy,
            "status" => QueryKind::Status,
            "acked" => QueryKind::Acked,
            _ => return None,
        })
    }

    fn word(self) -> &'static str {
        match self {
            QueryKind::Timeout => "timeout",
            QueryKind::Banks => "banks",
            QueryKind::MissCurve => "misscurve",
            QueryKind::Energy => "energy",
            QueryKind::Status => "status",
            QueryKind::Acked => "acked",
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a tenant (idempotent for an already-open name).
    Open {
        /// Tenant name.
        tenant: String,
        /// Page-space size; the daemon default when absent.
        pages: Option<u64>,
    },
    /// Reconnect to (or admit) a tenant; answers with the ack
    /// watermark like `OPEN` but is exempt from overload shedding so a
    /// reconnecting client can always learn what to replay.
    Attach {
        /// Tenant name.
        tenant: String,
        /// Page-space size used only if the tenant must be created.
        pages: Option<u64>,
    },
    /// Stream one access record into a tenant.
    Feed {
        /// Tenant name.
        tenant: String,
        /// Client-assigned per-tenant sequence number (1-based,
        /// contiguous); `None` for the legacy fire-and-forget form.
        seq: Option<u64>,
        /// The record.
        record: TraceRecord,
    },
    /// Ask about a tenant's live operating point.
    Query {
        /// Tenant name.
        tenant: String,
        /// What to report.
        what: QueryKind,
    },
    /// Daemon-wide counters.
    Stats,
    /// Liveness + backlog probe (the flow-control verb).
    Ping,
    /// Seal and close one tenant.
    Close {
        /// Tenant name.
        tenant: String,
    },
    /// Seal every tenant and stop the daemon.
    Shutdown,
}

/// Validates a tenant name: nonempty, at most 64 bytes, and safe to
/// embed in file names and metric labels (`[A-Za-z0-9._-]`).
fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Parses one request line.
///
/// # Errors
///
/// A one-line human-readable reason, already shaped for an `ERR `
/// response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_ascii_whitespace();
    let verb = words.next().ok_or("empty request")?;
    let rest: Vec<&str> = words.collect();
    let tenant_arg = |idx: usize| -> Result<String, String> {
        let name = *rest.get(idx).ok_or("missing tenant name")?;
        if !valid_tenant(name) {
            return Err(format!("invalid tenant name '{name}'"));
        }
        Ok(name.to_string())
    };
    let open_args = |verb: &str| -> Result<(String, Option<u64>), String> {
        let tenant = tenant_arg(0)?;
        let pages = match rest.get(1) {
            Some(word) => Some(
                word.parse::<u64>()
                    .map_err(|_| format!("bad page count '{word}'"))?,
            ),
            None => None,
        };
        if rest.len() > 2 {
            return Err(format!("{verb} takes at most <tenant> [pages]"));
        }
        Ok((tenant, pages))
    };
    match verb {
        "OPEN" => {
            let (tenant, pages) = open_args("OPEN")?;
            Ok(Request::Open { tenant, pages })
        }
        "ATTACH" => {
            let (tenant, pages) = open_args("ATTACH")?;
            Ok(Request::Attach { tenant, pages })
        }
        "FEED" => {
            let tenant = tenant_arg(0)?;
            // 7 args = sequenced (`<seq>` before the record), 6 = the
            // legacy fire-and-forget form.
            let (seq, at) = match rest.len() {
                6 => (None, 1),
                7 => {
                    let seq = rest[1]
                        .parse::<u64>()
                        .map_err(|_| format!("bad feed seq '{}'", rest[1]))?;
                    if seq == 0 {
                        return Err("bad feed seq '0' (seqs are 1-based)".into());
                    }
                    (Some(seq), 2)
                }
                _ => {
                    return Err("FEED <tenant> [seq] <time> <file> <page> <pages> <r|w>".into());
                }
            };
            let num = |idx: usize, what: &str| -> Result<u64, String> {
                rest[idx]
                    .parse::<u64>()
                    .map_err(|_| format!("bad {what} '{}'", rest[idx]))
            };
            let time: f64 = rest[at]
                .parse()
                .map_err(|_| format!("bad time '{}'", rest[at]))?;
            if !time.is_finite() || time < 0.0 {
                return Err(format!("bad time '{}'", rest[at]));
            }
            let file = num(at + 1, "file id")?;
            let file = u32::try_from(file).map_err(|_| format!("bad file id '{file}'"))?;
            let kind = match rest[at + 4] {
                "r" => AccessKind::Read,
                "w" => AccessKind::Write,
                other => return Err(format!("bad access kind '{other}' (want r|w)")),
            };
            Ok(Request::Feed {
                tenant,
                seq,
                record: TraceRecord {
                    time,
                    file: FileId(file),
                    first_page: num(at + 2, "first page")?,
                    pages: num(at + 3, "page count")?,
                    kind,
                },
            })
        }
        "QUERY" => {
            let tenant = tenant_arg(0)?;
            let word = *rest.get(1).ok_or("missing query kind")?;
            let what = QueryKind::parse(word).ok_or_else(|| {
                format!("unknown query '{word}' (want timeout|banks|misscurve|energy|status)")
            })?;
            Ok(Request::Query { tenant, what })
        }
        "STATS" => Ok(Request::Stats),
        "PING" => Ok(Request::Ping),
        "CLOSE" => Ok(Request::Close {
            tenant: tenant_arg(0)?,
        }),
        "SHUTDOWN" => Ok(Request::Shutdown),
        other => Err(format!("unknown verb '{other}'")),
    }
}

/// Formats a record as the legacy (unsequenced) `FEED` line
/// [`parse_request`] reverses.
pub fn format_feed(tenant: &str, record: &TraceRecord) -> String {
    format!(
        "FEED {tenant} {} {} {} {} {}",
        record.time,
        record.file.0,
        record.first_page,
        record.pages,
        kind_word(record.kind),
    )
}

/// Formats a record as the sequenced `FEED` line — the exactly-once
/// encoder used by [`ServeClient`](crate::ServeClient).
pub fn format_feed_seq(tenant: &str, seq: u64, record: &TraceRecord) -> String {
    format!(
        "FEED {tenant} {seq} {} {} {} {} {}",
        record.time,
        record.file.0,
        record.first_page,
        record.pages,
        kind_word(record.kind),
    )
}

fn kind_word(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Read => "r",
        AccessKind::Write => "w",
    }
}

/// Formats any request as the line [`parse_request`] reverses — the
/// round-trip encoder the property tests and the client share.
pub fn format_request(request: &Request) -> String {
    let open = |verb: &str, tenant: &str, pages: Option<u64>| match pages {
        Some(pages) => format!("{verb} {tenant} {pages}"),
        None => format!("{verb} {tenant}"),
    };
    match request {
        Request::Open { tenant, pages } => open("OPEN", tenant, *pages),
        Request::Attach { tenant, pages } => open("ATTACH", tenant, *pages),
        Request::Feed {
            tenant,
            seq: Some(seq),
            record,
        } => format_feed_seq(tenant, *seq, record),
        Request::Feed {
            tenant,
            seq: None,
            record,
        } => format_feed(tenant, record),
        Request::Query { tenant, what } => format!("QUERY {tenant} {}", what.word()),
        Request::Stats => "STATS".into(),
        Request::Ping => "PING".into(),
        Request::Close { tenant } => format!("CLOSE {tenant}"),
        Request::Shutdown => "SHUTDOWN".into(),
    }
}

/// Recognizes a standalone `ACK <seq>` push line; `None` for anything
/// else (clients interleave these with `OK`/`ERR` replies).
pub fn parse_ack(line: &str) -> Option<u64> {
    let mut words = line.split_ascii_whitespace();
    if words.next() != Some("ACK") {
        return None;
    }
    let seq = words.next()?.parse().ok()?;
    if words.next().is_some() {
        return None;
    }
    Some(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_lines_round_trip() {
        let record = TraceRecord {
            time: 12.5,
            file: FileId(7),
            first_page: 1024,
            pages: 3,
            kind: AccessKind::Write,
        };
        let line = format_feed("web-01", &record);
        match parse_request(&line).unwrap() {
            Request::Feed {
                tenant,
                seq: None,
                record: r,
            } => {
                assert_eq!(tenant, "web-01");
                assert_eq!(r, record);
            }
            other => panic!("parsed {other:?}"),
        }
        let line = format_feed_seq("web-01", 42, &record);
        match parse_request(&line).unwrap() {
            Request::Feed {
                tenant,
                seq: Some(seq),
                record: r,
            } => {
                assert_eq!(tenant, "web-01");
                assert_eq!(seq, 42);
                assert_eq!(r, record);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn attach_and_acks_parse() {
        assert_eq!(
            parse_request("ATTACH db-7 8192").unwrap(),
            Request::Attach {
                tenant: "db-7".into(),
                pages: Some(8192)
            }
        );
        assert_eq!(
            parse_request("QUERY db-7 acked").unwrap(),
            Request::Query {
                tenant: "db-7".into(),
                what: QueryKind::Acked
            }
        );
        assert_eq!(parse_ack("ACK 17"), Some(17));
        assert_eq!(parse_ack("ACK 0"), Some(0));
        for not_ack in ["OK acked 17", "ACK", "ACK x", "ACK 1 2", "ack 1"] {
            assert_eq!(parse_ack(not_ack), None, "{not_ack:?}");
        }
    }

    #[test]
    fn verbs_parse_and_junk_is_rejected() {
        assert_eq!(
            parse_request("OPEN a 4096").unwrap(),
            Request::Open {
                tenant: "a".into(),
                pages: Some(4096)
            }
        );
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
        assert_eq!(
            parse_request("QUERY a misscurve").unwrap(),
            Request::Query {
                tenant: "a".into(),
                what: QueryKind::MissCurve
            }
        );
        for bad in [
            "",
            "NOPE",
            "OPEN",
            "OPEN bad/name",
            "OPEN a x",
            "FEED a 1 2 3",
            "FEED a -1 0 0 1 r",
            "FEED a 1 0 0 1 z",
            "FEED a 0 1 0 0 1 r",
            "FEED a x 1 0 0 1 r",
            "FEED a 1 1 0 0 1 r w",
            "ATTACH",
            "ATTACH bad/name",
            "ATTACH a 1 2",
            "QUERY a everything",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
