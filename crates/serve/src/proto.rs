//! The daemon's line-based wire protocol.
//!
//! One request per line, ASCII, space-separated; every response is a
//! single line starting `OK` or `ERR`. The only asymmetric verb is
//! `FEED`, which is **fire-and-forget** — a per-record acknowledgement
//! would serialize the stream on round trips. Clients that want flow
//! control interleave `PING`, which answers with the daemon's current
//! global backlog so a closed-loop sender can pace itself.
//!
//! ```text
//! OPEN <tenant> [pages]                      -> OK opened <tenant> pages <n> | ERR ...
//! FEED <tenant> <time> <file> <page> <n> <r|w>   (no response)
//! PING                                       -> OK pong queued <backlog>
//! QUERY <tenant> timeout|banks|misscurve|energy|status -> OK ...
//! STATS                                      -> OK tenants <n> queued <n> shedding <0|1> ...
//! CLOSE <tenant>                             -> OK closed <tenant> (checkpoint sealed)
//! SHUTDOWN                                   -> OK shutting-down
//! ```
//!
//! The same listening socket also speaks just enough HTTP/1.0 for
//! `GET /metrics` (see [`crate::daemon`]); the dispatcher sniffs the
//! first line.

use jpmd_trace::{AccessKind, FileId, TraceRecord};

/// What a control query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// The disk spin-down timeout currently in force, s.
    Timeout,
    /// Enabled / total memory banks.
    Banks,
    /// The candidate table from the tenant's most recent joint decision:
    /// predicted disk accesses per candidate size (the paper's miss
    /// curve).
    MissCurve,
    /// Total energy accrued so far, J.
    Energy,
    /// One-line tenant status: records, periods, degradation level.
    Status,
}

impl QueryKind {
    fn parse(word: &str) -> Option<Self> {
        Some(match word {
            "timeout" => QueryKind::Timeout,
            "banks" => QueryKind::Banks,
            "misscurve" => QueryKind::MissCurve,
            "energy" => QueryKind::Energy,
            "status" => QueryKind::Status,
            _ => return None,
        })
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a tenant (idempotent for an already-open name).
    Open {
        /// Tenant name.
        tenant: String,
        /// Page-space size; the daemon default when absent.
        pages: Option<u64>,
    },
    /// Stream one access record into a tenant.
    Feed {
        /// Tenant name.
        tenant: String,
        /// The record.
        record: TraceRecord,
    },
    /// Ask about a tenant's live operating point.
    Query {
        /// Tenant name.
        tenant: String,
        /// What to report.
        what: QueryKind,
    },
    /// Daemon-wide counters.
    Stats,
    /// Liveness + backlog probe (the flow-control verb).
    Ping,
    /// Seal and close one tenant.
    Close {
        /// Tenant name.
        tenant: String,
    },
    /// Seal every tenant and stop the daemon.
    Shutdown,
}

/// Validates a tenant name: nonempty, at most 64 bytes, and safe to
/// embed in file names and metric labels (`[A-Za-z0-9._-]`).
fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Parses one request line.
///
/// # Errors
///
/// A one-line human-readable reason, already shaped for an `ERR `
/// response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_ascii_whitespace();
    let verb = words.next().ok_or("empty request")?;
    let rest: Vec<&str> = words.collect();
    let tenant_arg = |idx: usize| -> Result<String, String> {
        let name = *rest.get(idx).ok_or("missing tenant name")?;
        if !valid_tenant(name) {
            return Err(format!("invalid tenant name '{name}'"));
        }
        Ok(name.to_string())
    };
    match verb {
        "OPEN" => {
            let tenant = tenant_arg(0)?;
            let pages = match rest.get(1) {
                Some(word) => Some(
                    word.parse::<u64>()
                        .map_err(|_| format!("bad page count '{word}'"))?,
                ),
                None => None,
            };
            if rest.len() > 2 {
                return Err("OPEN takes at most <tenant> [pages]".into());
            }
            Ok(Request::Open { tenant, pages })
        }
        "FEED" => {
            let tenant = tenant_arg(0)?;
            if rest.len() != 6 {
                return Err("FEED <tenant> <time> <file> <page> <pages> <r|w>".into());
            }
            let num = |idx: usize, what: &str| -> Result<u64, String> {
                rest[idx]
                    .parse::<u64>()
                    .map_err(|_| format!("bad {what} '{}'", rest[idx]))
            };
            let time: f64 = rest[1]
                .parse()
                .map_err(|_| format!("bad time '{}'", rest[1]))?;
            if !time.is_finite() || time < 0.0 {
                return Err(format!("bad time '{}'", rest[1]));
            }
            let file = num(2, "file id")?;
            let file = u32::try_from(file).map_err(|_| format!("bad file id '{file}'"))?;
            let kind = match rest[5] {
                "r" => AccessKind::Read,
                "w" => AccessKind::Write,
                other => return Err(format!("bad access kind '{other}' (want r|w)")),
            };
            Ok(Request::Feed {
                tenant,
                record: TraceRecord {
                    time,
                    file: FileId(file),
                    first_page: num(3, "first page")?,
                    pages: num(4, "page count")?,
                    kind,
                },
            })
        }
        "QUERY" => {
            let tenant = tenant_arg(0)?;
            let word = *rest.get(1).ok_or("missing query kind")?;
            let what = QueryKind::parse(word).ok_or_else(|| {
                format!("unknown query '{word}' (want timeout|banks|misscurve|energy|status)")
            })?;
            Ok(Request::Query { tenant, what })
        }
        "STATS" => Ok(Request::Stats),
        "PING" => Ok(Request::Ping),
        "CLOSE" => Ok(Request::Close {
            tenant: tenant_arg(0)?,
        }),
        "SHUTDOWN" => Ok(Request::Shutdown),
        other => Err(format!("unknown verb '{other}'")),
    }
}

/// Formats a record as the `FEED` line [`parse_request`] reverses —
/// the load generator's encoder.
pub fn format_feed(tenant: &str, record: &TraceRecord) -> String {
    format!(
        "FEED {tenant} {} {} {} {} {}",
        record.time,
        record.file.0,
        record.first_page,
        record.pages,
        match record.kind {
            AccessKind::Read => "r",
            AccessKind::Write => "w",
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_lines_round_trip() {
        let record = TraceRecord {
            time: 12.5,
            file: FileId(7),
            first_page: 1024,
            pages: 3,
            kind: AccessKind::Write,
        };
        let line = format_feed("web-01", &record);
        match parse_request(&line).unwrap() {
            Request::Feed { tenant, record: r } => {
                assert_eq!(tenant, "web-01");
                assert_eq!(r, record);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn verbs_parse_and_junk_is_rejected() {
        assert_eq!(
            parse_request("OPEN a 4096").unwrap(),
            Request::Open {
                tenant: "a".into(),
                pages: Some(4096)
            }
        );
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
        assert_eq!(
            parse_request("QUERY a misscurve").unwrap(),
            Request::Query {
                tenant: "a".into(),
                what: QueryKind::MissCurve
            }
        );
        for bad in [
            "",
            "NOPE",
            "OPEN",
            "OPEN bad/name",
            "OPEN a x",
            "FEED a 1 2 3",
            "FEED a -1 0 0 1 r",
            "FEED a 1 0 0 1 z",
            "QUERY a everything",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
