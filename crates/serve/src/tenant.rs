//! One tenant's policy stack: the joint policy wrapped in an
//! admission-aware failure shim, wrapped in the degradation guard,
//! driven by a [`PolicyStepper`].
//!
//! The layering is the whole design: the daemon's *global* overload
//! state is injected as a *per-tenant* policy failure, so the existing
//! [`DegradationGuard`] fallback chain (joint → power-down → always-on)
//! and promotion ladder become the daemon's backpressure behavior
//! without any new state machine. While the daemon sheds, every
//! tenant's period decisions fail with
//! [`PolicyError::Injected`], the guard retreats, and the cheaper
//! fallback policies keep answering; when the backlog drains below the
//! low watermark the guard's own healthy-streak promotion walks each
//! tenant back up to the joint policy.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use jpmd_core::{JointConfig, JointPolicy, PolicyError, PolicyFailure, PolicyStepper, SimScale};
use jpmd_faults::{DegradationGuard, FalliblePolicy, GuardConfig};
use jpmd_mem::{AccessLog, IdlePolicy};
use jpmd_obs::Telemetry;
use jpmd_sim::{ControlAction, PeriodObservation, SimCheckpoint, SpinDownPolicy};
use jpmd_trace::SourceError;

use crate::ServeConfig;

/// A [`FalliblePolicy`] whose decisions fail while the daemon is
/// shedding load, letting the [`DegradationGuard`] above it translate
/// global overload into the standard per-tenant fallback chain.
pub struct OverloadPolicy {
    inner: JointPolicy,
    overload: Arc<AtomicBool>,
}

impl OverloadPolicy {
    /// Wraps `inner`; `overload` is the daemon's shared shed flag.
    pub fn new(inner: JointPolicy, overload: Arc<AtomicBool>) -> Self {
        OverloadPolicy { inner, overload }
    }

    /// The wrapped joint policy (for miss-curve and candidate queries).
    pub fn joint(&self) -> &JointPolicy {
        &self.inner
    }
}

impl FalliblePolicy for OverloadPolicy {
    fn try_decide(
        &mut self,
        obs: &PeriodObservation,
        log: &AccessLog,
    ) -> Result<ControlAction, PolicyFailure> {
        if self.overload.load(Ordering::Relaxed) {
            return Err(PolicyFailure {
                error: PolicyError::Injected {
                    reason: "admission shed: daemon overloaded".to_string(),
                },
                fallback: ControlAction::default(),
            });
        }
        FalliblePolicy::try_decide(&mut self.inner, obs, log)
    }

    fn name(&self) -> &str {
        "joint"
    }

    // The overload flag is daemon state, not tenant state: checkpoints
    // carry only the joint policy's image, and a resumed tenant picks up
    // whatever the *current* daemon's admission state is.
    fn snapshot_state(&self) -> serde::Value {
        FalliblePolicy::snapshot_state(&self.inner)
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        FalliblePolicy::restore_state(&mut self.inner, state)
    }
}

/// The full per-tenant controller the daemon runs.
pub type TenantController = DegradationGuard<OverloadPolicy>;

/// Builds one tenant's complete policy stack: a joint policy at the
/// daemon's scale and period, overload shim, degradation guard, and the
/// incremental stepper — resuming from `resume` when a sealed
/// checkpoint exists.
///
/// # Errors
///
/// Fails on an invalid joint configuration at this scale, or a resume
/// checkpoint whose images do not decode against this stack.
pub fn build_stepper(
    cfg: &ServeConfig,
    name: &str,
    pages: u64,
    telemetry: &Telemetry,
    overload: Arc<AtomicBool>,
    resume: Option<&SimCheckpoint>,
) -> Result<PolicyStepper<TenantController>, SourceError> {
    let sim = tenant_sim_config(&cfg.scale, cfg.period_secs);
    let mut joint_cfg = JointConfig::from_sim(&sim);
    joint_cfg.period_secs = cfg.period_secs;
    let policy =
        JointPolicy::try_with_telemetry(joint_cfg, telemetry.clone()).map_err(SourceError::new)?;
    let guard = DegradationGuard::new(
        OverloadPolicy::new(policy, overload),
        GuardConfig::from_joint(&joint_cfg),
        telemetry.clone(),
    );
    PolicyStepper::new(
        sim,
        SpinDownPolicy::controlled(f64::INFINITY),
        guard,
        pages,
        cfg.duration_secs,
        name,
        telemetry,
        resume,
    )
}

/// The simulation configuration every tenant runs: the joint method's
/// wiring (all banks installed, Nap idle policy, controller-owned disk
/// timeout) at the daemon's period, with no warm-up — a service stream
/// has no separate measurement window.
fn tenant_sim_config(scale: &SimScale, period_secs: f64) -> jpmd_sim::SimConfig {
    let mut sim = scale.sim_config(IdlePolicy::Nap, scale.total_banks());
    sim.warmup_secs = 0.0;
    sim.period_secs = period_secs;
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use jpmd_core::FeedOutcome;
    use jpmd_trace::{TraceSource, WorkloadBuilder, MIB};

    fn test_config() -> ServeConfig {
        let mut cfg = ServeConfig::new(std::env::temp_dir().join("jpmd-serve-tenant-test"));
        cfg.telemetry = false;
        cfg.duration_secs = 3600.0;
        cfg
    }

    #[test]
    fn overload_flag_degrades_and_recovery_promotes() {
        let cfg = test_config();
        let overload = Arc::new(AtomicBool::new(false));
        let telemetry = Telemetry::disabled();
        let mut stepper = build_stepper(
            &cfg,
            "tenant-a",
            4096,
            &telemetry,
            Arc::clone(&overload),
            None,
        )
        .expect("build stepper");

        let trace = WorkloadBuilder::new()
            .data_set_bytes(256 * MIB)
            .rate_bytes_per_sec(2 * MIB)
            .duration_secs(3600.0)
            .seed(3)
            .build()
            .expect("workload");
        let mut source = trace.source();
        let mut fed = 0u64;
        while let Some(next) = source.next_record() {
            let record = next.expect("infallible");
            // Flip overload on across exactly one decision boundary
            // (t = 900): the guard must retreat below Joint there, then
            // drain its backoff and promote back well before the end.
            let shedding = stepper.sim_time() > 600.0 && stepper.sim_time() < 1000.0;
            overload.store(shedding, Ordering::Relaxed);
            if stepper.feed(record) == FeedOutcome::Finished {
                break;
            }
            fed += 1;
        }
        assert!(fed > 0);
        let stats = stepper.controller().stats();
        assert!(stats.fallbacks > 0, "overload must force fallbacks");
        assert!(stats.promotions > 0, "drain must promote back up");
        assert!(stats.recoveries > 0, "the tenant must reach Joint again");
        assert_eq!(
            stepper.controller().level(),
            jpmd_faults::FallbackLevel::Joint,
            "recovered tenant ends at the joint level"
        );
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_for_the_tenant_stack() {
        let cfg = test_config();
        let telemetry = Telemetry::disabled();
        let trace = WorkloadBuilder::new()
            .data_set_bytes(256 * MIB)
            .rate_bytes_per_sec(2 * MIB)
            .duration_secs(3600.0)
            .seed(8)
            .build()
            .expect("workload");
        let records: Vec<_> = {
            let mut source = trace.source();
            let mut out = Vec::new();
            while let Some(next) = source.next_record() {
                out.push(next.expect("infallible"));
            }
            out
        };

        let fresh = Arc::new(AtomicBool::new(false));
        let mut uninterrupted =
            build_stepper(&cfg, "t", 4096, &telemetry, Arc::clone(&fresh), None).unwrap();
        for r in &records {
            if uninterrupted.feed(*r) == FeedOutcome::Finished {
                break;
            }
        }
        let want = uninterrupted.finish();

        let mut first =
            build_stepper(&cfg, "t", 4096, &telemetry, Arc::clone(&fresh), None).unwrap();
        for r in &records[..records.len() / 2] {
            assert_ne!(first.feed(*r), FeedOutcome::Finished);
        }
        let ckpt = first.checkpoint();
        drop(first);

        let mut resumed = build_stepper(&cfg, "t", 4096, &telemetry, fresh, Some(&ckpt)).unwrap();
        for r in &records {
            if resumed.feed(*r) == FeedOutcome::Finished {
                break;
            }
        }
        assert_eq!(resumed.finish(), want);
    }
}
