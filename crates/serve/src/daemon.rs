//! The daemon: listener, worker pool, tenant registry, metrics
//! endpoint, and the shutdown/seal/resume machinery.
//!
//! ## Threading model
//!
//! One **accept** thread owns the listener and, at shutdown, the seal.
//! Each client connection gets its own thread that parses request
//! lines; `FEED` pushes the record onto the tenant's queue and wakes
//! the worker pool, every other verb answers inline. A fixed pool of
//! **worker** threads pulls runnable tenants off an MPMC-ish channel
//! (an `mpsc` receiver behind a mutex) and advances each tenant's
//! [`PolicyStepper`] by at most one batch before yielding the tenant
//! back to the queue — so a tenant with a deep backlog cannot starve
//! the rest, and control queries (which take the same per-tenant lock)
//! wait at most one batch.
//!
//! ## Exactly-once ingest
//!
//! A sequenced `FEED` carries a client-assigned per-tenant seq. The
//! tenant's **ack watermark** (highest contiguously applied seq) is
//! advanced under the queue lock, together with the push it
//! acknowledges: replays at or below the watermark are dropped
//! (counted in `serve.feed.duplicates`), seqs past `watermark + 1` are
//! refused with `ERR feed seq gap`, and every `ack_every`-th accepted
//! seq pushes a standalone `ACK <seq>` line. `OPEN`/`ATTACH` return
//! the watermark, the manifest persists it, and resume restores it —
//! so replay after any disconnect or restart is idempotent.
//!
//! ## Backpressure
//!
//! The global queued-record count is the control signal. Crossing
//! [`ServeConfig::shed_high`] flips the shared overload flag: every
//! tenant's next period decision fails through
//! [`OverloadPolicy`](crate::OverloadPolicy) (the degradation guard
//! retreats joint → power-down → always-on) and new `OPEN`s are
//! rejected. Draining below [`ServeConfig::shed_low`] clears the flag;
//! the guards promote back on their own healthy-streak ladder. The
//! daemon never blocks a stream to protect itself — it degrades
//! decision quality instead.
//!
//! ## Durability
//!
//! `SHUTDOWN` (or `SIGTERM`) stops admissions, lets the workers drain,
//! seals one `.jck` checkpoint per tenant ([`jpmd_ckpt`]'s
//! crash-consistent protocol, WAL flushed first), and publishes a
//! [`TenantManifest`] naming them all. A restart with
//! [`ServeConfig::resume`] rebuilds every tenant from its image;
//! clients replay their streams from the start and the stepper
//! discards the already-consumed prefix.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use jpmd_ckpt::{
    load_checkpoint, load_tenant_manifest, save_tenant_manifest, CkptMeta, FileCheckpointer,
    TenantEntry, TenantManifest,
};
use jpmd_core::PolicyStepper;
use jpmd_faults::FallbackLevel;
use jpmd_obs::{labeled, Counter, Gauge, JsonlSink, MetricsRegistry, Telemetry, WalPolicy};
use jpmd_trace::TraceRecord;

use crate::proto::{parse_request, QueryKind, Request};
use crate::tenant::{build_stepper, TenantController};
use crate::{sigterm_received, ServeConfig};

/// How often the accept loop polls for shutdown between connections.
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// How long an idle worker waits before re-checking the exit condition.
const WORKER_POLL: Duration = Duration::from_millis(50);
/// Read timeout on accepted connections — how often a blocked read
/// wakes to re-check the shutdown flag, so a stalled client can't pin
/// its thread past shutdown.
const CONN_READ_TIMEOUT: Duration = Duration::from_millis(200);
/// Consecutive read timeouts an HTTP client gets to finish its request
/// head (~10 s) before the connection is dropped; the line protocol has
/// no such limit because an idle session between requests is normal.
const HTTP_IDLE_LIMIT: u32 = 50;
/// Cap on simultaneously live connection threads; accepts past the cap
/// are dropped on the floor rather than exhausting threads.
const MAX_CONNECTIONS: usize = 256;
/// Longest accepted request line, bytes (newline included). A hostile
/// or corrupted client that streams a line past this gets a typed
/// `ERR line too long` and the connection closed — never unbounded
/// `String` growth.
const MAX_LINE: usize = 8192;
/// Consecutive read timeouts (~5 s) a client holding a *partial* line
/// gets before the connection is dropped as stalled. Idle between
/// complete requests is unlimited — only a torn line pins this.
const MIDLINE_IDLE_LIMIT: u32 = 25;

/// One tenant as the daemon sees it: the inbound record queue and the
/// policy stack behind it, separately locked so feeding never waits on
/// a decision in progress.
struct TenantHandle {
    name: String,
    /// Records accepted but not yet stepped.
    queue: Mutex<VecDeque<TraceRecord>>,
    /// True while the handle sits in the worker channel or a worker is
    /// draining it — at most one worker touches a tenant at a time,
    /// which is what keeps per-tenant telemetry deterministic.
    scheduled: AtomicBool,
    /// Set (under the queue lock) by the seal's final drain; a feed
    /// that observes it drops the record instead of stranding it on a
    /// queue nobody will drain, which would pin the global backlog
    /// above zero forever.
    closed: AtomicBool,
    /// The feed ack watermark: highest client-assigned seq whose record
    /// (and every predecessor) is queued or applied. Advanced only
    /// under the queue lock, together with the push it acknowledges, so
    /// an acked record can never have been dropped by a racing seal.
    acked: AtomicU64,
    /// Sequenced feeds at or below the watermark (replays after
    /// reconnect) — dropped when dedup is on, applied twice when the
    /// negative-control `--no-dedup` mode is proving the harness works.
    duplicates: Counter,
    state: Mutex<TenantState>,
}

struct TenantState {
    stepper: PolicyStepper<TenantController>,
    telemetry: Telemetry,
    pages: u64,
    /// Feeds accepted over the tenant's lifetime (including a resumed
    /// stream's discarded prefix).
    records: u64,
    /// The tenant's WAL path, when telemetry is on.
    wal: Option<String>,
    decisions: Counter,
    records_metric: Counter,
    level_gauge: Gauge,
    energy_gauge: Gauge,
    wal_errors_metric: Counter,
    /// WAL write errors already mirrored into the metrics (the
    /// telemetry counter is cumulative; the registry wants deltas).
    wal_errors_seen: u64,
    /// Whether this tenant's WAL was degraded at the last poll (rides
    /// the global degraded-tenant gauge on flips).
    degraded: bool,
}

impl TenantState {
    fn feed_batch(&mut self, batch: impl IntoIterator<Item = TraceRecord>) -> u64 {
        let mut fed = 0u64;
        for record in batch {
            self.stepper.feed(record);
            fed += 1;
        }
        let fresh = self.stepper.poll_rows().len() as u64;
        self.decisions.add(fresh);
        self.records += fed;
        self.records_metric.add(fed);
        let level = match self.stepper.controller().level() {
            FallbackLevel::Joint => 0.0,
            FallbackLevel::PowerDown => 1.0,
            FallbackLevel::AlwaysOn => 2.0,
        };
        self.level_gauge.set(level);
        self.energy_gauge.set(self.stepper.energy_so_far_j());
        fed
    }
}

/// What became of one `FEED` (see [`ServerState::feed`]).
enum FeedSlot {
    /// Queued; `ack` carries a seq when this record crossed an
    /// `ack_every` boundary and the connection should push `ACK <seq>`.
    Accepted { ack: Option<u64> },
    /// Sequenced replay at or below the watermark, deduplicated.
    Duplicate,
    /// Sequenced feed above `watermark + 1`; refused with a typed error
    /// so the client re-attaches instead of leaving a hole.
    Gap {
        /// The seq the daemon will accept next.
        want: u64,
        /// The seq the client sent.
        got: u64,
    },
    /// Unknown tenant, shutdown, or a seal race — fire-and-forget drop.
    Dropped,
}

/// A point-in-time copy of the daemon's global counters (the `STATS`
/// verb, and the integration tests' window into the admission state).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaemonStats {
    /// Open tenants.
    pub tenants: usize,
    /// Records accepted but not yet stepped, across all tenants.
    pub queued: u64,
    /// Whether admission shedding is in force.
    pub shedding: bool,
    /// Records accepted over the daemon's lifetime.
    pub records_total: u64,
    /// `OPEN`s rejected (shedding or tenant cap).
    pub rejected_opens: u64,
    /// Tenant-WAL write failures absorbed so far (the records rode the
    /// in-memory ring instead of dying with the daemon).
    pub wal_write_errors: u64,
    /// Tenants whose WAL is currently degraded (riding the ring or
    /// carrying a dirty tail).
    pub degraded_tenants: u64,
    /// Connections accepted over the daemon's lifetime.
    pub conns_accepted: u64,
    /// Accepted connections dropped at the [`MAX_CONNECTIONS`] cap.
    pub conns_dropped: u64,
    /// Connections dropped because a partially-read line stalled past
    /// the mid-line idle limit (or an HTTP head never finished).
    pub read_timeouts: u64,
    /// Sequenced feed replays at or below a tenant's ack watermark,
    /// across all tenants.
    pub feed_duplicates: u64,
}

struct ServerState {
    cfg: ServeConfig,
    registry: MetricsRegistry,
    tenants: Mutex<BTreeMap<String, Arc<TenantHandle>>>,
    ready_tx: Mutex<Sender<Arc<TenantHandle>>>,
    queued: AtomicU64,
    /// Shared with every tenant's [`OverloadPolicy`](crate::OverloadPolicy):
    /// one flag drives both policy degradation and `OPEN` rejection.
    overload: Arc<AtomicBool>,
    shutdown: AtomicBool,
    tenants_gauge: Gauge,
    queued_gauge: Gauge,
    admission_gauge: Gauge,
    records_total: Counter,
    rejected_opens: Counter,
    connections: Counter,
    /// Connections admitted by the accept loop
    /// (`serve.conn.accepted`).
    conn_accepted: Counter,
    /// Connections the daemon dropped on purpose: refused at the
    /// connection cap, or closed for an over-long request line
    /// (`serve.conn.dropped`).
    conn_dropped: Counter,
    /// Stalled-read connection drops (`serve.conn.read_timeouts`).
    read_timeouts: Counter,
    /// Daemon-wide sum of per-tenant feed duplicates
    /// (`serve.feed.duplicates`).
    duplicates: Counter,
    /// Daemon-wide sum of tenant-WAL write failures.
    wal_errors: Counter,
    /// Gauge mirror of [`ServerState::degraded_tenants`]
    /// (`serve.storage_degraded` in `/metrics`).
    degraded_gauge: Gauge,
    /// Tenants currently in WAL degradation (source of truth behind the
    /// gauge; flips are applied under the tenant's state lock).
    degraded_tenants: AtomicU64,
    /// Live connection threads, bounded by [`MAX_CONNECTIONS`].
    live_connections: AtomicUsize,
}

impl ServerState {
    fn new(cfg: ServeConfig, ready_tx: Sender<Arc<TenantHandle>>) -> Self {
        let registry = MetricsRegistry::new();
        ServerState {
            tenants_gauge: registry.gauge("serve.tenants"),
            queued_gauge: registry.gauge("serve.queued"),
            admission_gauge: registry.gauge("serve.admission.shedding"),
            records_total: registry.counter("serve.records_total"),
            rejected_opens: registry.counter("serve.rejected_opens"),
            connections: registry.counter("serve.connections"),
            conn_accepted: registry.counter("serve.conn.accepted"),
            conn_dropped: registry.counter("serve.conn.dropped"),
            read_timeouts: registry.counter("serve.conn.read_timeouts"),
            duplicates: registry.counter("serve.feed.duplicates"),
            wal_errors: registry.counter("serve.wal_write_errors"),
            degraded_gauge: registry.gauge("serve.storage_degraded"),
            degraded_tenants: AtomicU64::new(0),
            cfg,
            registry,
            tenants: Mutex::new(BTreeMap::new()),
            ready_tx: Mutex::new(ready_tx),
            queued: AtomicU64::new(0),
            overload: Arc::new(AtomicBool::new(false)),
            shutdown: AtomicBool::new(false),
            live_connections: AtomicUsize::new(0),
        }
    }

    fn stats(&self) -> DaemonStats {
        DaemonStats {
            tenants: self.tenants.lock().expect("tenant map lock").len(),
            queued: self.queued.load(Ordering::Acquire),
            shedding: self.overload.load(Ordering::Relaxed),
            records_total: self.records_total.get(),
            rejected_opens: self.rejected_opens.get(),
            wal_write_errors: self.wal_errors.get(),
            degraded_tenants: self.degraded_tenants.load(Ordering::Relaxed),
            conns_accepted: self.conn_accepted.get(),
            conns_dropped: self.conn_dropped.get(),
            read_timeouts: self.read_timeouts.get(),
            feed_duplicates: self.duplicates.get(),
        }
    }

    fn lookup(&self, name: &str) -> Option<Arc<TenantHandle>> {
        self.tenants
            .lock()
            .expect("tenant map lock")
            .get(name)
            .cloned()
    }

    fn schedule(&self, handle: Arc<TenantHandle>) {
        // A send can only fail after the workers are gone, i.e. during
        // shutdown — the seal drains whatever the channel missed.
        let _ = self
            .ready_tx
            .lock()
            .expect("ready sender lock")
            .send(handle);
    }

    fn tenant_metrics(&self, name: &str) -> (Counter, Counter, Gauge, Gauge, Counter, Counter) {
        let labels = [("tenant", name)];
        (
            self.registry
                .counter(&labeled("serve.tenant.decisions", &labels)),
            self.registry
                .counter(&labeled("serve.tenant.records", &labels)),
            self.registry.gauge(&labeled("serve.tenant.level", &labels)),
            self.registry
                .gauge(&labeled("serve.tenant.energy_j", &labels)),
            self.registry
                .counter(&labeled("serve.tenant.wal_write_errors", &labels)),
            self.registry
                .counter(&labeled("serve.tenant.feed_duplicates", &labels)),
        )
    }

    /// Mirrors the tenant's WAL health (cumulative write-error count and
    /// the degraded flag) into the registry and the daemon-wide
    /// counters. Runs under the tenant's state lock, so the flip
    /// accounting on the global degraded-tenant count is exact.
    fn poll_wal_health(&self, state: &mut TenantState) {
        let errors = state.telemetry.write_errors();
        let delta = errors.saturating_sub(state.wal_errors_seen);
        if delta > 0 {
            state.wal_errors_seen = errors;
            state.wal_errors_metric.add(delta);
            self.wal_errors.add(delta);
        }
        let degraded = state.telemetry.storage_degraded();
        if degraded != state.degraded {
            state.degraded = degraded;
            let now = if degraded {
                self.degraded_tenants.fetch_add(1, Ordering::AcqRel) + 1
            } else {
                self.degraded_tenants.fetch_sub(1, Ordering::AcqRel) - 1
            };
            self.degraded_gauge.set(now as f64);
        }
    }

    fn wal_path(&self, name: &str) -> std::path::PathBuf {
        self.cfg.dir.join(format!("{name}.jsonl"))
    }

    fn ckpt_path(&self, name: &str) -> std::path::PathBuf {
        self.cfg.dir.join(format!("{name}.jck"))
    }

    /// Admits a tenant (`OPEN`) or reconnects to one (`ATTACH`).
    /// Idempotent for an already-open name; either way the reply
    /// carries the tenant's feed ack watermark, which is what a
    /// reconnecting client replays against.
    ///
    /// Holds the tenant-map lock across the existence check, the cap
    /// check, and the insert: two concurrent `OPEN`s of one name must
    /// not both build steppers (and WAL sinks on the same path) with
    /// the loser overwriting the winner's handle, and concurrent
    /// `OPEN`s of distinct names must not slip past `max_tenants`.
    /// `OPEN` is a rare verb, so briefly blocking feeds/lookups on the
    /// stepper build is the cheap side of that trade.
    ///
    /// The existence check runs *before* the overload check, and
    /// `ATTACH` skips the overload check entirely: a reconnecting
    /// client must always be able to learn the watermark — refusing it
    /// while shedding would turn backpressure into data loss.
    fn open_or_attach(&self, name: &str, pages: Option<u64>, attach: bool) -> String {
        let verb = if attach { "attached" } else { "opened" };
        if self.shutdown.load(Ordering::Acquire) {
            return "ERR shutting down".into();
        }
        let mut tenants = self.tenants.lock().expect("tenant map lock");
        if let Some(existing) = tenants.get(name) {
            let pages = existing.state.lock().expect("tenant state lock").pages;
            // With ack-dedup disabled (the chaos harness's negative
            // control) the daemon plays dumb wholesale: no watermark at
            // attach, so reconnect replays are blind and already-applied
            // records land twice.
            let acked = if self.cfg.dedup {
                existing.acked.load(Ordering::Acquire)
            } else {
                0
            };
            return format!("OK {verb} {name} pages {pages} acked {acked}");
        }
        if !attach && self.overload.load(Ordering::Relaxed) {
            self.rejected_opens.inc();
            return "ERR shedding load, admission closed".into();
        }
        if tenants.len() >= self.cfg.max_tenants {
            self.rejected_opens.inc();
            return format!("ERR tenant limit {} reached", self.cfg.max_tenants);
        }
        let pages = pages.unwrap_or(self.cfg.default_pages).max(1);
        let (telemetry, wal) = if self.cfg.telemetry {
            let path = self.wal_path(name);
            match JsonlSink::create_with_on(self.cfg.backend.clone(), &path, WalPolicy::wal()) {
                Ok(sink) => (
                    Telemetry::new(Box::new(sink)),
                    Some(path.to_string_lossy().into_owned()),
                ),
                Err(e) => return format!("ERR telemetry: {e}"),
            }
        } else {
            (Telemetry::disabled(), None)
        };
        let stepper = match build_stepper(
            &self.cfg,
            name,
            pages,
            &telemetry,
            Arc::clone(&self.overload),
            None,
        ) {
            Ok(stepper) => stepper,
            Err(e) => return format!("ERR open failed: {e}"),
        };
        let handle = self.make_handle(name, stepper, telemetry, pages, 0, 0, wal);
        tenants.insert(name.to_string(), handle);
        self.tenants_gauge.set(tenants.len() as f64);
        format!("OK {verb} {name} pages {pages} acked 0")
    }

    #[allow(clippy::too_many_arguments)]
    fn make_handle(
        &self,
        name: &str,
        stepper: PolicyStepper<TenantController>,
        telemetry: Telemetry,
        pages: u64,
        records: u64,
        acked: u64,
        wal: Option<String>,
    ) -> Arc<TenantHandle> {
        let (decisions, records_metric, level_gauge, energy_gauge, wal_errors_metric, duplicates) =
            self.tenant_metrics(name);
        Arc::new(TenantHandle {
            name: name.to_string(),
            queue: Mutex::new(VecDeque::new()),
            scheduled: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            acked: AtomicU64::new(acked),
            duplicates,
            state: Mutex::new(TenantState {
                stepper,
                telemetry,
                pages,
                records,
                wal,
                decisions,
                records_metric,
                level_gauge,
                energy_gauge,
                wal_errors_metric,
                wal_errors_seen: 0,
                degraded: false,
            }),
        })
    }

    /// The `FEED` fast path: enqueue, bump the backlog, wake a worker.
    /// Records for unknown tenants (or after shutdown began) are
    /// dropped. A sequenced feed is judged against the tenant's ack
    /// watermark — the dedup/gap decision, the watermark advance, and
    /// the push all happen under the queue lock, so an acknowledged seq
    /// always has its record either queued or applied, never dropped by
    /// a racing seal.
    fn feed(&self, name: &str, seq: Option<u64>, record: TraceRecord) -> FeedSlot {
        if self.shutdown.load(Ordering::Acquire) {
            return FeedSlot::Dropped;
        }
        let Some(handle) = self.lookup(name) else {
            return FeedSlot::Dropped;
        };
        // Count the record *before* it becomes visible in the queue:
        // the queue mutex then guarantees that any worker draining it
        // observes this increment first, so the drain's decrement can
        // never pull `queued` below zero.
        let backlog = self.queued.fetch_add(1, Ordering::AcqRel) + 1;
        let slot = {
            let mut queue = handle.queue.lock().expect("tenant queue lock");
            if handle.closed.load(Ordering::Acquire) {
                FeedSlot::Dropped
            } else {
                match seq {
                    None => {
                        queue.push_back(record);
                        FeedSlot::Accepted { ack: None }
                    }
                    Some(seq) => {
                        let acked = handle.acked.load(Ordering::Acquire);
                        if seq <= acked {
                            // A replay the daemon has already applied.
                            handle.duplicates.inc();
                            self.duplicates.inc();
                            if self.cfg.dedup {
                                FeedSlot::Duplicate
                            } else {
                                // Negative control: apply it twice so
                                // the chaos harness can prove it
                                // detects duplication.
                                queue.push_back(record);
                                FeedSlot::Accepted { ack: None }
                            }
                        } else if seq == acked + 1 || !self.cfg.dedup {
                            handle.acked.store(seq.max(acked), Ordering::Release);
                            queue.push_back(record);
                            FeedSlot::Accepted {
                                ack: (self.cfg.ack_every > 0
                                    && seq.is_multiple_of(self.cfg.ack_every))
                                .then_some(seq),
                            }
                        } else {
                            // The client skipped ahead: accepting would
                            // punch a silent hole below the watermark.
                            FeedSlot::Gap {
                                want: acked + 1,
                                got: seq,
                            }
                        }
                    }
                }
            }
        };
        if !matches!(slot, FeedSlot::Accepted { .. }) {
            // Nothing landed on the queue (seal race, duplicate, or
            // gap): take the record's count back out.
            self.record_drained(1);
            return slot;
        }
        self.queued_gauge.set(backlog as f64);
        if backlog >= self.cfg.shed_high && !self.overload.swap(true, Ordering::Relaxed) {
            self.admission_gauge.set(1.0);
        }
        if !handle.scheduled.swap(true, Ordering::AcqRel) {
            self.schedule(handle);
        }
        slot
    }

    /// Takes `drained` records out of the global backlog and applies
    /// the shed-low hysteresis — every drain path (worker batches, the
    /// CLOSE/shutdown seal, a feed beaten by a seal) must go through
    /// here so the overload flag can never stay latched after the
    /// backlog empties.
    fn record_drained(&self, drained: u64) {
        if drained == 0 {
            return;
        }
        let backlog = self
            .queued
            .fetch_sub(drained, Ordering::AcqRel)
            .saturating_sub(drained);
        self.queued_gauge.set(backlog as f64);
        if backlog < self.cfg.shed_low && self.overload.swap(false, Ordering::Relaxed) {
            self.admission_gauge.set(0.0);
        }
    }

    /// One worker turn: drain at most one batch from the tenant, then
    /// yield it back to the run queue if records remain.
    fn drain_one(&self, handle: &Arc<TenantHandle>) {
        let drained = {
            let mut state = handle.state.lock().expect("tenant state lock");
            let batch: Vec<TraceRecord> = {
                let mut queue = handle.queue.lock().expect("tenant queue lock");
                let take = queue.len().min(self.cfg.batch.max(1));
                queue.drain(..take).collect()
            };
            let fed = state.feed_batch(batch);
            self.records_total.add(fed);
            self.poll_wal_health(&mut state);
            fed
        };
        self.record_drained(drained);
        if !handle.queue.lock().expect("tenant queue lock").is_empty() {
            // Still backlogged: keep `scheduled` set and requeue.
            self.schedule(Arc::clone(handle));
            return;
        }
        handle.scheduled.store(false, Ordering::Release);
        // Close the race with a concurrent feed that saw `scheduled`
        // still true and skipped the wake-up.
        if !handle.queue.lock().expect("tenant queue lock").is_empty()
            && !handle.scheduled.swap(true, Ordering::AcqRel)
        {
            self.schedule(Arc::clone(handle));
        }
    }

    fn query(&self, name: &str, what: QueryKind) -> String {
        let Some(handle) = self.lookup(name) else {
            return format!("ERR unknown tenant '{name}'");
        };
        let state = handle.state.lock().expect("tenant state lock");
        match what {
            QueryKind::Timeout => format!("OK timeout_s {}", state.stepper.disk_timeout()),
            QueryKind::Banks => format!(
                "OK banks {} total {}",
                state.stepper.enabled_banks(),
                state.stepper.total_banks()
            ),
            QueryKind::Energy => format!("OK energy_j {}", state.stepper.energy_so_far_j()),
            QueryKind::MissCurve => {
                let evals = state
                    .stepper
                    .controller()
                    .inner()
                    .joint()
                    .last_evaluations();
                let mut line = format!("OK misscurve {}", evals.len());
                for eval in evals {
                    line.push_str(&format!(" {}:{}", eval.banks, eval.disk_accesses));
                }
                line
            }
            QueryKind::Status => {
                let queued = handle.queue.lock().expect("tenant queue lock").len();
                format!(
                    "OK tenant {name} records {} periods {} level {} queued {queued} acked {}",
                    state.records,
                    state.stepper.rows().len(),
                    state.stepper.controller().level().as_str(),
                    handle.acked.load(Ordering::Acquire),
                )
            }
            QueryKind::Acked => {
                format!("OK acked {}", handle.acked.load(Ordering::Acquire))
            }
        }
    }

    fn close(&self, name: &str) -> String {
        let removed = {
            let mut tenants = self.tenants.lock().expect("tenant map lock");
            let removed = tenants.remove(name);
            self.tenants_gauge.set(tenants.len() as f64);
            removed
        };
        match removed {
            Some(handle) => match self.seal_tenant(&handle) {
                Ok(_) => format!("OK closed {name}"),
                Err(e) => format!("ERR seal failed for {name}: {e}"),
            },
            None => format!("ERR unknown tenant '{name}'"),
        }
    }

    /// Drains the tenant's remaining queue inline, captures its
    /// checkpoint, and publishes the `.jck` (WAL flushed first by the
    /// checkpointer). The handle must already be out of the map.
    fn seal_tenant(&self, handle: &Arc<TenantHandle>) -> Result<TenantEntry, String> {
        let mut state = handle.state.lock().expect("tenant state lock");
        loop {
            let batch: Vec<TraceRecord> = {
                let mut queue = handle.queue.lock().expect("tenant queue lock");
                // Under the queue lock, so any later feed sees the flag
                // and drops its record instead of stranding it here.
                handle.closed.store(true, Ordering::Release);
                queue.drain(..).collect()
            };
            if batch.is_empty() {
                break;
            }
            let fed = state.feed_batch(batch);
            self.records_total.add(fed);
            self.record_drained(fed);
        }
        let ckpt = state.stepper.checkpoint();
        let ckpt_path = self.ckpt_path(&handle.name);
        let mut meta = CkptMeta::new("serve-tenant");
        if let Some(wal) = &state.wal {
            meta = meta.with_telemetry(wal.clone());
        }
        let mut saver = FileCheckpointer::new(&ckpt_path, meta, state.telemetry.clone())
            .with_backend(self.cfg.backend.clone());
        let sealed = saver.save(&ckpt);
        // The save's WAL flush is the last write this tenant performs;
        // fold its outcome into the metrics, then retire the tenant's
        // degraded contribution — it is leaving the registry either way.
        self.poll_wal_health(&mut state);
        if state.degraded {
            state.degraded = false;
            let now = self.degraded_tenants.fetch_sub(1, Ordering::AcqRel) - 1;
            self.degraded_gauge.set(now as f64);
        }
        if !sealed {
            return Err(saver
                .take_error()
                .map_or_else(|| "unknown checkpoint error".into(), |e| e.to_string()));
        }
        Ok(TenantEntry {
            name: handle.name.clone(),
            pages: state.pages,
            records: state.records,
            acked: handle.acked.load(Ordering::Acquire),
            checkpoint: ckpt_path.to_string_lossy().into_owned(),
            telemetry: state.wal.clone(),
        })
    }

    /// Seals every remaining tenant and publishes the shutdown
    /// manifest. Runs on the accept thread after the workers joined.
    fn seal_all(&self) {
        let tenants = std::mem::take(&mut *self.tenants.lock().expect("tenant map lock"));
        self.tenants_gauge.set(0.0);
        let mut manifest = TenantManifest::new("serve", 0);
        for handle in tenants.values() {
            match self.seal_tenant(handle) {
                Ok(entry) => manifest.tenants.push(entry),
                Err(e) => eprintln!("jpmd-serve: seal failed for {}: {e}", handle.name),
            }
        }
        let path = self.cfg.dir.join("tenants.jck");
        if let Err(e) = save_tenant_manifest(&path, &manifest) {
            eprintln!("jpmd-serve: manifest save failed: {e}");
        }
    }

    /// Rebuilds every tenant named by a previous shutdown's manifest.
    fn resume_tenants(&self) -> io::Result<usize> {
        let path = self.cfg.dir.join("tenants.jck");
        if !path.exists() {
            return Ok(0);
        }
        let manifest = load_tenant_manifest(&path)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut resumed = 0;
        for entry in &manifest.tenants {
            let (_meta, ckpt) = load_checkpoint(&entry.checkpoint)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            let (telemetry, wal) = match &entry.telemetry {
                Some(wal) => {
                    let sink = JsonlSink::resume_on(
                        self.cfg.backend.clone(),
                        wal,
                        ckpt.telemetry_seq,
                        WalPolicy::wal(),
                    )?;
                    (Telemetry::new(Box::new(sink)), Some(wal.clone()))
                }
                None => (Telemetry::disabled(), None),
            };
            let stepper = build_stepper(
                &self.cfg,
                &entry.name,
                entry.pages,
                &telemetry,
                Arc::clone(&self.overload),
                Some(&ckpt),
            )
            .map_err(io::Error::other)?;
            let handle = self.make_handle(
                &entry.name,
                stepper,
                telemetry,
                entry.pages,
                entry.records,
                entry.acked,
                wal,
            );
            let mut tenants = self.tenants.lock().expect("tenant map lock");
            tenants.insert(entry.name.clone(), handle);
            self.tenants_gauge.set(tenants.len() as f64);
            resumed += 1;
        }
        Ok(resumed)
    }
}

fn worker_loop(state: &Arc<ServerState>, ready_rx: &Mutex<Receiver<Arc<TenantHandle>>>) {
    loop {
        let next = {
            let rx = ready_rx.lock().expect("ready receiver lock");
            rx.recv_timeout(WORKER_POLL)
        };
        match next {
            Ok(handle) => state.drain_one(&handle),
            Err(RecvTimeoutError::Timeout) => {
                if state.shutdown.load(Ordering::Acquire)
                    && state.queued.load(Ordering::Acquire) == 0
                {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Executes one parsed request; `None` means no response line (an
/// accepted or deduplicated `FEED`).
fn execute(state: &Arc<ServerState>, request: Request) -> Option<String> {
    match request {
        Request::Feed {
            tenant,
            seq,
            record,
        } => match state.feed(&tenant, seq, record) {
            FeedSlot::Accepted { ack: Some(seq) } => Some(format!("ACK {seq}")),
            FeedSlot::Accepted { ack: None } | FeedSlot::Duplicate | FeedSlot::Dropped => None,
            FeedSlot::Gap { want, got } => Some(format!("ERR feed seq gap: want {want} got {got}")),
        },
        Request::Open { tenant, pages } => Some(state.open_or_attach(&tenant, pages, false)),
        Request::Attach { tenant, pages } => Some(state.open_or_attach(&tenant, pages, true)),
        Request::Query { tenant, what } => Some(state.query(&tenant, what)),
        Request::Close { tenant } => Some(state.close(&tenant)),
        Request::Ping => Some(format!(
            "OK pong queued {}",
            state.queued.load(Ordering::Acquire)
        )),
        Request::Stats => {
            let s = state.stats();
            Some(format!(
                "OK tenants {} queued {} shedding {} records {} rejected {} \
                 wal_errors {} degraded {} conns {} conn_dropped {} \
                 read_timeouts {} duplicates {}",
                s.tenants,
                s.queued,
                u8::from(s.shedding),
                s.records_total,
                s.rejected_opens,
                s.wal_write_errors,
                s.degraded_tenants,
                s.conns_accepted,
                s.conns_dropped,
                s.read_timeouts,
                s.feed_duplicates
            ))
        }
        Request::Shutdown => {
            state.shutdown.store(true, Ordering::Release);
            Some("OK shutting-down".into())
        }
    }
}

/// Bounded line read against a stream carrying [`CONN_READ_TIMEOUT`]:
/// timeouts retry (an idle protocol client between requests is normal)
/// until the daemon begins shutdown, a *partial* line stalls past
/// [`MIDLINE_IDLE_LIMIT`], or — when `idle_limit` is set — that many
/// timeouts pass without a byte arriving at all. Returns the bytes
/// consumed from the stream (EOF after a partial, unterminated final
/// line still delivers it); `Ok(0)` means EOF with nothing buffered, or
/// give-up — a timed-out partial line is incomplete by definition and
/// is dropped with the connection (counted in
/// `serve.conn.read_timeouts`).
///
/// The line is bounded at [`MAX_LINE`] bytes: one byte past it is a
/// typed [`io::ErrorKind::InvalidData`] error, never unbounded `String`
/// growth from a hostile or corrupted client. Invalid UTF-8 is replaced
/// lossily rather than erroring — garbage on the wire must reach the
/// parser and come back as a protocol-level `ERR`, not kill the read
/// path silently.
fn read_line_interruptible<R: BufRead>(
    state: &ServerState,
    reader: &mut R,
    line: &mut String,
    idle_limit: Option<u32>,
) -> io::Result<usize> {
    let mut consumed = 0usize;
    let mut idle = 0u32;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if state.shutdown.load(Ordering::Acquire) {
                    return Ok(0);
                }
                idle += 1;
                if idle_limit.is_some_and(|limit| idle >= limit)
                    || (consumed > 0 && idle >= MIDLINE_IDLE_LIMIT)
                {
                    state.read_timeouts.inc();
                    return Ok(0);
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // EOF: deliver whatever partial line is assembled.
            return Ok(consumed);
        }
        let (take, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (chunk.len(), false),
        };
        if consumed + take > MAX_LINE {
            // Leave the tail unconsumed — the connection closes anyway.
            return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
        }
        line.push_str(&String::from_utf8_lossy(&chunk[..take]));
        reader.consume(take);
        consumed += take;
        idle = 0;
        if done {
            return Ok(consumed);
        }
    }
}

/// Serves `GET /metrics` (Prometheus text exposition) over just enough
/// HTTP/1.0: read the request head, write one response, close.
fn serve_http<R: BufRead>(
    state: &Arc<ServerState>,
    reader: &mut R,
    writer: &mut impl Write,
    request_line: &str,
) -> io::Result<()> {
    // Drain the request head so the client's write never sees a reset.
    let mut line = String::new();
    loop {
        line.clear();
        if read_line_interruptible(state, reader, &mut line, Some(HTTP_IDLE_LIMIT))? == 0
            || line.trim_end().is_empty()
        {
            break;
        }
    }
    let target = request_line.split_ascii_whitespace().nth(1).unwrap_or("");
    let (status, body) = if target == "/metrics" {
        ("200 OK", state.registry.snapshot().to_prometheus_text())
    } else {
        ("404 Not Found", String::from("not found\n"))
    };
    write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

/// Reads the next line, translating the bounded reader's overflow into
/// the protocol-level `ERR line too long` + close that a hostile line
/// deserves. `Ok(false)` means the connection is done.
fn next_line<R: BufRead>(
    state: &ServerState,
    reader: &mut R,
    writer: &mut impl Write,
    line: &mut String,
) -> io::Result<bool> {
    match read_line_interruptible(state, reader, line, None) {
        Ok(0) => Ok(false),
        Ok(_) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            state.conn_dropped.inc();
            writeln!(writer, "ERR line too long")?;
            writer.flush()?;
            Ok(false)
        }
        Err(e) => Err(e),
    }
}

fn handle_connection(state: Arc<ServerState>, stream: TcpStream) -> io::Result<()> {
    state.connections.inc();
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    if !next_line(&state, &mut reader, &mut writer, &mut line)? {
        return Ok(());
    }
    let first = line.trim_end().to_string();
    if first.starts_with("GET ") || first.starts_with("HEAD ") {
        return serve_http(&state, &mut reader, &mut writer, &first);
    }
    loop {
        let trimmed = line.trim_end();
        if !trimmed.is_empty() {
            match parse_request(trimmed) {
                Ok(request) => {
                    let is_shutdown = request == Request::Shutdown;
                    if let Some(response) = execute(&state, request) {
                        writeln!(writer, "{response}")?;
                        writer.flush()?;
                    }
                    if is_shutdown {
                        return Ok(());
                    }
                }
                Err(reason) => {
                    writeln!(writer, "ERR {reason}")?;
                    writer.flush()?;
                }
            }
        }
        line.clear();
        if !next_line(&state, &mut reader, &mut writer, &mut line)? {
            return Ok(());
        }
    }
}

/// A running daemon: the handle [`Daemon::start`] returns.
pub struct Daemon {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Binds the listener (loopback only), optionally resumes tenants
    /// from a previous shutdown's manifest, and starts the worker pool
    /// and accept loop.
    ///
    /// # Errors
    ///
    /// Propagates bind/IO failures, and resume failures (a torn or
    /// foreign manifest/checkpoint) as [`io::ErrorKind::InvalidData`].
    pub fn start(cfg: ServeConfig) -> io::Result<Daemon> {
        std::fs::create_dir_all(&cfg.dir)?;
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(2)
        } else {
            cfg.workers
        };
        let resume = cfg.resume;
        let (ready_tx, ready_rx) = mpsc::channel();
        let state = Arc::new(ServerState::new(cfg, ready_tx));
        if resume {
            state.resume_tenants()?;
        }
        let ready_rx = Arc::new(Mutex::new(ready_rx));
        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || {
            let mut pool = Vec::with_capacity(workers);
            for _ in 0..workers {
                let state = Arc::clone(&accept_state);
                let rx = Arc::clone(&ready_rx);
                pool.push(std::thread::spawn(move || worker_loop(&state, &rx)));
            }
            loop {
                if sigterm_received() {
                    accept_state.shutdown.store(true, Ordering::Release);
                }
                if accept_state.shutdown.load(Ordering::Acquire) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        if accept_state.live_connections.fetch_add(1, Ordering::AcqRel)
                            >= MAX_CONNECTIONS
                        {
                            accept_state.live_connections.fetch_sub(1, Ordering::AcqRel);
                            accept_state.conn_dropped.inc();
                            drop(stream);
                            continue;
                        }
                        accept_state.conn_accepted.inc();
                        // The listener is non-blocking; make sure the
                        // accepted socket isn't (inherited on some
                        // platforms) or the read timeout would spin.
                        stream.set_nonblocking(false).ok();
                        stream.set_read_timeout(Some(CONN_READ_TIMEOUT)).ok();
                        let state = Arc::clone(&accept_state);
                        std::thread::spawn(move || {
                            let _ = handle_connection(Arc::clone(&state), stream);
                            state.live_connections.fetch_sub(1, Ordering::AcqRel);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            for worker in pool {
                let _ = worker.join();
            }
            accept_state.seal_all();
        });
        Ok(Daemon {
            addr,
            state,
            accept: Some(accept),
        })
    }

    /// The bound address (read the ephemeral port here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Daemon-wide counters right now.
    pub fn stats(&self) -> DaemonStats {
        self.state.stats()
    }

    /// Requests shutdown without a client connection (what the binary
    /// does on `SIGTERM` if the flag was polled elsewhere).
    pub fn request_shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Release);
    }

    /// Blocks until the daemon has shut down, drained, and sealed every
    /// tenant.
    pub fn join(mut self) -> io::Result<()> {
        if let Some(accept) = self.accept.take() {
            accept
                .join()
                .map_err(|_| io::Error::other("accept thread panicked"))?;
        }
        Ok(())
    }
}
