//! `ServeClient` integration tests against a live daemon, focused on
//! the hardest exactly-once corner: connections that die *during* the
//! `ATTACH` replay itself. A crash mid-replay must just replay again —
//! the ack watermark makes the retry idempotent — and the stream must
//! converge to exactly-once delivery with a monotone watermark and a
//! gap-free telemetry WAL.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use jpmd_obs::ObsRecord;
use jpmd_serve::{ClientOpts, Conn, Daemon, ServeClient, ServeConfig};
use jpmd_trace::{TraceRecord, TraceSource, WorkloadBuilder, MIB};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jpmd-client-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn workload(seed: u64) -> Vec<TraceRecord> {
    let trace = WorkloadBuilder::new()
        .data_set_bytes(256 * MIB)
        .rate_bytes_per_sec(2 * MIB)
        .duration_secs(1800.0)
        .seed(seed)
        .build()
        .expect("workload");
    let mut source = trace.source();
    let mut out = Vec::new();
    while let Some(next) = source.next_record() {
        out.push(next.expect("in-memory sources cannot fail"));
    }
    out
}

/// A stream that dies permanently after a fixed budget of written
/// bytes — torn mid-line like a real half-sent packet, then
/// `BrokenPipe` for every later read or write.
struct KillAfter {
    inner: TcpStream,
    budget: u64,
    dead: bool,
}

impl Read for KillAfter {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "killed"));
        }
        self.inner.read(buf)
    }
}

impl Write for KillAfter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "killed"));
        }
        if self.budget == 0 {
            self.dead = true;
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "killed"));
        }
        let n = (buf.len() as u64).min(self.budget) as usize;
        self.budget -= n as u64;
        self.inner.write(&buf[..n])
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "killed"));
        }
        self.inner.flush()
    }
}

/// One control round trip on a fresh, reliable connection.
fn control(addr: std::net::SocketAddr, line: &str) -> String {
    let stream = TcpStream::connect(addr).expect("control connect");
    let mut writer = stream.try_clone().expect("clone");
    writeln!(writer, "{line}").expect("write");
    writer.flush().expect("flush");
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("read");
    reply.trim_end().to_string()
}

fn field_after(reply: &str, key: &str) -> Option<u64> {
    let mut words = reply.split_whitespace();
    while let Some(word) = words.next() {
        if word == key {
            return words.next()?.parse().ok();
        }
    }
    None
}

fn wait_drained(addr: std::net::SocketAddr) {
    let started = Instant::now();
    loop {
        let reply = control(addr, "PING");
        match field_after(&reply, "queued") {
            Some(0) => return,
            Some(_) => std::thread::sleep(Duration::from_millis(10)),
            None => panic!("bad ping reply: {reply}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(120),
            "daemon failed to drain"
        );
    }
}

#[test]
fn crash_during_attach_replay_converges_exactly_once() {
    let dir = scratch_dir("replay-crash");
    let daemon = Daemon::start(ServeConfig::new(&dir)).expect("start daemon");
    let addr = daemon.addr();

    // Per-connection write budgets, consumed in dial order. The first
    // connection dies mid-stream with a full replay ring; the next two
    // survive the ATTACH handshake (~20 bytes) but die partway through
    // rewriting the ring — the crash-during-replay case; later dials
    // live forever.
    let budgets = Arc::new(Mutex::new(VecDeque::from([2000u64, 60, 90])));
    let connector_budgets = Arc::clone(&budgets);
    let connector: Box<dyn FnMut() -> io::Result<Box<dyn Conn>> + Send> = Box::new(move || {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let budget = connector_budgets
            .lock()
            .expect("budget lock")
            .pop_front()
            .unwrap_or(u64::MAX);
        Ok(Box::new(KillAfter {
            inner: stream,
            budget,
            dead: false,
        }) as Box<dyn Conn>)
    });

    let opts = ClientOpts {
        buffer_bytes: 0,
        ..ClientOpts::default()
    };
    let mut client = ServeClient::new(connector, "victim", 4096, opts);
    let records = workload(11);
    let total = records.len() as u64;
    assert!(total > 100, "workload too small to cross the kill budgets");

    let mut last_acked = 0;
    for (i, record) in records.into_iter().enumerate() {
        client.feed(record).expect("feed must survive the crashes");
        if (i + 1) % 50 == 0 {
            client.sync().expect("sync");
            // The watermark only ever moves forward, and never past
            // what we actually fed.
            assert!(client.acked() >= last_acked, "watermark went backwards");
            assert!(client.acked() <= (i + 1) as u64, "watermark overran");
            last_acked = client.acked();
        }
    }
    client.sync().expect("final sync");
    assert!(client.acked() >= last_acked, "watermark went backwards");

    let stats = client.stats();
    assert_eq!(stats.sent, total);
    assert_eq!(stats.gave_up, 0, "client gave up: {stats:?}");
    assert!(
        stats.reconnects >= 1 && stats.replayed >= 1,
        "the kill schedule never bit: {stats:?}"
    );
    assert!(
        budgets.lock().expect("budget lock").is_empty(),
        "not every scripted kill was consumed"
    );

    wait_drained(addr);
    let status = control(addr, "QUERY victim status");
    assert_eq!(
        field_after(&status, "records"),
        Some(total),
        "exactly-once violated: fed {total}, daemon says {status}"
    );
    assert_eq!(field_after(&status, "acked"), Some(total), "{status}");

    assert!(control(addr, "SHUTDOWN").starts_with("OK"));
    daemon.join().expect("clean shutdown");

    // The sealed WAL must be gap-free: the storm cost retries, never
    // telemetry records.
    let text = std::fs::read_to_string(dir.join("victim.jsonl")).expect("read WAL");
    for (i, line) in text.lines().enumerate() {
        let record = ObsRecord::from_line(line).expect("parse WAL line");
        assert_eq!(record.seq, i as u64, "WAL seq gap at line {i}");
    }
}
