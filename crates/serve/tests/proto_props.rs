//! Property tests for the wire protocol parser: `parse_request` must
//! never panic no matter what bytes arrive (garbage injected by
//! `FaultyStream` reaches it verbatim), every rejection must be a
//! single-line typed reason, and `format_request` must round-trip every
//! valid request — including the exactly-once additions (`ATTACH`,
//! sequenced `FEED`, `ACK` pushes).

use jpmd_serve::proto::{format_request, parse_ack, parse_request, Request};
use jpmd_serve::QueryKind;
use jpmd_trace::{AccessKind, FileId, TraceRecord};
use proptest::prelude::*;

/// A legal tenant name: `[A-Za-z0-9._-]`, 1..=64 bytes.
fn tenant_strategy() -> impl Strategy<Value = String> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";
    prop::collection::vec(0..ALPHABET.len(), 1..65)
        .prop_map(|picks| picks.into_iter().map(|i| ALPHABET[i] as char).collect())
}

/// Non-negative finite times of varied magnitude — the parser rejects
/// NaN, infinities, and negatives by design, and `{}`-formatted floats
/// round-trip exactly through `str::parse`.
fn time_strategy() -> impl Strategy<Value = f64> {
    (0u64..1_000_000_000, any::<f64>()).prop_map(|(whole, frac)| whole as f64 + frac)
}

fn record_strategy() -> impl Strategy<Value = TraceRecord> {
    (
        time_strategy(),
        any::<u32>(),
        (any::<u64>(), any::<u64>()),
        any::<bool>(),
    )
        .prop_map(|(time, file, (first_page, pages), write)| TraceRecord {
            time,
            file: FileId(file),
            first_page,
            pages,
            kind: if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        })
}

fn request_strategy() -> impl Strategy<Value = Request> {
    let kinds = vec![
        QueryKind::Timeout,
        QueryKind::Banks,
        QueryKind::MissCurve,
        QueryKind::Energy,
        QueryKind::Status,
        QueryKind::Acked,
    ];
    (
        (0u32..8, tenant_strategy()),
        (any::<u64>(), any::<bool>()),
        (1u64..u64::MAX, any::<bool>()),
        (record_strategy(), prop::sample::select(kinds)),
    )
        .prop_map(
            |((variant, tenant), (pages, pages_present), (seq, seq_present), (record, what))| {
                let pages = pages_present.then_some(pages);
                match variant {
                    0 => Request::Open { tenant, pages },
                    1 => Request::Attach { tenant, pages },
                    2 => Request::Feed {
                        tenant,
                        seq: seq_present.then_some(seq),
                        record,
                    },
                    3 => Request::Query { tenant, what },
                    4 => Request::Stats,
                    5 => Request::Ping,
                    6 => Request::Close { tenant },
                    _ => Request::Shutdown,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The parser is the first thing storm garbage reaches; whatever the
    // bytes, it must return a value, and a rejection must be a clean
    // single-line reason ready to ship as `ERR <reason>`.
    #[test]
    fn parser_never_panics_and_errors_are_single_line(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let line = String::from_utf8_lossy(&bytes);
        if let Err(reason) = parse_request(&line) {
            prop_assert!(!reason.is_empty(), "empty rejection reason");
            prop_assert!(
                !reason.contains('\n') && !reason.contains('\r'),
                "rejection reason spans lines: {:?}", reason
            );
        }
    }

    // format_request must emit exactly the line parse_request reverses,
    // for every variant — the encoder the exactly-once client rides on.
    #[test]
    fn round_trips_every_valid_request(request in request_strategy()) {
        let line = format_request(&request);
        let parsed = parse_request(&line);
        prop_assert_eq!(parsed.as_ref(), Ok(&request), "line was {:?}", line);
    }

    #[test]
    fn ack_lines_round_trip(seq in any::<u64>()) {
        prop_assert_eq!(parse_ack(&format!("ACK {seq}")), Some(seq));
    }

    // parse_ack is called on every reply line the client reads; it must
    // never panic and must not claim non-ACK lines.
    #[test]
    fn parse_ack_never_panics_or_misfires(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let line = String::from_utf8_lossy(&bytes);
        if let Some(seq) = parse_ack(&line) {
            let canonical = format!("ACK {seq}");
            prop_assert_eq!(
                line.split_ascii_whitespace().collect::<Vec<_>>(),
                canonical.split_ascii_whitespace().collect::<Vec<_>>()
            );
        }
    }
}
