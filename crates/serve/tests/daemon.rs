//! End-to-end daemon tests over real TCP connections: Prometheus
//! exposition, run-to-run determinism of the per-tenant telemetry WALs,
//! kill-and-restart resume, and overload shedding with recovery.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use jpmd_obs::ObsRecord;
use jpmd_serve::{Daemon, ServeConfig};
use jpmd_trace::{TraceRecord, TraceSource, WorkloadBuilder, MIB};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jpmd-serve-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn workload(seed: u64, duration_secs: f64) -> Vec<TraceRecord> {
    let trace = WorkloadBuilder::new()
        .data_set_bytes(256 * MIB)
        .rate_bytes_per_sec(2 * MIB)
        .duration_secs(duration_secs)
        .seed(seed)
        .build()
        .expect("workload");
    let mut source = trace.source();
    let mut out = Vec::new();
    while let Some(next) = source.next_record() {
        out.push(next.expect("in-memory sources cannot fail"));
    }
    out
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn feed(&mut self, tenant: &str, record: &TraceRecord) {
        writeln!(
            self.writer,
            "{}",
            jpmd_serve::proto::format_feed(tenant, record)
        )
        .expect("feed");
    }

    fn ask(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("response");
        response.trim_end().to_string()
    }

    fn queued(&mut self) -> u64 {
        let reply = self.ask("PING");
        reply
            .rsplit(' ')
            .next()
            .and_then(|w| w.parse().ok())
            .unwrap_or_else(|| panic!("bad ping reply: {reply}"))
    }

    fn wait_drained(&mut self) {
        let started = Instant::now();
        while self.queued() > 0 {
            assert!(
                started.elapsed() < Duration::from_secs(120),
                "daemon failed to drain"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

fn http_get_metrics(addr: std::net::SocketAddr) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n").expect("request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

/// A strict-enough Prometheus text-exposition parser: every non-comment
/// line must be `name[{labels}] value`, names must be legal, and label
/// blocks must be `key="value"` pairs. Returns (metric line → value).
fn parse_prometheus(body: &str) -> std::collections::BTreeMap<String, f64> {
    let mut out = std::collections::BTreeMap::new();
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: {line:?}");
        });
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad sample value in {line:?}"));
        let name_part = series.split('{').next().unwrap();
        assert!(
            !name_part.is_empty()
                && name_part
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
                && !name_part.starts_with(|c: char| c.is_ascii_digit()),
            "illegal metric name in {line:?}"
        );
        if let Some(rest) = series.strip_prefix(name_part) {
            if !rest.is_empty() {
                assert!(
                    rest.starts_with('{') && rest.ends_with('}'),
                    "malformed label block in {line:?}"
                );
                for pair in rest[1..rest.len() - 1].split(',') {
                    let (key, val) = pair.split_once('=').unwrap_or_else(|| {
                        panic!("malformed label pair {pair:?} in {line:?}");
                    });
                    assert!(
                        !key.is_empty() && val.starts_with('"') && val.ends_with('"'),
                        "malformed label value in {line:?}"
                    );
                }
            }
        }
        out.insert(series.to_string(), value);
    }
    out
}

fn normalized_wal(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).expect("read WAL");
    text.lines()
        .map(|line| {
            ObsRecord::from_line(line)
                .unwrap_or_else(|e| panic!("malformed WAL line {line:?}: {e}"))
                .normalized_line()
        })
        .collect()
}

fn wal_seqs_are_gap_free(path: &Path) {
    let text = std::fs::read_to_string(path).expect("read WAL");
    for (i, line) in text.lines().enumerate() {
        let record = ObsRecord::from_line(line).expect("parse WAL line");
        assert_eq!(record.seq, i as u64, "seq gap in {path:?} at line {i}");
    }
}

fn base_config(dir: &Path) -> ServeConfig {
    let mut cfg = ServeConfig::new(dir);
    cfg.duration_secs = 1e9;
    cfg.period_secs = 300.0;
    cfg
}

#[test]
fn metrics_endpoint_serves_valid_prometheus_with_tenant_labels() {
    let dir = scratch_dir("metrics");
    let daemon = Daemon::start(base_config(&dir)).expect("start daemon");
    let addr = daemon.addr();

    let mut client = Client::connect(addr);
    for (tenant, seed) in [("alpha", 21u64), ("beta", 22)] {
        assert!(client.ask(&format!("OPEN {tenant} 256")).starts_with("OK"));
        for record in workload(seed, 1800.0) {
            client.feed(tenant, &record);
        }
    }
    client.wait_drained();

    let (head, body) = http_get_metrics(addr);
    assert!(head.starts_with("HTTP/1.0 200"), "{head}");
    assert!(head.contains("text/plain"), "{head}");
    let samples = parse_prometheus(&body);
    for tenant in ["alpha", "beta"] {
        let decisions = samples
            .get(&format!("serve_tenant_decisions{{tenant=\"{tenant}\"}}"))
            .unwrap_or_else(|| panic!("no decision counter for {tenant} in:\n{body}"));
        assert!(
            *decisions >= 1.0,
            "{tenant} made no period decisions:\n{body}"
        );
        let records = samples
            .get(&format!("serve_tenant_records{{tenant=\"{tenant}\"}}"))
            .expect("records counter");
        assert!(*records > 0.0);
    }
    assert_eq!(samples.get("serve_tenants"), Some(&2.0));
    assert_eq!(samples.get("serve_queued"), Some(&0.0));

    // An unknown path is a 404, not a hang or a protocol error.
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET /nope HTTP/1.0\r\n\r\n").expect("request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    assert!(raw.starts_with("HTTP/1.0 404"), "{raw}");

    assert!(client.ask("SHUTDOWN").starts_with("OK"));
    daemon.join().expect("join");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_runs_of_the_same_script_write_identical_normalized_wals() {
    let run = |tag: &str| -> Vec<Vec<String>> {
        let dir = scratch_dir(tag);
        let daemon = Daemon::start(base_config(&dir)).expect("start daemon");
        let mut client = Client::connect(daemon.addr());
        for tenant in ["t0", "t1", "t2"] {
            assert!(client.ask(&format!("OPEN {tenant} 256")).starts_with("OK"));
        }
        // Interleave tenants record by record — worker scheduling must
        // not leak into any tenant's event stream.
        let scripts: Vec<(&str, Vec<TraceRecord>)> = vec![
            ("t0", workload(31, 1800.0)),
            ("t1", workload(32, 1800.0)),
            ("t2", workload(33, 1800.0)),
        ];
        let longest = scripts.iter().map(|(_, r)| r.len()).max().unwrap();
        for i in 0..longest {
            for (tenant, records) in &scripts {
                if let Some(record) = records.get(i) {
                    client.feed(tenant, record);
                }
            }
        }
        client.wait_drained();
        assert!(client.ask("SHUTDOWN").starts_with("OK"));
        daemon.join().expect("join");
        let wals = ["t0", "t1", "t2"]
            .iter()
            .map(|t| normalized_wal(&dir.join(format!("{t}.jsonl"))))
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        wals
    };
    let first = run("det-a");
    let second = run("det-b");
    assert!(
        first.iter().all(|wal| wal.len() > 3),
        "WALs must carry period events, got lengths {:?}",
        first.iter().map(Vec::len).collect::<Vec<_>>()
    );
    assert_eq!(first, second, "normalized WALs must be byte-identical");
}

#[test]
fn shutdown_seals_and_restart_resumes_gap_free() {
    let records = workload(41, 1800.0);
    let half = records.len() / 2;

    // Reference: one uninterrupted run.
    let ref_dir = scratch_dir("resume-ref");
    let (ref_wal, ref_answers) = {
        let daemon = Daemon::start(base_config(&ref_dir)).expect("start daemon");
        let mut client = Client::connect(daemon.addr());
        assert!(client.ask("OPEN t0 256").starts_with("OK"));
        for record in &records {
            client.feed("t0", record);
        }
        client.wait_drained();
        let answers = (
            client.ask("QUERY t0 banks"),
            client.ask("QUERY t0 timeout"),
            client.ask("QUERY t0 energy"),
        );
        assert!(client.ask("SHUTDOWN").starts_with("OK"));
        daemon.join().expect("join");
        (normalized_wal(&ref_dir.join("t0.jsonl")), answers)
    };

    // Interrupted: feed half, shut down (seals checkpoint + manifest).
    let dir = scratch_dir("resume");
    {
        let daemon = Daemon::start(base_config(&dir)).expect("start daemon");
        let mut client = Client::connect(daemon.addr());
        assert!(client.ask("OPEN t0 256").starts_with("OK"));
        for record in &records[..half] {
            client.feed("t0", record);
        }
        client.wait_drained();
        assert!(client.ask("SHUTDOWN").starts_with("OK"));
        daemon.join().expect("join");
    }
    assert!(dir.join("tenants.jck").exists(), "manifest must be sealed");
    assert!(dir.join("t0.jck").exists(), "tenant checkpoint must exist");

    // Restart with resume; the client replays the stream from the start.
    {
        let mut cfg = base_config(&dir);
        cfg.resume = true;
        let daemon = Daemon::start(cfg).expect("resume daemon");
        assert_eq!(daemon.stats().tenants, 1, "tenant must be resumed");
        let mut client = Client::connect(daemon.addr());
        // No OPEN needed — the tenant is already live.
        let status = client.ask("QUERY t0 status");
        assert!(status.starts_with("OK"), "{status}");
        for record in &records {
            client.feed("t0", record);
        }
        client.wait_drained();
        assert_eq!(client.ask("QUERY t0 banks"), ref_answers.0);
        assert_eq!(client.ask("QUERY t0 timeout"), ref_answers.1);
        assert_eq!(client.ask("QUERY t0 energy"), ref_answers.2);
        assert!(client.ask("SHUTDOWN").starts_with("OK"));
        daemon.join().expect("join");
    }
    let resumed_wal = normalized_wal(&dir.join("t0.jsonl"));
    wal_seqs_are_gap_free(&dir.join("t0.jsonl"));
    assert_eq!(
        resumed_wal, ref_wal,
        "resumed WAL must match the uninterrupted run's"
    );
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn close_while_shedding_clears_overload_and_reopens_admission() {
    let dir = scratch_dir("close-shed");
    let mut cfg = base_config(&dir);
    cfg.workers = 1;
    cfg.batch = 16;
    cfg.shed_high = 64;
    cfg.shed_low = 16;
    let daemon = Daemon::start(cfg).expect("start daemon");
    let mut client = Client::connect(daemon.addr());
    assert!(client.ask("OPEN hog 256").starts_with("OK"));

    // Flood the single tenant past the shed watermark.
    let records = workload(61, 120_000.0);
    for record in &records {
        client.feed("hog", record);
    }
    client.writer.flush().expect("flush");
    let started = Instant::now();
    while !daemon.stats().shedding {
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "the flood must cross the shed watermark"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // CLOSE drains the whole backlog inline through the seal. The shed
    // flag must clear with that drain — not stay latched with zero
    // tenants left and every future OPEN rejected. (All FEEDs share
    // this connection, so they are all enqueued before CLOSE runs; a
    // worker may still hold the final in-flight batch, hence the poll.)
    assert!(client.ask("CLOSE hog").starts_with("OK"));
    assert_eq!(daemon.stats().tenants, 0);
    let started = Instant::now();
    while daemon.stats().shedding {
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "overload must clear once the CLOSE drain empties the backlog"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        client.ask("OPEN fresh 256").starts_with("OK"),
        "admission must reopen after the backlog drains"
    );

    assert!(client.ask("SHUTDOWN").starts_with("OK"));
    daemon.join().expect("join");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_rejects_admissions_and_recovers() {
    let dir = scratch_dir("overload");
    let mut cfg = base_config(&dir);
    cfg.workers = 1;
    cfg.batch = 16;
    cfg.shed_high = 64;
    cfg.shed_low = 16;
    let daemon = Daemon::start(cfg).expect("start daemon");
    let mut client = Client::connect(daemon.addr());
    assert!(client.ask("OPEN hog 256").starts_with("OK"));

    // Phase 1: flood — hundreds of periods' worth of records in one
    // burst. The synthetic workload yields roughly one record per 16
    // stream-seconds, so the horizon here buys a few thousand records.
    let records = workload(51, 120_000.0);
    let half = records.len() / 2;
    for record in &records[..half] {
        client.feed("hog", record);
    }
    client.writer.flush().expect("flush");

    // The daemon must shed: admission closed, but queries still answered.
    let mut saw_shedding = false;
    let started = Instant::now();
    while started.elapsed() < Duration::from_secs(60) {
        let stats = daemon.stats();
        if stats.shedding {
            saw_shedding = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(saw_shedding, "the flood must cross the shed watermark");
    let mut second = Client::connect(daemon.addr());
    assert!(
        second.ask("OPEN late 256").starts_with("ERR"),
        "admission must be closed while shedding"
    );
    let reply = second.ask("QUERY hog banks");
    assert!(
        reply.starts_with("OK banks"),
        "queries must be answered under load: {reply}"
    );

    // Phase 2: paced tail — chunks stay well under the high watermark so
    // the backlog drains, shedding clears, and the guard's promotion
    // ladder lifts the tenant back toward Joint over the healthy periods.
    for chunk in records[half..].chunks(32) {
        for record in chunk {
            client.feed("hog", record);
        }
        while client.queued() > 8 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    client.wait_drained();
    let stats = daemon.stats();
    assert!(!stats.shedding, "shedding must clear after the drain");
    assert!(stats.rejected_opens >= 1);

    assert!(client.ask("SHUTDOWN").starts_with("OK"));
    daemon.join().expect("join");

    // The WAL carries the degradation story: at least one fallback while
    // overloaded and at least one promotion after recovery.
    let text = std::fs::read_to_string(dir.join("hog.jsonl")).expect("read WAL");
    let mut kinds = Vec::new();
    for line in text.lines() {
        let record = ObsRecord::from_line(line).expect("parse WAL line");
        if record.event.name() == "Degradation" {
            kinds.push(line.to_string());
        }
    }
    assert!(
        kinds.iter().any(|l| l.contains("\"fallback\"")),
        "expected a fallback Degradation event, got {kinds:?}"
    );
    assert!(
        kinds
            .iter()
            .any(|l| l.contains("\"promote\"") || l.contains("\"recovery\"")),
        "expected a promote/recovery Degradation event, got {kinds:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pulls the numeric value after `key` out of a `STATS` reply.
fn stat_field(reply: &str, key: &str) -> u64 {
    let mut words = reply.split_whitespace();
    while let Some(word) = words.next() {
        if word == key {
            return words
                .next()
                .and_then(|w| w.parse().ok())
                .unwrap_or_else(|| panic!("bad value after {key} in {reply:?}"));
        }
    }
    panic!("no {key} field in {reply:?}");
}

#[test]
fn wal_outage_degrades_telemetry_not_tenants() {
    use jpmd_faults::{FaultyStorage, IoFaultPlan, SharedBackend};

    let dir = scratch_dir("walfault");
    let mut cfg = base_config(&dir);
    // Every durable write fails while the global storage-op counter is
    // in [5, 105): a few healthy telemetry lines, then an outage short
    // enough that the ring never overflows (no records lost), then a
    // healed disk the sink must climb back onto by itself.
    cfg.backend = SharedBackend::from(FaultyStorage::new(IoFaultPlan::outage(42, 5, 105)));
    let daemon = Daemon::start(cfg).expect("start daemon");
    let addr = daemon.addr();
    let mut client = Client::connect(addr);
    assert!(client.ask("OPEN alpha 256").starts_with("OK"));

    let records = workload(77, 36_000.0);
    let mut saw_degraded = false;
    let mut healthy_after = false;
    for chunk in records.chunks(400) {
        for record in chunk {
            client.feed("alpha", record);
        }
        client.wait_drained();
        // The tenant keeps answering control queries no matter what the
        // disk is doing — telemetry is shed, tenants are not.
        assert!(
            client.ask("QUERY alpha timeout").starts_with("OK"),
            "query must answer during the outage"
        );
        let stats = client.ask("STATS");
        let degraded = stat_field(&stats, "degraded");
        if degraded > 0 {
            saw_degraded = true;
        } else if saw_degraded {
            healthy_after = true;
            break;
        }
    }
    assert!(saw_degraded, "the outage window never degraded the WAL");
    assert!(
        healthy_after,
        "the WAL never recovered after the window closed"
    );
    assert!(
        stat_field(&client.ask("STATS"), "wal_errors") > 0,
        "absorbed write failures must be counted"
    );

    let (_, body) = http_get_metrics(addr);
    let samples = parse_prometheus(&body);
    assert!(
        samples
            .get("serve_wal_write_errors")
            .copied()
            .unwrap_or(0.0)
            > 0.0,
        "no serve_wal_write_errors in:\n{body}"
    );
    assert_eq!(
        samples.get("serve_storage_degraded"),
        Some(&0.0),
        "degraded gauge must fall back to zero"
    );
    assert!(
        samples
            .get("serve_tenant_wal_write_errors{tenant=\"alpha\"}")
            .copied()
            .unwrap_or(0.0)
            > 0.0,
        "no per-tenant wal_write_errors in:\n{body}"
    );

    assert!(client.ask("SHUTDOWN").starts_with("OK"));
    daemon.join().expect("join");

    // Nothing was lost: the recovered WAL is seq-gap-free end to end,
    // and the shutdown seal produced a checkpoint that verifies.
    wal_seqs_are_gap_free(&dir.join("alpha.jsonl"));
    jpmd_ckpt::load_checkpoint(dir.join("alpha.jck")).expect("sealed checkpoint verifies");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_request_line_gets_typed_error_and_close() {
    let dir = scratch_dir("line-cap");
    let daemon = Daemon::start(base_config(&dir)).expect("start daemon");
    let addr = daemon.addr();

    // A single 64 KiB line with no terminator: the daemon must refuse
    // it at the 8 KiB cap with a typed error instead of buffering
    // unboundedly, then close the connection.
    let mut client = Client::connect(addr);
    let flood = "A".repeat(64 * 1024);
    client.writer.write_all(flood.as_bytes()).expect("flood");
    client.writer.write_all(b"\n").expect("terminator");
    client.writer.flush().expect("flush");
    let mut reply = String::new();
    client.reader.read_line(&mut reply).expect("reply");
    assert_eq!(reply.trim_end(), "ERR line too long");
    // The daemon drops the connection with flood bytes still unread,
    // so the close surfaces as either a clean EOF or an RST.
    let mut rest = String::new();
    match client.reader.read_line(&mut rest) {
        Ok(n) => assert_eq!(
            n, 0,
            "connection must be closed after the cap, got {rest:?}"
        ),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected error kind after cap: {e}"
        ),
    }

    // The daemon itself is unharmed: a fresh connection works, and the
    // drop was counted.
    let mut fresh = Client::connect(addr);
    assert!(fresh.ask("PING").starts_with("OK"));
    let stats = fresh.ask("STATS");
    let dropped: u64 = stats
        .split_whitespace()
        .skip_while(|w| *w != "conn_dropped")
        .nth(1)
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| panic!("no conn_dropped in {stats}"));
    assert!(
        dropped >= 1,
        "oversized line not counted as a drop: {stats}"
    );
    assert!(fresh.ask("SHUTDOWN").starts_with("OK"));
    daemon.join().expect("join");
    let _ = std::fs::remove_dir_all(&dir);
}
