//! A compact binary codec for [`serde::Value`] trees.
//!
//! Checkpoints must round-trip **bit-exactly** — a resumed run replays
//! from restored floats — so the JSON text form is unusable (it has no
//! `NaN`/`Inf` literals and re-parsing can perturb the last bit). This
//! codec writes every scalar in its native width instead:
//!
//! | tag | value | encoding after the tag byte |
//! |---|---|---|
//! | 0 | `Null` | — |
//! | 1 | `Bool` | 1 byte, `0`/`1` |
//! | 2 | `U64` | 8 bytes LE |
//! | 3 | `I64` | 8 bytes LE |
//! | 4 | `F64` | 8 bytes LE of `f64::to_bits` |
//! | 5 | `Str` | u32 LE length + UTF-8 bytes |
//! | 6 | `Array` | u32 LE count + elements |
//! | 7 | `Object` | u32 LE count + (u32 LE key length, key, value)* |
//!
//! The decoder is total over arbitrary bytes: every malformed input —
//! unknown tag, short buffer, count exceeding the remaining bytes,
//! invalid UTF-8, nesting past [`MAX_DEPTH`], trailing garbage — is a
//! typed `Err(String)`, never a panic and never an unbounded allocation.

use serde::Value;

/// Decoder recursion limit: a hostile payload of nested array tags must
/// exhaust this budget, not the thread's stack.
const MAX_DEPTH: u32 = 128;

fn push_len(out: &mut Vec<u8>, len: usize) {
    let len = u32::try_from(len).expect("checkpoint value longer than u32::MAX bytes");
    out.extend_from_slice(&len.to_le_bytes());
}

fn encode_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::U64(n) => {
            out.push(2);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::I64(n) => {
            out.push(3);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(4);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(5);
            push_len(out, s.len());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(6);
            push_len(out, items.len());
            for item in items {
                encode_into(item, out);
            }
        }
        Value::Object(fields) => {
            out.push(7);
            push_len(out, fields.len());
            for (key, item) in fields {
                push_len(out, key.len());
                out.extend_from_slice(key.as_bytes());
                encode_into(item, out);
            }
        }
    }
}

/// Encodes a value tree into the binary form described in the module docs.
pub(crate) fn encode(value: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(value, &mut out);
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "{what} needs {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    /// A declared element count, rejected up front when even one byte per
    /// element would overrun the buffer — so a corrupt count can never
    /// drive an unbounded loop or allocation.
    fn count(&mut self, what: &str) -> Result<usize, String> {
        let count = self.u32(what)? as usize;
        if count > self.remaining() {
            return Err(format!(
                "{what} claims {count} elements with only {} bytes left",
                self.remaining()
            ));
        }
        Ok(count)
    }

    fn string(&mut self, what: &str) -> Result<String, String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("{what} is not UTF-8: {e}"))
    }
}

fn decode_value(c: &mut Cursor<'_>, depth: u32) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("value nesting exceeds the {MAX_DEPTH}-level limit"));
    }
    match c.u8("value tag")? {
        0 => Ok(Value::Null),
        1 => match c.u8("bool")? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            other => Err(format!("bool byte must be 0 or 1, got {other}")),
        },
        2 => Ok(Value::U64(c.u64("u64")?)),
        3 => Ok(Value::I64(c.u64("i64")? as i64)),
        4 => Ok(Value::F64(f64::from_bits(c.u64("f64")?))),
        5 => Ok(Value::Str(c.string("string")?)),
        6 => {
            let count = c.count("array")?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_value(c, depth + 1)?);
            }
            Ok(Value::Array(items))
        }
        7 => {
            let count = c.count("object")?;
            let mut fields = Vec::with_capacity(count);
            for _ in 0..count {
                let key = c.string("object key")?;
                fields.push((key, decode_value(c, depth + 1)?));
            }
            Ok(Value::Object(fields))
        }
        tag => Err(format!("unknown value tag {tag} at offset {}", c.pos - 1)),
    }
}

/// Decodes exactly one value tree from `buf`, requiring full consumption.
pub(crate) fn decode(buf: &[u8]) -> Result<Value, String> {
    let mut cursor = Cursor { buf, pos: 0 };
    let value = decode_value(&mut cursor, 0)?;
    if cursor.remaining() > 0 {
        return Err(format!(
            "{} trailing bytes after the value tree",
            cursor.remaining()
        ));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: Value) {
        let bytes = encode(&value);
        let back = decode(&bytes).expect("decodes");
        assert_eq!(format!("{value:?}"), format!("{back:?}"));
    }

    #[test]
    fn scalars_round_trip_bit_exactly() {
        roundtrip(Value::Null);
        roundtrip(Value::Bool(true));
        roundtrip(Value::U64(u64::MAX));
        roundtrip(Value::I64(i64::MIN));
        roundtrip(Value::Str(String::new()));
        roundtrip(Value::Str("héllo ✓".into()));
        // The whole reason this codec exists: non-finite and
        // signed-zero floats survive, which JSON text cannot promise.
        for x in [
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e-308,
        ] {
            let bytes = encode(&Value::F64(x));
            match decode(&bytes).expect("decodes") {
                Value::F64(back) => assert_eq!(back.to_bits(), x.to_bits()),
                other => panic!("decoded {other:?}"),
            }
        }
    }

    #[test]
    fn containers_round_trip() {
        roundtrip(Value::Array(vec![]));
        roundtrip(Value::Object(vec![]));
        roundtrip(Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::U64(1), Value::Null])),
            (
                "b".into(),
                Value::Object(vec![("nested".into(), Value::F64(2.5))]),
            ),
        ]));
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[99]).is_err(), "unknown tag");
        assert!(decode(&[2, 1, 2]).is_err(), "short u64");
        assert!(decode(&[1, 7]).is_err(), "bad bool byte");
        assert!(decode(&[5, 255, 255, 255, 255]).is_err(), "huge string");
        assert!(
            decode(&[6, 255, 255, 255, 255]).is_err(),
            "array count past the buffer"
        );
        assert!(decode(&[5, 2, 0, 0, 0, 0xff, 0xfe]).is_err(), "bad UTF-8");
        let mut trailing = encode(&Value::Null);
        trailing.push(0);
        assert!(decode(&trailing).is_err(), "trailing bytes");
    }

    #[test]
    fn hostile_nesting_hits_the_depth_limit() {
        // 10_000 nested single-element arrays around a null.
        let mut bytes = Vec::new();
        for _ in 0..10_000 {
            bytes.push(6);
            bytes.extend_from_slice(&1u32.to_le_bytes());
        }
        bytes.push(0);
        let err = decode(&bytes).expect_err("depth limit");
        assert!(err.contains("nesting"), "{err}");
    }
}
