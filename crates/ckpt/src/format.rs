//! The `.jck` on-disk format: a 64-byte CRC-guarded header followed by
//! one binary-encoded value tree (see [`crate::codec`]).
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"JPMDCKP1"
//!      8     2  format version (LE), currently 1
//!     10     8  payload length in bytes (LE); u64::MAX = unsealed poison
//!     18     4  CRC-32 of the payload (LE)
//!     22    38  reserved, zero
//!     60     4  CRC-32 of header bytes 0..60 (LE)
//!     64     —  payload (binary value tree)
//! ```
//!
//! **Write protocol** (crash-consistent): the file is written under a
//! temporary sibling name with a *poisoned* header (`payload_len =
//! u64::MAX`), the payload appended, the header rewritten sealed, the
//! file fsynced, atomically renamed over the destination, and the parent
//! directory fsynced ([`jpmd_store::sync_parent_dir`]). A crash at any
//! point leaves either the previous good checkpoint (rename not yet
//! durable) or a file that [`read_jck`] rejects as
//! [`CkptError::Torn`] — never a silently wrong resume point.
//!
//! **Read protocol**: magic, then version, then header CRC, then the
//! poison check, then payload length and CRC, in that order — so a
//! foreign file is named as foreign before any checksum complaint, and
//! every physical defect is a typed error.

use std::fs;
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

use jpmd_store::{crc32, SharedBackend};
use serde::Value;

use crate::codec;
use crate::error::CkptError;

/// The eight magic bytes opening every `.jck` file.
pub const MAGIC: [u8; 8] = *b"JPMDCKP1";
/// The format version this build reads and writes.
pub const VERSION: u16 = 1;
/// Fixed header size, bytes.
pub const HEADER_BYTES: usize = 64;
/// The `payload_len` a header carries while its file is still being
/// written; a surviving poison marks a writer that crashed mid-save.
const POISON_LEN: u64 = u64::MAX;

fn encode_header(payload_len: u64, payload_crc: u32) -> [u8; HEADER_BYTES] {
    let mut buf = [0u8; HEADER_BYTES];
    buf[0..8].copy_from_slice(&MAGIC);
    buf[8..10].copy_from_slice(&VERSION.to_le_bytes());
    buf[10..18].copy_from_slice(&payload_len.to_le_bytes());
    buf[18..22].copy_from_slice(&payload_crc.to_le_bytes());
    let crc = crc32(&buf[..HEADER_BYTES - 4]);
    buf[HEADER_BYTES - 4..].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// Serializes `root` into `path` with the crash-consistent write
/// protocol described in the module docs.
pub(crate) fn write_jck(path: &Path, root: &Value) -> Result<(), CkptError> {
    write_jck_on(&SharedBackend::real_fs(), path, root)
}

/// [`write_jck`] through an explicit storage backend (the fault-injection
/// seam). On **any** failure the temp sibling is deleted best-effort, so
/// a failed seal never leaves a stale `<name>.jck.tmp` behind — and never
/// a valid-looking `.jck`, since the destination is only ever touched by
/// the final atomic rename.
pub(crate) fn write_jck_on(
    backend: &SharedBackend,
    path: &Path,
    root: &Value,
) -> Result<(), CkptError> {
    let payload = codec::encode(root);
    let file_name = path
        .file_name()
        .ok_or_else(|| CkptError::Io(std::io::Error::other("checkpoint path has no file name")))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);

    let sealed = (|| -> Result<(), CkptError> {
        let mut file = backend.create(&tmp)?;
        file.write_all(&encode_header(POISON_LEN, 0))?;
        file.write_all(&payload)?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&encode_header(payload.len() as u64, crc32(&payload)))?;
        file.sync_all()?;
        drop(file);
        backend.rename(&tmp, path)?;
        backend.sync_parent_dir(path)?;
        Ok(())
    })();
    if sealed.is_err() {
        backend.remove_file(&tmp).ok();
    }
    sealed
}

/// Loads and validates `path`, returning the decoded payload tree.
pub(crate) fn read_jck(path: &Path) -> Result<Value, CkptError> {
    let data = fs::read(path)?;
    // Name a foreign file as foreign before complaining about its size.
    if data.len() >= 8 && data[0..8] != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&data[0..8]);
        return Err(CkptError::BadMagic { found });
    }
    if data.len() < HEADER_BYTES {
        return Err(CkptError::Torn {
            detail: format!(
                "file is {} bytes, shorter than the {HEADER_BYTES}-byte header",
                data.len()
            ),
        });
    }
    let header = &data[..HEADER_BYTES];
    let version = u16::from_le_bytes([header[8], header[9]]);
    if version != VERSION {
        return Err(CkptError::UnsupportedVersion { found: version });
    }
    let stored_header_crc = u32::from_le_bytes([header[60], header[61], header[62], header[63]]);
    if crc32(&header[..HEADER_BYTES - 4]) != stored_header_crc {
        return Err(CkptError::Torn {
            detail: "header checksum mismatch".into(),
        });
    }
    let payload_len = u64::from_le_bytes(header[10..18].try_into().expect("8-byte slice"));
    if payload_len == POISON_LEN {
        return Err(CkptError::Torn {
            detail: "unsealed header: the writer crashed before committing".into(),
        });
    }
    let payload_crc = u32::from_le_bytes(header[18..22].try_into().expect("4-byte slice"));
    let payload = &data[HEADER_BYTES..];
    if payload.len() as u64 != payload_len {
        return Err(CkptError::Torn {
            detail: format!(
                "payload truncated: header promises {payload_len} bytes, file carries {}",
                payload.len()
            ),
        });
    }
    if crc32(payload) != payload_crc {
        return Err(CkptError::Torn {
            detail: "payload checksum mismatch".into(),
        });
    }
    codec::decode(payload).map_err(CkptError::Decode)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("jpmd-ckpt-format-{tag}-{}.jck", std::process::id()))
    }

    fn sample() -> Value {
        Value::Object(vec![
            ("label".into(), Value::Str("run".into())),
            (
                "floats".into(),
                Value::Array(vec![Value::F64(f64::NAN), Value::F64(-0.0)]),
            ),
        ])
    }

    #[test]
    fn writes_seal_atomically_and_read_back() {
        let path = tmp_path("roundtrip");
        write_jck(&path, &sample()).expect("write");
        let back = read_jck(&path).expect("read");
        assert_eq!(format!("{back:?}"), format!("{:?}", sample()));
        // Overwriting in place goes through the same temp+rename publish.
        write_jck(&path, &Value::Null).expect("rewrite");
        assert_eq!(read_jck(&path).expect("reread"), Value::Null);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_and_future_files_are_named_before_checksums() {
        let path = tmp_path("foreign");
        fs::write(&path, b"JPMDTRC1this is a trace store, not a checkpoint").expect("write");
        match read_jck(&path) {
            Err(CkptError::BadMagic { found }) => assert_eq!(&found, b"JPMDTRC1"),
            other => panic!("expected BadMagic, got {other:?}"),
        }

        write_jck(&path, &sample()).expect("write");
        let mut bytes = fs::read(&path).expect("read");
        bytes[8..10].copy_from_slice(&7u16.to_le_bytes());
        // Re-seal the header CRC so only the version is wrong.
        let crc = crc32(&bytes[..HEADER_BYTES - 4]);
        bytes[HEADER_BYTES - 4..HEADER_BYTES].copy_from_slice(&crc.to_le_bytes());
        fs::write(&path, &bytes).expect("rewrite");
        match read_jck(&path) {
            Err(CkptError::UnsupportedVersion { found: 7 }) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn a_surviving_poison_header_reads_as_torn() {
        let path = tmp_path("poison");
        write_jck(&path, &sample()).expect("write");
        let mut bytes = fs::read(&path).expect("read");
        bytes[10..18].copy_from_slice(&u64::MAX.to_le_bytes());
        let crc = crc32(&bytes[..HEADER_BYTES - 4]);
        bytes[HEADER_BYTES - 4..HEADER_BYTES].copy_from_slice(&crc.to_le_bytes());
        fs::write(&path, &bytes).expect("rewrite");
        match read_jck(&path) {
            Err(CkptError::Torn { detail }) => assert!(detail.contains("unsealed"), "{detail}"),
            other => panic!("expected Torn, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn payload_corruption_is_torn() {
        let path = tmp_path("flip");
        write_jck(&path, &sample()).expect("write");
        let mut bytes = fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite");
        match read_jck(&path) {
            Err(CkptError::Torn { detail }) => assert!(detail.contains("checksum"), "{detail}"),
            other => panic!("expected Torn, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }
}
