//! Whole-fleet checkpoint manifest: one `.jck` that names every shard's
//! own checkpoint and telemetry WAL, published with the same atomic
//! write-temp-then-rename protocol as a single checkpoint.
//!
//! A fleet run (N engines, one disk/cache pair each — `jpmd-fleet`)
//! cannot put all shards in one [`SimCheckpoint`]: shards run on worker
//! threads and checkpoint at their own period boundaries. Instead each
//! shard keeps its own `.jck` + `.jsonl` pair (the proven single-engine
//! protocol, unchanged), and the **manifest** ties the fleet together:
//! run identity, the shard roster with per-shard file paths, and a
//! free-form `extra` payload for the driver (the fleet coordinator stores
//! its per-shard per-period allocation plan there, so a resumed
//! coordinated run replays the *same* plan without re-running the
//! bidding pass).
//!
//! Crash safety composes: the manifest is written before the shards
//! start (it is pure metadata — nothing in it changes as shards
//! progress), each shard checkpoint seals against its own WAL, and a
//! crash at any instant leaves either no manifest (nothing to resume) or
//! a manifest whose shard entries point at files that are themselves
//! either absent (shard restarts from scratch), torn (typed
//! [`CkptError::Torn`]), or good.

use std::path::Path;

use serde::{Deserialize, Serialize, Value};

use crate::error::CkptError;
use crate::format;

/// One shard's row in the fleet roster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardEntry {
    /// Shard id (the tag its telemetry records carry).
    pub shard: u32,
    /// Path of the shard's own `.jck` checkpoint file. Absent on disk
    /// until the shard's first checkpoint seals.
    pub checkpoint: String,
    /// Path of the shard's telemetry WAL, if the run streams telemetry.
    pub telemetry: Option<String>,
}

/// The fleet manifest: run identity plus the shard roster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetManifest {
    /// The recipe that produced the fleet run (free-form, like
    /// [`CkptMeta::kind`](crate::CkptMeta::kind)).
    pub kind: String,
    /// The fleet's primary seed (workload/partitioner).
    pub seed: u64,
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardEntry>,
    /// Driver-owned payload ([`Value::Null`] when unused): the fleet
    /// coordinator persists its allocation plan here so a resume replays
    /// identical decisions.
    pub extra: Value,
}

impl FleetManifest {
    /// An empty manifest for a run of the given kind and seed.
    pub fn new(kind: impl Into<String>, seed: u64) -> Self {
        FleetManifest {
            kind: kind.into(),
            seed,
            shards: Vec::new(),
            extra: Value::Null,
        }
    }

    /// Appends one shard entry.
    #[must_use]
    pub fn with_shard(
        mut self,
        shard: u32,
        checkpoint: impl Into<String>,
        telemetry: Option<String>,
    ) -> Self {
        self.shards.push(ShardEntry {
            shard,
            checkpoint: checkpoint.into(),
            telemetry,
        });
        self
    }

    /// Attaches the driver payload.
    #[must_use]
    pub fn with_extra(mut self, extra: Value) -> Self {
        self.extra = extra;
        self
    }
}

/// One tenant's row in a serving daemon's roster (`jpmd-serve`).
///
/// Unlike fleet shards, tenants are named, arrive and depart at runtime,
/// and carry the stream parameters (`pages`) a resume needs to rebuild
/// the tenant's policy stack identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantEntry {
    /// Tenant name (the wire-protocol identifier).
    pub name: String,
    /// Page-space size of the tenant's stream (checkpoint/resume must
    /// agree on it — it sizes the simulated hardware).
    pub pages: u64,
    /// Records the daemon had accepted for this tenant when the manifest
    /// sealed (informational; the checkpoint holds the binding cursor).
    pub records: u64,
    /// The tenant's feed ack watermark at seal: the highest contiguously
    /// applied client-assigned feed seq (0 before any sequenced feed).
    /// Restored on resume so replay after a daemon restart stays
    /// exactly-once. Defaults to 0 when absent (pre-seq manifests).
    #[serde(default)]
    pub acked: u64,
    /// Path of the tenant's own `.jck` checkpoint file.
    pub checkpoint: String,
    /// Path of the tenant's telemetry WAL, if the daemon streams
    /// telemetry.
    pub telemetry: Option<String>,
}

/// The serving daemon's shutdown manifest: which tenants were live, and
/// where each one's sealed checkpoint and WAL live. Written *after* every
/// tenant checkpoint seals (the reverse of the fleet manifest's
/// write-first protocol, because the roster isn't known until shutdown);
/// a crash mid-seal leaves either no manifest (cold start) or a manifest
/// whose entries all point at sealed files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantManifest {
    /// The daemon recipe (free-form, like
    /// [`CkptMeta::kind`](crate::CkptMeta::kind)).
    pub kind: String,
    /// The daemon's configuration seed, when one applies.
    pub seed: u64,
    /// One entry per live tenant, in name order.
    pub tenants: Vec<TenantEntry>,
    /// Driver-owned payload ([`Value::Null`] when unused).
    pub extra: Value,
}

impl TenantManifest {
    /// An empty manifest for a daemon of the given kind and seed.
    pub fn new(kind: impl Into<String>, seed: u64) -> Self {
        TenantManifest {
            kind: kind.into(),
            seed,
            tenants: Vec::new(),
            extra: Value::Null,
        }
    }
}

/// Publishes a tenant manifest with the crash-consistent `.jck` write
/// protocol.
///
/// # Errors
///
/// Propagates I/O failures as [`CkptError::Io`].
pub fn save_tenant_manifest(
    path: impl AsRef<Path>,
    manifest: &TenantManifest,
) -> Result<(), CkptError> {
    let root = Value::Object(vec![(
        "tenant_manifest".to_string(),
        Serialize::to_value(manifest),
    )]);
    format::write_jck(path.as_ref(), &root)
}

/// Loads and validates a tenant manifest.
///
/// # Errors
///
/// The same typed defects as [`load_manifest`]; an intact `.jck` that is
/// a fleet manifest or a checkpoint is [`CkptError::Decode`].
pub fn load_tenant_manifest(path: impl AsRef<Path>) -> Result<TenantManifest, CkptError> {
    let root = format::read_jck(path.as_ref())?;
    let manifest = root.get("tenant_manifest").ok_or_else(|| {
        CkptError::Decode(
            "top-level field 'tenant_manifest' missing (not a tenant manifest)".to_string(),
        )
    })?;
    <TenantManifest as Deserialize>::from_value(manifest)
        .map_err(|e| CkptError::Decode(format!("tenant_manifest: {e}")))
}

/// Publishes `manifest` to `path` with the crash-consistent `.jck` write
/// protocol (temp file, poisoned header until sealed, fsync, atomic
/// rename, parent-directory fsync).
///
/// # Errors
///
/// Propagates I/O failures as [`CkptError::Io`].
pub fn save_manifest(path: impl AsRef<Path>, manifest: &FleetManifest) -> Result<(), CkptError> {
    let root = Value::Object(vec![(
        "manifest".to_string(),
        Serialize::to_value(manifest),
    )]);
    format::write_jck(path.as_ref(), &root)
}

/// Loads and validates a fleet manifest.
///
/// # Errors
///
/// The same typed defects as
/// [`load_checkpoint`](crate::load_checkpoint): [`CkptError::BadMagic`],
/// [`CkptError::UnsupportedVersion`], [`CkptError::Torn`] for physical
/// damage, and [`CkptError::Decode`] for an intact `.jck` that is not a
/// manifest (e.g. a single-run checkpoint).
pub fn load_manifest(path: impl AsRef<Path>) -> Result<FleetManifest, CkptError> {
    let root = format::read_jck(path.as_ref())?;
    let manifest = root.get("manifest").ok_or_else(|| {
        CkptError::Decode("top-level field 'manifest' missing (not a fleet manifest)".to_string())
    })?;
    <FleetManifest as Deserialize>::from_value(manifest)
        .map_err(|e| CkptError::Decode(format!("manifest: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("jpmd-manifest-{}-{name}", std::process::id()))
    }

    fn sample() -> FleetManifest {
        FleetManifest::new("fleet-coordinated", 42)
            .with_shard(0, "/runs/shard0.jck", Some("/runs/shard0.jsonl".into()))
            .with_shard(1, "/runs/shard1.jck", None)
            .with_extra(Value::Array(vec![Value::U64(4), Value::U64(2)]))
    }

    #[test]
    fn manifest_round_trips_through_disk() {
        let path = temp_path("roundtrip.jck");
        let manifest = sample();
        save_manifest(&path, &manifest).unwrap();
        assert_eq!(load_manifest(&path).unwrap(), manifest);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn a_checkpoint_is_not_a_manifest() {
        // save_checkpoint writes {"meta", "checkpoint"}; loading it as a
        // manifest must be a typed decode error, not a panic.
        let path = temp_path("not-a-manifest.jck");
        let root = Value::Object(vec![("meta".to_string(), Value::Null)]);
        format::write_jck(&path, &root).unwrap();
        match load_manifest(&path) {
            Err(CkptError::Decode(_)) => {}
            other => panic!("expected Decode error, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_torn() {
        let path = temp_path("torn.jck");
        save_manifest(&path, &sample()).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        match load_manifest(&path) {
            Err(CkptError::Torn { .. }) => {}
            other => panic!("expected Torn error, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn tenant_manifest_round_trips_and_is_distinct() {
        let path = temp_path("tenants.jck");
        let mut manifest = TenantManifest::new("serve", 9);
        manifest.tenants.push(TenantEntry {
            name: "alpha".into(),
            pages: 4096,
            records: 120_000,
            acked: 120_000,
            checkpoint: "/runs/alpha.jck".into(),
            telemetry: Some("/runs/alpha.jsonl".into()),
        });
        manifest.tenants.push(TenantEntry {
            name: "beta".into(),
            pages: 2048,
            records: 7,
            acked: 0,
            checkpoint: "/runs/beta.jck".into(),
            telemetry: None,
        });
        save_tenant_manifest(&path, &manifest).unwrap();
        assert_eq!(load_tenant_manifest(&path).unwrap(), manifest);
        // A fleet manifest is not a tenant manifest, and vice versa.
        assert!(matches!(load_manifest(&path), Err(CkptError::Decode(_))));
        let fleet_path = temp_path("fleet-not-tenant.jck");
        save_manifest(&fleet_path, &sample()).unwrap();
        assert!(matches!(
            load_tenant_manifest(&fleet_path),
            Err(CkptError::Decode(_))
        ));
        fs::remove_file(&path).ok();
        fs::remove_file(&fleet_path).ok();
    }

    #[test]
    fn manifest_rejects_foreign_bytes() {
        let path = temp_path("foreign.jck");
        fs::write(&path, b"definitely not a jck file at all............").unwrap();
        assert!(matches!(
            load_manifest(&path),
            Err(CkptError::BadMagic { .. })
        ));
        fs::remove_file(&path).ok();
    }
}
