//! [`CkptError`]: one typed error per way a `.jck` file can be wrong.
//!
//! The split mirrors `jpmd_store::StoreError`: a foreign file is named as
//! such ([`CkptError::BadMagic`]) before any checksum work, a future
//! format is refused cleanly ([`CkptError::UnsupportedVersion`]), and
//! every physical corruption mode — short file, unsealed header, length
//! or checksum mismatch — is a [`CkptError::Torn`] with a human-readable
//! detail, never a panic.

use std::error::Error;
use std::fmt;
use std::io;

/// Why a checkpoint could not be saved or loaded.
#[derive(Debug)]
pub enum CkptError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The file does not start with the `.jck` magic — it is not a
    /// checkpoint at all.
    BadMagic {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// The file is a checkpoint, but from a format version this build
    /// does not understand.
    UnsupportedVersion {
        /// The version the header claims.
        found: u16,
    },
    /// The file is physically damaged: truncated, unsealed (the writer
    /// crashed before committing), or failing a checksum.
    Torn {
        /// What exactly did not add up.
        detail: String,
    },
    /// The payload is physically intact but does not decode into a
    /// checkpoint (foreign schema, tampered value tree).
    Decode(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::BadMagic { found } => write!(
                f,
                "not a jpmd checkpoint (magic {:02x?}, expected \"JPMDCKP1\")",
                found
            ),
            CkptError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint format version {found}")
            }
            CkptError::Torn { detail } => write!(f, "torn checkpoint: {detail}"),
            CkptError::Decode(detail) => write!(f, "undecodable checkpoint payload: {detail}"),
        }
    }
}

impl Error for CkptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}
