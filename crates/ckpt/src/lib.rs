//! # jpmd-ckpt — crash-safe checkpoint/resume for simulation runs
//!
//! Long replays (the multi-hour production traces of the ROADMAP north
//! star) must survive being killed. This crate persists the engine's
//! [`SimCheckpoint`] — source cursor, stats, observer and controller
//! images, hardware snapshot, telemetry sequence — into CRC-guarded
//! `.jck` files and rebuilds runs from them:
//!
//! * a binary value codec that round-trips floats **bit-exactly**,
//!   because a resumed run replays from restored state and must stay
//!   bit-identical to the uninterrupted run;
//! * an atomic write-temp-then-rename publish with a poisoned header
//!   until sealed and dual CRCs, so a crash leaves
//!   either the previous good checkpoint or a file that loads as a typed
//!   [`CkptError::Torn`] — never a silently wrong resume point;
//! * [`FileCheckpointer`], the glue between the engine's checkpoint
//!   callback and the file: it flushes the telemetry WAL *before*
//!   sealing the checkpoint that references its sequence number, so the
//!   `.jck` never points past the durable end of the `.jsonl`;
//! * the `ckpt_tool` binary: `inspect`, `verify`, and `resume` for the
//!   standard chaos recipe.
//!
//! Resume contract: rebuild the run from the **same** configuration and
//! an identical source, pass the loaded checkpoint to
//! [`jpmd_sim::run_simulation_full`] (or
//! [`jpmd_core::methods::run_method_checkpointed`] /
//! [`jpmd_faults::run_chaos_checkpointed`]), and reopen the telemetry
//! file with [`jpmd_obs::JsonlSink::resume`] at the checkpoint's
//! `telemetry_seq`. The completed report is then bit-identical to the
//! uninterrupted run's, and the telemetry stream is gap-free (the
//! integration tests assert both, for the always-on, power-down, joint,
//! and chaos stacks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod error;
mod format;
mod manifest;

use std::path::{Path, PathBuf};

use jpmd_obs::Telemetry;
use jpmd_sim::SimCheckpoint;
use jpmd_store::SharedBackend;
use serde::Value;

pub use error::CkptError;
pub use format::{HEADER_BYTES, MAGIC, VERSION};
pub use manifest::{
    load_manifest, load_tenant_manifest, save_manifest, save_tenant_manifest, FleetManifest,
    ShardEntry, TenantEntry, TenantManifest,
};

/// Run identity stored alongside the checkpoint, so a tool (or a
/// supervisor restarting a task) can rebuild the right run without
/// out-of-band knowledge.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CkptMeta {
    /// The recipe that produced the run. `"chaos-small"` is the recipe
    /// `ckpt_tool resume` knows how to rebuild
    /// ([`jpmd_faults::ChaosConfig::small_test`] over
    /// [`jpmd_faults::chaos_trace`]); other kinds are free-form and
    /// resumed programmatically.
    pub kind: String,
    /// The run's primary seed (the fault-plan seed for chaos runs).
    pub seed: u64,
    /// The workload/trace seed.
    pub trace_seed: u64,
    /// Path of the telemetry WAL this run appends to, if any — resume
    /// reopens it with [`jpmd_obs::JsonlSink::resume`].
    pub telemetry: Option<String>,
    /// The WAL/index position the checkpoint sealed against: stamped by
    /// [`FileCheckpointer::save`] *after* flushing telemetry, so the
    /// recorded offset is a durable prefix of the `.jsonl` and
    /// `index_entries` a valid prefix of its `.jx` sidecar. `None` for
    /// runs without a WAL-positioned sink, and when loading checkpoints
    /// written before the field existed (`#[serde(default)]`).
    #[serde(default)]
    pub wal_index: Option<jpmd_obs::WalIndexPos>,
}

impl CkptMeta {
    /// Metadata for a free-form run with no canonical rebuild recipe.
    pub fn new(kind: impl Into<String>) -> Self {
        CkptMeta {
            kind: kind.into(),
            seed: 0,
            trace_seed: 0,
            telemetry: None,
            wal_index: None,
        }
    }

    /// Metadata for the standard chaos smoke recipe
    /// ([`jpmd_faults::ChaosConfig::small_test`] with `seed`, over
    /// [`jpmd_faults::chaos_trace`] with `trace_seed`).
    pub fn chaos_small(seed: u64, trace_seed: u64) -> Self {
        CkptMeta {
            kind: "chaos-small".into(),
            seed,
            trace_seed,
            telemetry: None,
            wal_index: None,
        }
    }

    /// Attaches the telemetry WAL path.
    #[must_use]
    pub fn with_telemetry(mut self, path: impl Into<String>) -> Self {
        self.telemetry = Some(path.into());
        self
    }
}

/// Serializes `meta` + `ckpt` into `path` with the crash-consistent
/// `.jck` write protocol (temp file, poisoned header until sealed, fsync,
/// atomic rename, parent-directory fsync).
///
/// # Errors
///
/// Propagates I/O failures as [`CkptError::Io`].
pub fn save_checkpoint(
    path: impl AsRef<Path>,
    meta: &CkptMeta,
    ckpt: &SimCheckpoint,
) -> Result<(), CkptError> {
    save_checkpoint_on(&SharedBackend::real_fs(), path, meta, ckpt)
}

/// [`save_checkpoint`] through an explicit storage backend (the
/// fault-injection seam). The crash-consistency guarantees are the same
/// under injected faults: a failed seal deletes its temp sibling and
/// never touches the destination, so the previous good checkpoint (or
/// nothing) is what remains.
///
/// # Errors
///
/// Propagates I/O failures (injected or real) as [`CkptError::Io`].
pub fn save_checkpoint_on(
    backend: &SharedBackend,
    path: impl AsRef<Path>,
    meta: &CkptMeta,
    ckpt: &SimCheckpoint,
) -> Result<(), CkptError> {
    let root = Value::Object(vec![
        ("meta".into(), serde::Serialize::to_value(meta)),
        ("checkpoint".into(), serde::Serialize::to_value(ckpt)),
    ]);
    format::write_jck_on(backend, path.as_ref(), &root)
}

/// Loads and validates a `.jck` file.
///
/// # Errors
///
/// Every defect is typed: [`CkptError::BadMagic`] for a foreign file,
/// [`CkptError::UnsupportedVersion`] for a future format,
/// [`CkptError::Torn`] for any physical damage (truncation, unsealed
/// header, checksum mismatch), [`CkptError::Decode`] for an intact
/// payload that is not a checkpoint. Arbitrary bytes never panic.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<(CkptMeta, SimCheckpoint), CkptError> {
    let root = format::read_jck(path.as_ref())?;
    let fields = match &root {
        Value::Object(fields) => fields,
        other => {
            return Err(CkptError::Decode(format!(
                "top-level value is not an object (got {other:?})"
            )))
        }
    };
    let field = |name: &str| {
        fields
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, value)| value)
            .ok_or_else(|| CkptError::Decode(format!("missing top-level field '{name}'")))
    };
    let meta = <CkptMeta as serde::Deserialize>::from_value(field("meta")?)
        .map_err(|e| CkptError::Decode(format!("meta: {e}")))?;
    let ckpt = <SimCheckpoint as serde::Deserialize>::from_value(field("checkpoint")?)
        .map_err(|e| CkptError::Decode(format!("checkpoint: {e}")))?;
    Ok((meta, ckpt))
}

/// The glue between the engine's checkpoint callback and a `.jck` file:
/// flushes the run's telemetry WAL, then atomically publishes the
/// checkpoint. Ordering matters — the checkpoint stores `telemetry_seq`,
/// and a `.jck` referencing records that never reached the WAL would
/// resume with a gap. Flushing first makes the WAL durable at least up
/// to every sequence number the checkpoint can mention.
///
/// Wire it up as the `on_checkpoint` callback (it keeps the run going on
/// success and stops it on a save failure):
///
/// ```no_run
/// # use jpmd_ckpt::{CkptMeta, FileCheckpointer};
/// # use jpmd_obs::Telemetry;
/// let telemetry = Telemetry::disabled();
/// let mut saver = FileCheckpointer::new("run.jck", CkptMeta::new("custom"), telemetry.clone());
/// let mut on_checkpoint = |ckpt: jpmd_sim::SimCheckpoint| saver.save(&ckpt);
/// ```
pub struct FileCheckpointer {
    path: PathBuf,
    meta: CkptMeta,
    telemetry: Telemetry,
    backend: SharedBackend,
    retries: u32,
    retry_delay: std::time::Duration,
    saved: u64,
    retried: u64,
    error: Option<CkptError>,
}

/// Attempts [`FileCheckpointer::save`] makes per checkpoint (the first
/// try plus `SAVE_ATTEMPTS - 1` retries) before giving up.
pub const SAVE_ATTEMPTS: u32 = 3;

impl FileCheckpointer {
    /// A checkpointer publishing to `path` with the given run identity.
    pub fn new(path: impl Into<PathBuf>, meta: CkptMeta, telemetry: Telemetry) -> Self {
        FileCheckpointer {
            path: path.into(),
            meta,
            telemetry,
            backend: SharedBackend::real_fs(),
            retries: SAVE_ATTEMPTS - 1,
            retry_delay: std::time::Duration::from_millis(10),
            saved: 0,
            retried: 0,
            error: None,
        }
    }

    /// Routes every seal through an explicit storage backend (the
    /// fault-injection seam).
    #[must_use]
    pub fn with_backend(mut self, backend: SharedBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the retry budget: `attempts` total tries per save
    /// (minimum 1) separated by `delay`. The default is [`SAVE_ATTEMPTS`]
    /// tries 10 ms apart — enough to ride out a transient error without
    /// stalling the simulation behind a dead disk.
    #[must_use]
    pub fn with_retry(mut self, attempts: u32, delay: std::time::Duration) -> Self {
        self.retries = attempts.max(1) - 1;
        self.retry_delay = delay;
        self
    }

    /// Flushes telemetry, then publishes `ckpt`, retrying a failed seal
    /// up to the configured attempt budget (each failed attempt cleans up
    /// its own temp file; the destination is only touched by a successful
    /// atomic rename). Returns `true` to let the run continue; exhausting
    /// the budget returns `false` (stopping the run at a well-defined
    /// boundary beats running on without crash safety) and parks the last
    /// error for [`FileCheckpointer::take_error`].
    ///
    /// The published metadata carries the WAL/index position
    /// ([`jpmd_obs::Telemetry::wal_index`]) read **after** the flush, so
    /// every byte and index entry the checkpoint claims is durable.
    pub fn save(&mut self, ckpt: &SimCheckpoint) -> bool {
        self.telemetry.flush();
        self.meta.wal_index = self.telemetry.wal_index();
        let mut attempt = 0;
        loop {
            match save_checkpoint_on(&self.backend, &self.path, &self.meta, ckpt) {
                Ok(()) => {
                    self.saved += 1;
                    return true;
                }
                Err(e) if attempt < self.retries => {
                    attempt += 1;
                    self.retried += 1;
                    drop(e);
                    if !self.retry_delay.is_zero() {
                        std::thread::sleep(self.retry_delay);
                    }
                }
                Err(e) => {
                    self.error = Some(e);
                    return false;
                }
            }
        }
    }

    /// Checkpoints successfully published so far.
    pub fn saved(&self) -> u64 {
        self.saved
    }

    /// Seal attempts that failed and were retried (a health signal: a
    /// storage layer that needs retries is a storage layer to watch).
    pub fn retried(&self) -> u64 {
        self.retried
    }

    /// The save failure that stopped the run, if any.
    pub fn take_error(&mut self) -> Option<CkptError> {
        self.error.take()
    }
}
