//! `ckpt_tool` — inspect, verify, and resume `.jck` checkpoint files.
//!
//! Exit codes follow the workspace tool convention (`jpmd_obs::cli`):
//! `0` ok, `1` runtime failure (missing/corrupt file, failing run),
//! `2` usage error.

use std::process::ExitCode;

use jpmd_ckpt::load_checkpoint;
use jpmd_faults::{chaos_trace, run_chaos_checkpointed, ChaosConfig};
use jpmd_obs::cli::{self, CliError};
use jpmd_obs::{JsonlSink, Telemetry, WalPolicy};

const USAGE: &str = "\
usage: ckpt_tool <command> [args]
  inspect <file.jck>                    print run identity and progress
  verify  <file.jck>                    exit 0 iff the checkpoint loads cleanly
  resume  <file.jck> [telemetry.jsonl]  finish an interrupted 'chaos-small' run

resume rebuilds the run from the checkpoint's metadata (currently only the
'chaos-small' recipe), reopens the telemetry WAL at the checkpoint's
sequence number when a path is given (argument, else the recorded one),
and prints the completed run's summary.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    cli::exit_with(run(&args), USAGE)
}

fn run(args: &[String]) -> Result<(), CliError> {
    match cli::require(args, 1, "command")? {
        "inspect" => inspect(args),
        "verify" => verify(args),
        "resume" => resume(args),
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    }
}

fn inspect(args: &[String]) -> Result<(), CliError> {
    let path = cli::require(args, 2, "file.jck")?;
    let (meta, ckpt) = load_checkpoint(path)?;
    println!("label            {}", ckpt.label);
    println!("duration_s       {}", ckpt.duration);
    println!("kind             {}", meta.kind);
    println!("seed             {}", meta.seed);
    println!("trace_seed       {}", meta.trace_seed);
    println!(
        "telemetry        {}",
        meta.telemetry.as_deref().unwrap_or("-")
    );
    println!("telemetry_seq    {}", ckpt.telemetry_seq);
    match meta.wal_index {
        Some(pos) => {
            println!("wal_offset       {}", pos.offset);
            println!("wal_index_ents   {}", pos.index_entries);
        }
        None => println!("wal_offset       -"),
    }
    println!(
        "periods_done     {}",
        ckpt.engine.stats.counts.period_boundaries
    );
    println!("records_pulled   {}", ckpt.engine.stats.records_pulled);
    println!("sim_time_s       {}", ckpt.engine.last_time);
    println!("observer_images  {}", ckpt.engine.observers.len());
    Ok(())
}

fn verify(args: &[String]) -> Result<(), CliError> {
    let path = cli::require(args, 2, "file.jck")?;
    let (meta, ckpt) = load_checkpoint(path)?;
    println!(
        "ok: '{}' ({}) at period {}, telemetry seq {}",
        ckpt.label, meta.kind, ckpt.engine.stats.counts.period_boundaries, ckpt.telemetry_seq
    );
    Ok(())
}

fn resume(args: &[String]) -> Result<(), CliError> {
    let path = cli::require(args, 2, "file.jck")?;
    let (meta, ckpt) = load_checkpoint(path)?;
    if meta.kind != "chaos-small" {
        return Err(cli::runtime(format!(
            "resume knows the 'chaos-small' recipe; this checkpoint is '{}' — \
             rebuild that run programmatically and pass the checkpoint to its \
             *_checkpointed entry point",
            meta.kind
        )));
    }
    let chaos = ChaosConfig::small_test(meta.seed);
    let trace = chaos_trace(&chaos.scale, chaos.duration_secs, meta.trace_seed);
    let wal_path = args
        .get(3)
        .map(String::as_str)
        .or(meta.telemetry.as_deref());
    let telemetry = match wal_path {
        Some(p) => Telemetry::new(Box::new(JsonlSink::resume(
            p,
            ckpt.telemetry_seq,
            WalPolicy::wal(),
        )?)),
        None => Telemetry::disabled(),
    };
    let report = run_chaos_checkpointed(&chaos, trace.source(), &telemetry, Some(&ckpt), None)?
        .into_report()
        .expect("a resume without a checkpoint policy runs to completion");
    println!("label            {}", report.report.label);
    println!("energy_j         {:.3}", report.report.energy.total_j());
    println!("delayed_ratio    {:.6}", report.delayed_ratio());
    println!("guard_fallbacks  {}", report.guard.fallbacks);
    println!("guard_recoveries {}", report.guard.recoveries);
    println!("final_level      {:?}", report.final_level);
    println!("source_faults    {}", report.source_faults.total());
    println!("hw_faults        {}", report.hw_faults.total());
    println!("policy_faults    {}", report.injected_policy_faults);
    Ok(())
}
