//! Seal-under-fault tests: whatever injected storage fault interrupts a
//! checkpoint save, the destination only ever holds a previous good
//! checkpoint (or nothing), and no stale `.tmp` sibling survives. The
//! bounded retry in [`FileCheckpointer`] rides out transient windows.

use std::path::PathBuf;

use jpmd_ckpt::{load_checkpoint, save_checkpoint, save_checkpoint_on, CkptMeta, FileCheckpointer};
use jpmd_core::methods::{self, run_method_checkpointed};
use jpmd_core::SimScale;
use jpmd_faults::{FaultyStorage, IoFaultPlan, SharedBackend, StorageFaults};
use jpmd_obs::Telemetry;
use jpmd_sim::{CheckpointOptions, CheckpointPolicy, SimCheckpoint, SimOutcome};
use jpmd_trace::{WorkloadBuilder, MIB};

/// Captures one real checkpoint from a short always-on run.
fn capture_checkpoint() -> SimCheckpoint {
    let scale = SimScale::small_test();
    let trace = WorkloadBuilder::new()
        .data_set_bytes(64 * MIB)
        .rate_bytes_per_sec(2 * MIB)
        .page_bytes(scale.page_bytes)
        .duration_secs(600.0)
        .seed(7)
        .build()
        .expect("workload builds");
    let spec = methods::always_on(&scale);
    let mut captured = None;
    let mut on_checkpoint = |ckpt: SimCheckpoint| {
        captured = Some(ckpt);
        false
    };
    let outcome = run_method_checkpointed(
        &spec,
        &scale,
        trace.source(),
        60.0,
        600.0,
        120.0,
        &Telemetry::disabled(),
        None,
        Some(CheckpointOptions {
            policy: CheckpointPolicy::every(1),
            on_checkpoint: &mut on_checkpoint,
        }),
    )
    .expect("capture run");
    assert_eq!(outcome, SimOutcome::Interrupted);
    captured.expect("one checkpoint captured")
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "jpmd-ckpt-faulted-{tag}-{}.jck",
        std::process::id()
    ))
}

fn tmp_sibling(path: &std::path::Path) -> PathBuf {
    path.with_file_name(format!(
        "{}.tmp",
        path.file_name().unwrap().to_string_lossy()
    ))
}

#[test]
fn failed_rename_leaves_no_destination_and_no_temp() {
    let path = scratch("rename");
    let tmp = tmp_sibling(&path);
    let ckpt = capture_checkpoint();
    let plan = IoFaultPlan {
        seed: 3,
        faults: StorageFaults {
            rename_fail_prob: 1.0,
            ..StorageFaults::default()
        },
        from_op: 0,
        until_op: u64::MAX,
    };
    let backend = SharedBackend::from(FaultyStorage::new(plan));
    let result = save_checkpoint_on(&backend, &path, &CkptMeta::chaos_small(1, 42), &ckpt);
    assert!(result.is_err(), "the crashed rename surfaces as an error");
    assert!(!path.exists(), "the destination was never touched");
    assert!(!tmp.exists(), "the temp sibling was cleaned up");
}

#[test]
fn failed_seal_preserves_the_previous_good_checkpoint() {
    let path = scratch("previous");
    let tmp = tmp_sibling(&path);
    let ckpt = capture_checkpoint();
    save_checkpoint(&path, &CkptMeta::chaos_small(1, 42), &ckpt).expect("seed save");

    // Every faultable op fails: the re-save dies on its first write.
    let backend = SharedBackend::from(FaultyStorage::new(IoFaultPlan::outage(3, 0, u64::MAX)));
    let result = save_checkpoint_on(&backend, &path, &CkptMeta::chaos_small(2, 43), &ckpt);
    assert!(result.is_err());
    assert!(!tmp.exists(), "the temp sibling was cleaned up");
    let (meta, _) = load_checkpoint(&path).expect("previous checkpoint still loads");
    assert_eq!(meta.seed, 1, "the destination still holds the old seal");
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpointer_retry_rides_out_a_transient_fault_window() {
    let path = scratch("retry");
    let ckpt = capture_checkpoint();
    // The first seal attempt dies inside the outage window; the storage
    // heals before the retry.
    let storage = FaultyStorage::new(IoFaultPlan::outage(3, 0, 1));
    let monitor = storage.monitor();
    let mut saver =
        FileCheckpointer::new(&path, CkptMeta::chaos_small(1, 42), Telemetry::disabled())
            .with_backend(SharedBackend::from(storage))
            .with_retry(3, std::time::Duration::ZERO);
    assert!(saver.save(&ckpt), "the retry succeeds");
    assert_eq!(saver.saved(), 1);
    assert_eq!(saver.retried(), 1, "exactly one attempt was retried");
    assert!(monitor.injected().total() >= 1);
    let (meta, _) = load_checkpoint(&path).expect("published checkpoint loads");
    assert_eq!(meta.seed, 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpointer_exhausting_its_budget_stops_the_run_with_a_typed_error() {
    let path = scratch("budget");
    let ckpt = capture_checkpoint();
    let mut saver =
        FileCheckpointer::new(&path, CkptMeta::chaos_small(1, 42), Telemetry::disabled())
            .with_backend(SharedBackend::from(FaultyStorage::new(
                IoFaultPlan::outage(3, 0, u64::MAX),
            )))
            .with_retry(3, std::time::Duration::ZERO);
    assert!(!saver.save(&ckpt), "a dead disk stops the run");
    assert_eq!(saver.saved(), 0);
    assert_eq!(saver.retried(), 2, "both retries were spent");
    assert!(
        saver.take_error().is_some(),
        "the failure is typed and kept"
    );
    assert!(!path.exists());
    assert!(
        !tmp_sibling(&path).exists(),
        "no stale temp after giving up"
    );
}
