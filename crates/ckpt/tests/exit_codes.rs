//! `ckpt_tool` honors the workspace exit-code convention: `0` ok, `1`
//! runtime failure, `2` bad invocation — same contract as `trace_tool`
//! and `obs_tool`, tested the same way (spawning the real binary).

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

use jpmd_ckpt::{save_checkpoint, CkptMeta};
use jpmd_core::methods::{self, run_method_checkpointed};
use jpmd_core::SimScale;
use jpmd_obs::Telemetry;
use jpmd_sim::{CheckpointOptions, CheckpointPolicy, SimCheckpoint, SimOutcome};
use jpmd_trace::{WorkloadBuilder, MIB};

fn tool(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ckpt_tool"))
        .args(args)
        .output()
        .expect("spawn ckpt_tool")
}

fn code(output: &Output) -> i32 {
    output.status.code().expect("exit code")
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("jpmd-ckpt-exit-{tag}-{}.jck", std::process::id()))
}

/// A real checkpoint file with a non-resumable (free-form) recipe kind.
fn good_file(tag: &str) -> PathBuf {
    let scale = SimScale::small_test();
    let trace = WorkloadBuilder::new()
        .data_set_bytes(64 * MIB)
        .rate_bytes_per_sec(2 * MIB)
        .page_bytes(scale.page_bytes)
        .duration_secs(600.0)
        .seed(7)
        .build()
        .expect("workload builds");
    let spec = methods::always_on(&scale);
    let mut captured = None;
    let mut on_checkpoint = |ckpt: SimCheckpoint| {
        captured = Some(ckpt);
        false
    };
    let outcome = run_method_checkpointed(
        &spec,
        &scale,
        trace.source(),
        60.0,
        600.0,
        120.0,
        &Telemetry::disabled(),
        None,
        Some(CheckpointOptions {
            policy: CheckpointPolicy::every(1),
            on_checkpoint: &mut on_checkpoint,
        }),
    )
    .expect("capture run");
    assert_eq!(outcome, SimOutcome::Interrupted);
    let path = scratch(tag);
    save_checkpoint(
        &path,
        &CkptMeta::new("method"),
        &captured.expect("checkpoint"),
    )
    .expect("save checkpoint");
    path
}

#[test]
fn bad_invocations_exit_2_with_usage() {
    for args in [&[][..], &["frobnicate"][..], &["inspect"][..]] {
        let out = tool(args);
        assert_eq!(code(&out), 2, "args {args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "args {args:?}: {stderr}");
    }
}

#[test]
fn runtime_failures_exit_1() {
    let missing = tool(&["verify", "/nonexistent/run.jck"]);
    assert_eq!(code(&missing), 1);
    assert!(String::from_utf8_lossy(&missing.stderr).contains("error:"));

    let torn_path = scratch("torn");
    fs::write(&torn_path, b"JPMDCKP1 torn far too short").expect("write torn file");
    let torn = tool(&["verify", torn_path.to_str().unwrap()]);
    assert_eq!(code(&torn), 1);
    assert!(String::from_utf8_lossy(&torn.stderr).contains("torn"));
    fs::remove_file(&torn_path).ok();
}

#[test]
fn verify_inspect_and_refused_resume_on_a_real_file() {
    let path = good_file("good");
    let path_str = path.to_str().unwrap();

    let verify = tool(&["verify", path_str]);
    assert_eq!(code(&verify), 0);
    assert!(String::from_utf8_lossy(&verify.stdout).starts_with("ok:"));

    let inspect = tool(&["inspect", path_str]);
    assert_eq!(code(&inspect), 0);
    let stdout = String::from_utf8_lossy(&inspect.stdout);
    assert!(stdout.contains("label"), "{stdout}");
    assert!(stdout.contains("records_pulled"), "{stdout}");

    // The free-form 'method' kind has no rebuild recipe: a runtime
    // error (1), not a usage error.
    let resume = tool(&["resume", path_str]);
    assert_eq!(code(&resume), 1);
    assert!(String::from_utf8_lossy(&resume.stderr).contains("chaos-small"));
    fs::remove_file(&path).ok();
}
