//! Crash-window property tests: whatever prefix of a checkpoint survives
//! a torn write, and whatever single byte rots afterwards, loading is a
//! typed error — never a panic, and never a silently wrong resume point.
//! A stale temp file from a crashed save never shadows the good file.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use jpmd_ckpt::{load_checkpoint, save_checkpoint, CkptError, CkptMeta};
use jpmd_core::methods::{self, run_method_checkpointed};
use jpmd_core::SimScale;
use jpmd_obs::Telemetry;
use jpmd_sim::{CheckpointOptions, CheckpointPolicy, SimCheckpoint, SimOutcome};
use jpmd_trace::{WorkloadBuilder, MIB};
use proptest::prelude::*;

/// Captures one real checkpoint from a short always-on run.
fn capture_checkpoint() -> SimCheckpoint {
    let scale = SimScale::small_test();
    let trace = WorkloadBuilder::new()
        .data_set_bytes(64 * MIB)
        .rate_bytes_per_sec(2 * MIB)
        .page_bytes(scale.page_bytes)
        .duration_secs(600.0)
        .seed(7)
        .build()
        .expect("workload builds");
    let spec = methods::always_on(&scale);
    let mut captured = None;
    let mut on_checkpoint = |ckpt: SimCheckpoint| {
        captured = Some(ckpt);
        false
    };
    let outcome = run_method_checkpointed(
        &spec,
        &scale,
        trace.source(),
        60.0,
        600.0,
        120.0,
        &Telemetry::disabled(),
        None,
        Some(CheckpointOptions {
            policy: CheckpointPolicy::every(1),
            on_checkpoint: &mut on_checkpoint,
        }),
    )
    .expect("capture run");
    assert_eq!(outcome, SimOutcome::Interrupted);
    captured.expect("one checkpoint captured")
}

/// The bytes of one good `.jck` file, built once and shared by every
/// property case.
fn good_bytes() -> &'static [u8] {
    static GOOD: OnceLock<Vec<u8>> = OnceLock::new();
    GOOD.get_or_init(|| {
        let path = scratch("seed");
        save_checkpoint(&path, &CkptMeta::chaos_small(1, 42), &capture_checkpoint())
            .expect("save seed checkpoint");
        let bytes = fs::read(&path).expect("read seed checkpoint");
        fs::remove_file(&path).ok();
        bytes
    })
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("jpmd-ckpt-torn-{tag}-{}.jck", std::process::id()))
}

fn load_bytes(tag: &str, bytes: &[u8]) -> Result<(), CkptError> {
    let path = scratch(tag);
    fs::write(&path, bytes).expect("write mutated checkpoint");
    let result = load_checkpoint(&path).map(|_| ());
    fs::remove_file(&path).ok();
    result
}

proptest! {
    // A write torn at *any* byte offset loads as CkptError::Torn.
    #[test]
    fn truncation_at_any_offset_is_torn(cut_seed in any::<u64>()) {
        let bytes = good_bytes();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        match load_bytes("truncate", &bytes[..cut]) {
            Err(CkptError::Torn { .. }) => {}
            other => prop_assert!(false, "cut at {cut}: expected Torn, got {other:?}"),
        }
    }

    // Any single rotten byte is detected (magic, version, CRCs, payload —
    // somebody always notices).
    #[test]
    fn single_byte_rot_is_detected(offset_seed in any::<u64>(), xor in 1u8..=255) {
        let mut bytes = good_bytes().to_vec();
        let offset = (offset_seed % bytes.len() as u64) as usize;
        bytes[offset] ^= xor;
        let result = load_bytes("rot", &bytes);
        prop_assert!(
            result.is_err(),
            "flip at {offset} (xor {xor:#04x}) must not load silently"
        );
    }
}

#[test]
fn a_stale_temp_file_never_shadows_the_good_checkpoint() {
    let path = scratch("stale");
    let ckpt = capture_checkpoint();
    save_checkpoint(&path, &CkptMeta::chaos_small(1, 42), &ckpt).expect("save");

    // A crashed later save leaves a torn sibling behind; the published
    // file still loads, the sibling is typed garbage.
    let tmp = path.with_file_name(format!(
        "{}.tmp",
        Path::new(&path).file_name().unwrap().to_string_lossy()
    ));
    fs::write(&tmp, &good_bytes()[..40]).expect("write stale tmp");
    let (meta, loaded) = load_checkpoint(&path).expect("good file still loads");
    assert_eq!(meta, CkptMeta::chaos_small(1, 42));
    assert_eq!(loaded.telemetry_seq, ckpt.telemetry_seq);
    assert!(
        load_checkpoint(&tmp).is_err(),
        "the torn sibling is rejected"
    );

    // The next successful save sweeps the same temp name and republishes.
    save_checkpoint(&path, &CkptMeta::chaos_small(2, 43), &ckpt).expect("resave");
    let (meta, _) = load_checkpoint(&path).expect("republished file loads");
    assert_eq!(meta.seed, 2);
    fs::remove_file(&path).ok();
    fs::remove_file(&tmp).ok();
}
