//! End-to-end crash/resume over the full chaos stack *through the disk*:
//! the interrupted run leaves a `.jck` and a telemetry WAL behind, and
//! resuming from those files alone reproduces the uninterrupted run's
//! [`ChaosReport`] and telemetry stream exactly. This is the same path
//! the CI crash-resume smoke and `ckpt_tool resume` take.

use std::fs;
use std::path::Path;

use jpmd_ckpt::{load_checkpoint, CkptMeta, FileCheckpointer};
use jpmd_faults::{chaos_trace, run_chaos_checkpointed, ChaosConfig, ChaosOutcome};
use jpmd_obs::{JsonlSink, ObsRecord, Telemetry, WalPolicy};
use jpmd_sim::{CheckpointOptions, CheckpointPolicy, SimCheckpoint};

fn normalized(path: &Path) -> Vec<String> {
    let text = fs::read_to_string(path).expect("read telemetry file");
    text.lines()
        .enumerate()
        .map(|(i, line)| {
            let record = ObsRecord::from_line(line).expect("telemetry line parses");
            assert_eq!(record.seq, i as u64, "telemetry seq gap at line {i}");
            record.normalized_line()
        })
        .collect()
}

#[test]
fn chaos_run_resumes_from_jck_and_wal_files() {
    let chaos = ChaosConfig::small_test(1);
    let dir = std::env::temp_dir().join(format!("jpmd-ckpt-chaos-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create test dir");
    let baseline_wal = dir.join("baseline.jsonl");
    let run_wal = dir.join("run.jsonl");
    let jck = dir.join("run.jck");

    let baseline = {
        let telemetry = Telemetry::new(Box::new(
            JsonlSink::create_with(&baseline_wal, WalPolicy::wal()).expect("baseline sink"),
        ));
        let trace = chaos_trace(&chaos.scale, chaos.duration_secs, 42);
        run_chaos_checkpointed(&chaos, trace.source(), &telemetry, None, None)
            .expect("baseline chaos run")
            .into_report()
            .expect("baseline completes")
    };
    // The run must be worth resuming: faults injected at every seam.
    assert!(baseline.guard.fallbacks >= 1);
    assert!(baseline.source_faults.total() > 0);
    assert!(baseline.hw_faults.total() > 0);

    {
        let telemetry = Telemetry::new(Box::new(
            JsonlSink::create_with(&run_wal, WalPolicy::wal()).expect("run sink"),
        ));
        let meta =
            CkptMeta::chaos_small(1, 42).with_telemetry(run_wal.to_string_lossy().into_owned());
        let mut saver = FileCheckpointer::new(&jck, meta, telemetry.clone());
        let mut on_checkpoint = |ckpt: SimCheckpoint| saver.save(&ckpt) && saver.saved() < 5;
        let trace = chaos_trace(&chaos.scale, chaos.duration_secs, 42);
        let outcome = run_chaos_checkpointed(
            &chaos,
            trace.source(),
            &telemetry,
            None,
            Some(CheckpointOptions {
                policy: CheckpointPolicy::every(1),
                on_checkpoint: &mut on_checkpoint,
            }),
        )
        .expect("interrupted chaos run");
        assert_eq!(outcome, ChaosOutcome::Interrupted);
        assert!(saver.take_error().is_none());
    }

    let (meta, ckpt) = load_checkpoint(&jck).expect("checkpoint loads");
    assert_eq!(meta.kind, "chaos-small");
    assert_eq!(meta.seed, 1);
    assert_eq!(meta.trace_seed, 42);
    // The checkpoint seals against a durable WAL prefix: the stamped
    // offset lands on a line boundary and the prefix ends at exactly the
    // record before the checkpoint's telemetry sequence.
    let pos = meta.wal_index.expect("checkpoint stamps the WAL position");
    let wal_bytes = fs::read(&run_wal).expect("read run WAL");
    assert!(pos.offset > 0 && pos.offset as usize <= wal_bytes.len());
    let prefix = std::str::from_utf8(&wal_bytes[..pos.offset as usize]).expect("utf8 prefix");
    assert!(prefix.ends_with('\n'), "sealed offset is a line boundary");
    let last = ObsRecord::from_line(prefix.lines().last().expect("non-empty prefix"))
        .expect("sealed prefix parses");
    assert_eq!(last.seq, ckpt.telemetry_seq - 1);
    let resumed = {
        let telemetry = Telemetry::new(Box::new(
            JsonlSink::resume(&run_wal, ckpt.telemetry_seq, WalPolicy::wal()).expect("WAL reopens"),
        ));
        let trace = chaos_trace(&chaos.scale, chaos.duration_secs, meta.trace_seed);
        run_chaos_checkpointed(&chaos, trace.source(), &telemetry, Some(&ckpt), None)
            .expect("resumed chaos run")
            .into_report()
            .expect("resumed run completes")
    };

    assert_eq!(baseline, resumed, "resumed chaos report must be identical");
    assert_eq!(normalized(&baseline_wal), normalized(&run_wal));
    fs::remove_dir_all(&dir).ok();
}
