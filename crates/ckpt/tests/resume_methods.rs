//! The acceptance gate for `.jck` resume: for each of the paper's method
//! families — always-on, power-down, joint — an interrupted run resumed
//! *through a checkpoint file on disk* and a reopened telemetry WAL
//! produces a [`RunReport`] bit-identical to the uninterrupted run's and
//! a byte-identical normalized telemetry stream with gap-free sequence
//! numbers.

use std::fs;
use std::path::{Path, PathBuf};

use jpmd_ckpt::{load_checkpoint, CkptMeta, FileCheckpointer};
use jpmd_core::methods::{self, run_method_checkpointed};
use jpmd_core::{DiskPolicyKind, MethodSpec, SimScale};
use jpmd_obs::{JsonlSink, ObsRecord, Telemetry, WalPolicy};
use jpmd_sim::{CheckpointOptions, CheckpointPolicy, SimCheckpoint, SimOutcome};
use jpmd_trace::{Trace, WorkloadBuilder, GIB, MIB};

const WARMUP: f64 = 600.0;
const DURATION: f64 = 3600.0;
const PERIOD: f64 = 300.0;

fn workload(scale: &SimScale) -> Trace {
    WorkloadBuilder::new()
        .data_set_bytes(GIB / 2)
        .rate_bytes_per_sec(4 * MIB)
        .page_bytes(scale.page_bytes)
        .duration_secs(DURATION)
        .seed(42)
        .build()
        .expect("workload builds")
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jpmd-ckpt-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// Parses a telemetry JSONL file, asserts its sequence numbers are
/// gap-free from zero, and returns the normalized (wall-clock-free)
/// lines.
fn normalized(path: &Path) -> Vec<String> {
    let text = fs::read_to_string(path).expect("read telemetry file");
    text.lines()
        .enumerate()
        .map(|(i, line)| {
            let record = ObsRecord::from_line(line).expect("telemetry line parses");
            assert_eq!(record.seq, i as u64, "telemetry seq gap at line {i}");
            record.normalized_line()
        })
        .collect()
}

fn assert_method_resumes(spec: &MethodSpec, tag: &str, stop_after: u64) {
    let scale = SimScale::small_test();
    let trace = workload(&scale);
    let dir = test_dir(tag);
    let baseline_wal = dir.join("baseline.jsonl");
    let run_wal = dir.join("run.jsonl");
    let jck = dir.join("run.jck");

    let baseline = {
        let telemetry = Telemetry::new(Box::new(
            JsonlSink::create_with(&baseline_wal, WalPolicy::wal()).expect("baseline sink"),
        ));
        run_method_checkpointed(
            spec,
            &scale,
            trace.source(),
            WARMUP,
            DURATION,
            PERIOD,
            &telemetry,
            None,
            None,
        )
        .expect("baseline run")
        .into_report()
        .expect("baseline completes")
    };

    // Interrupted run: checkpoint every period into the .jck, stop after
    // `stop_after` checkpoints — the moral equivalent of being killed.
    {
        let telemetry = Telemetry::new(Box::new(
            JsonlSink::create_with(&run_wal, WalPolicy::wal()).expect("run sink"),
        ));
        let meta = CkptMeta::new("method").with_telemetry(run_wal.to_string_lossy().into_owned());
        let mut saver = FileCheckpointer::new(&jck, meta, telemetry.clone());
        let mut on_checkpoint =
            |ckpt: SimCheckpoint| saver.save(&ckpt) && saver.saved() < stop_after;
        let outcome = run_method_checkpointed(
            spec,
            &scale,
            trace.source(),
            WARMUP,
            DURATION,
            PERIOD,
            &telemetry,
            None,
            Some(CheckpointOptions {
                policy: CheckpointPolicy::every(1),
                on_checkpoint: &mut on_checkpoint,
            }),
        )
        .expect("interrupted run");
        assert_eq!(outcome, SimOutcome::Interrupted);
        assert!(saver.take_error().is_none(), "checkpoint saves succeed");
        assert_eq!(saver.saved(), stop_after);
    } // drops the run's sink before the resume reopens the WAL

    // Resume strictly from what the disk remembers.
    let (meta, ckpt) = load_checkpoint(&jck).expect("checkpoint loads");
    assert_eq!(meta.kind, "method");
    let resumed = {
        let telemetry = Telemetry::new(Box::new(
            JsonlSink::resume(&run_wal, ckpt.telemetry_seq, WalPolicy::wal()).expect("WAL reopens"),
        ));
        run_method_checkpointed(
            spec,
            &scale,
            trace.source(),
            WARMUP,
            DURATION,
            PERIOD,
            &telemetry,
            Some(&ckpt),
            None,
        )
        .expect("resumed run")
        .into_report()
        .expect("resumed run completes")
    };

    assert_eq!(baseline, resumed, "resumed report must be bit-identical");
    assert_eq!(
        normalized(&baseline_wal),
        normalized(&run_wal),
        "stitched telemetry must match the uninterrupted stream"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn always_on_resumes_bit_identically() {
    let scale = SimScale::small_test();
    assert_method_resumes(&methods::always_on(&scale), "always-on", 3);
}

#[test]
fn power_down_resumes_bit_identically() {
    let scale = SimScale::small_test();
    assert_method_resumes(
        &methods::power_down(&scale, DiskPolicyKind::TwoCompetitive),
        "power-down",
        4,
    );
}

#[test]
fn joint_resumes_bit_identically() {
    let scale = SimScale::small_test();
    assert_method_resumes(&methods::joint(&scale), "joint", 3);
}
