//! The storage seam every durable write path goes through.
//!
//! [`StorageBackend`] abstracts the handful of filesystem operations the
//! durability stack performs — create/open, rename, remove, parent-dir
//! sync — and [`StorageFile`] abstracts the per-handle operations
//! (read/write/seek plus `sync_all`/`sync_data`/`set_len`). The default
//! implementation, [`RealFs`], forwards every call to `std::fs` and is
//! proven bit-identical to direct filesystem use by the `backend_noop`
//! identity tests (the same contract `jpmd-faults` pins for its noop
//! fault plans).
//!
//! The point of the seam is *fault injection*: `jpmd-faults` wraps an
//! inner backend in a `FaultyStorage` that deterministically injects
//! ENOSPC, EIO, short writes, failed fsyncs, and crashed renames into
//! the write-class operations, so the journal, WAL sinks, and
//! checkpoint seal protocol can be tortured without root, loop devices,
//! or real disk failures. Read-class operations are never faulted —
//! recovery code must be able to *see* what survived.
//!
//! Everything in `jpmd-store` that writes durably takes an optional
//! backend via a `*_on` constructor; the plain constructors delegate
//! with [`RealFs`], so existing callers compile unchanged and pay
//! nothing but a vtable indirection.

use std::fmt::Debug;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::Path;
use std::sync::Arc;

/// An open file handle behind the storage seam.
///
/// The supertraits carry the data plane ([`Read`]/[`Write`]/[`Seek`]);
/// the inherent methods carry the durability plane, which is where
/// fault injection concentrates. `Send` and `Debug` are required so
/// handles can live inside the existing `Send + Debug` store types.
pub trait StorageFile: Read + Write + Seek + Send + Debug {
    /// Flushes data *and* metadata to stable storage (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;

    /// Flushes data to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;

    /// Truncates or extends the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;

    /// Current file length in bytes.
    fn len(&mut self) -> io::Result<u64>;

    /// Whether the file is empty.
    fn is_empty(&mut self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

impl StorageFile for File {
    fn sync_all(&mut self) -> io::Result<()> {
        File::sync_all(self)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        File::set_len(self, len)
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.metadata()?.len())
    }
}

/// The filesystem operations the durability stack performs.
///
/// Implementations must be usable from multiple threads (the serve
/// daemon shares one backend across tenant workers).
pub trait StorageBackend: Send + Sync + Debug {
    /// Creates (truncating) a file open for read + write.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;

    /// Opens an existing file for read + write.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;

    /// Opens an existing file for appending (+ read).
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;

    /// Renames `from` to `to` (the atomic-publish step).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file, propagating errors (callers decide tolerance).
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;

    /// Fsyncs the directory containing `path` (see
    /// [`sync_parent_dir`](crate::sync_parent_dir)).
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()>;
}

/// The default backend: plain `std::fs`, nothing injected.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl StorageBackend for RealFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(file))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Box::new(file))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new().read(true).append(true).open(path)?;
        Ok(Box::new(file))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        crate::sync_parent_dir(path)
    }
}

/// A cloneable, shareable handle to a [`StorageBackend`].
///
/// This is what configuration structs carry: it is `Clone + Debug +
/// Default` (defaulting to [`RealFs`]) so it composes with derived
/// `Clone`/`Debug` on the structs that hold it.
#[derive(Clone, Debug)]
pub struct SharedBackend(Arc<dyn StorageBackend>);

impl SharedBackend {
    /// Wraps a backend.
    pub fn new(backend: Arc<dyn StorageBackend>) -> Self {
        SharedBackend(backend)
    }

    /// The plain-filesystem backend.
    pub fn real_fs() -> Self {
        SharedBackend(Arc::new(RealFs))
    }
}

impl Default for SharedBackend {
    fn default() -> Self {
        SharedBackend::real_fs()
    }
}

impl std::ops::Deref for SharedBackend {
    type Target = dyn StorageBackend;

    fn deref(&self) -> &Self::Target {
        self.0.as_ref()
    }
}

impl<B: StorageBackend + 'static> From<B> for SharedBackend {
    fn from(backend: B) -> Self {
        SharedBackend(Arc::new(backend))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_fs_round_trips_and_reports_lengths() {
        let dir = std::env::temp_dir().join(format!("jpmd-backend-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.bin");
        let backend = RealFs;

        let mut file = backend.create(&path).unwrap();
        file.write_all(b"hello world").unwrap();
        file.sync_data().unwrap();
        assert_eq!(file.len().unwrap(), 11);
        assert!(!file.is_empty().unwrap());
        file.set_len(5).unwrap();
        file.sync_all().unwrap();
        drop(file);

        let mut file = backend.open_rw(&path).unwrap();
        let mut buf = Vec::new();
        file.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"hello");
        drop(file);

        let renamed = dir.join("renamed.bin");
        backend.rename(&path, &renamed).unwrap();
        backend.sync_parent_dir(&renamed).unwrap();
        assert!(!backend.exists(&path));
        assert!(backend.exists(&renamed));
        backend.remove_file(&renamed).unwrap();
        assert!(!backend.exists(&renamed));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_append_appends_past_existing_bytes() {
        let dir = std::env::temp_dir().join(format!("jpmd-backend-app-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.bin");
        let backend = RealFs;
        backend.create(&path).unwrap().write_all(b"ab").unwrap();
        let mut file = backend.open_append(&path).unwrap();
        file.write_all(b"cd").unwrap();
        drop(file);
        assert_eq!(std::fs::read(&path).unwrap(), b"abcd");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_backend_defaults_to_real_fs_and_derefs() {
        let shared = SharedBackend::default();
        let dir = std::env::temp_dir();
        assert!(shared.exists(&dir));
        let cloned = shared.clone();
        assert!(cloned.exists(&dir));
        let from: SharedBackend = RealFs.into();
        assert!(format!("{from:?}").contains("RealFs"));
    }
}
