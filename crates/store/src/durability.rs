//! Directory-level durability for the write-temp-then-rename protocol.
//!
//! `fsync` on a file makes its *contents* durable, but the rename that
//! published the file lives in the parent directory's entries — until the
//! directory itself is synced, a crash can forget the rename and leave
//! the old name (or nothing) behind. Every atomic publish in this
//! workspace (`.jpt` traces, `.jck` checkpoints) therefore ends with
//! [`sync_parent_dir`] on the destination path.

use std::fs::File;
use std::io;
use std::path::Path;

/// Fsyncs the directory containing `path`, making a just-completed rename
/// of `path` durable.
///
/// A path with no parent component (a bare file name) syncs the current
/// directory. On platforms where directories cannot be opened for sync
/// (e.g. Windows), the open error is swallowed — the rename is still
/// atomic, only its durability against power loss is weakened, which
/// matches what the platform can promise.
///
/// # Errors
///
/// Propagates a failing `fsync` on a successfully opened directory.
pub fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    match File::open(parent) {
        Ok(dir) => dir.sync_all(),
        // Directories are not openable everywhere; treat that as
        // "platform cannot provide directory durability", not a failure.
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syncs_real_parents_and_tolerates_bare_names() {
        let dir = std::env::temp_dir();
        sync_parent_dir(&dir.join("some-file.bin")).expect("sync temp dir");
        sync_parent_dir(Path::new("bare-name.bin")).expect("sync cwd");
    }
}
