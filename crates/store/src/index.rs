//! Sparse per-period index over JSONL record streams.
//!
//! A WAL of `ObsRecord` lines is append-only and ordered by `seq`, with
//! simulation periods embedded in (most of) the events. Today, finding
//! "period 800 000" means parsing every line from byte 0. This sidecar
//! (`<wal>.jx`) makes that seek O(index):
//!
//! ```text
//! header (24 bytes)          entry (28 bytes, repeated)
//!   magic   "JPMDIDX1"         period  u64   simulation period of the line
//!   version u16                seq     u64   record sequence number
//!   stride  u32                offset  u64   byte offset of the line start
//!   reserved[6]                crc     u32   CRC-32 of the 24 bytes above
//!   crc     u32  (of 0..20)
//! ```
//!
//! Invariants: entries are strictly increasing in `seq` and `offset` and
//! non-decreasing in `period`; an entry is appended only **after** the
//! line it points at was written. The index is therefore a *hint*, never
//! authority: readers verify the target line (parse it, check `seq`) and
//! fall back to a full scan on any mismatch, so a stale or torn sidecar
//! can cost time but never correctness. Loading tolerates a torn tail —
//! a short or CRC-failing final entry is discarded, mirroring the
//! journal's torn-tail rule.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::backend::{RealFs, StorageBackend, StorageFile};
use crate::crc32::crc32;
use crate::StoreError;

/// Index sidecar magic: "JPMD InDeX", generation 1.
pub const INDEX_MAGIC: [u8; 8] = *b"JPMDIDX1";
/// Index format version this build understands.
pub const INDEX_VERSION: u16 = 1;
/// Bytes in the index header.
pub const INDEX_HEADER_BYTES: usize = 24;
/// Bytes per index entry.
pub const INDEX_ENTRY_BYTES: usize = 28;

/// The sidecar path for a WAL: `<wal>.jx` next to it.
pub fn index_path(wal: &Path) -> PathBuf {
    let mut name = wal.file_name().unwrap_or_default().to_os_string();
    name.push(".jx");
    wal.with_file_name(name)
}

/// One sparse index entry: the line at byte `offset` carries `seq` and
/// mentions `period`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Simulation period the line reports.
    pub period: u64,
    /// Sequence number of the record at `offset`.
    pub seq: u64,
    /// Byte offset of the start of the line in the WAL.
    pub offset: u64,
}

impl IndexEntry {
    fn encode(&self) -> [u8; INDEX_ENTRY_BYTES] {
        let mut buf = [0u8; INDEX_ENTRY_BYTES];
        buf[0..8].copy_from_slice(&self.period.to_le_bytes());
        buf[8..16].copy_from_slice(&self.seq.to_le_bytes());
        buf[16..24].copy_from_slice(&self.offset.to_le_bytes());
        let crc = crc32(&buf[..24]);
        buf[24..].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes one entry, or `None` when its CRC fails (a torn tail).
    fn decode(buf: &[u8; INDEX_ENTRY_BYTES]) -> Option<Self> {
        let stored = u32::from_le_bytes(buf[24..].try_into().unwrap());
        if stored != crc32(&buf[..24]) {
            return None;
        }
        Some(IndexEntry {
            period: u64::from_le_bytes(buf[0..8].try_into().unwrap()),
            seq: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
            offset: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
        })
    }
}

fn encode_index_header(stride: u32) -> [u8; INDEX_HEADER_BYTES] {
    let mut buf = [0u8; INDEX_HEADER_BYTES];
    buf[0..8].copy_from_slice(&INDEX_MAGIC);
    buf[8..10].copy_from_slice(&INDEX_VERSION.to_le_bytes());
    buf[10..14].copy_from_slice(&stride.to_le_bytes());
    let crc = crc32(&buf[..INDEX_HEADER_BYTES - 4]);
    buf[INDEX_HEADER_BYTES - 4..].copy_from_slice(&crc.to_le_bytes());
    buf
}

fn decode_index_header(buf: &[u8; INDEX_HEADER_BYTES]) -> Result<u32, StoreError> {
    if buf[0..8] != INDEX_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&buf[0..8]);
        return Err(StoreError::BadMagic { found });
    }
    let version = u16::from_le_bytes([buf[8], buf[9]]);
    if version != INDEX_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let stored = u32::from_le_bytes(buf[INDEX_HEADER_BYTES - 4..].try_into().unwrap());
    let computed = crc32(&buf[..INDEX_HEADER_BYTES - 4]);
    if stored != computed {
        return Err(StoreError::Checksum {
            page: 0,
            stored,
            computed,
        });
    }
    let stride = u32::from_le_bytes(buf[10..14].try_into().unwrap());
    if stride == 0 {
        return Err(StoreError::InvalidConfig {
            reason: "index stride must be >= 1",
        });
    }
    Ok(stride)
}

/// A loaded, validated sparse index (see the module docs).
#[derive(Debug, Clone)]
pub struct PeriodIndex {
    /// Every `stride`-th indexable record got an entry.
    pub stride: u32,
    /// Entries in append order (strictly increasing `seq`/`offset`).
    pub entries: Vec<IndexEntry>,
}

impl PeriodIndex {
    /// Loads `<path>` tolerantly: a torn or non-monotonic tail is
    /// discarded, a corrupt *header* is a typed error.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`] / [`StoreError::UnsupportedVersion`] /
    /// [`StoreError::Checksum`] for a foreign or corrupt header,
    /// [`StoreError::Truncated`] when the file ends inside the header,
    /// plus I/O failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let mut file = File::open(path)?;
        let mut header = [0u8; INDEX_HEADER_BYTES];
        file.read_exact(&mut header).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::Truncated { page: 0 }
            } else {
                StoreError::Io(e)
            }
        })?;
        let stride = decode_index_header(&header)?;
        let mut body = Vec::new();
        file.read_to_end(&mut body)?;
        let mut entries: Vec<IndexEntry> = Vec::with_capacity(body.len() / INDEX_ENTRY_BYTES);
        for chunk in body.chunks_exact(INDEX_ENTRY_BYTES) {
            let buf: [u8; INDEX_ENTRY_BYTES] = chunk.try_into().unwrap();
            let Some(entry) = IndexEntry::decode(&buf) else {
                break; // torn tail
            };
            if let Some(last) = entries.last() {
                let monotonic = entry.seq > last.seq
                    && entry.offset > last.offset
                    && entry.period >= last.period;
                if !monotonic {
                    break; // treat the rest as garbage, keep the good prefix
                }
            }
            entries.push(entry);
        }
        Ok(PeriodIndex { stride, entries })
    }

    /// The last entry whose period is `<= period` (binary search) — the
    /// latest safe place to start a forward scan for `period`.
    pub fn entry_at_or_before_period(&self, period: u64) -> Option<IndexEntry> {
        let n = self.entries.partition_point(|e| e.period <= period);
        n.checked_sub(1).map(|i| self.entries[i])
    }

    /// The last entry whose seq is `<= seq` — the latest safe place to
    /// start a forward scan for sequence number `seq`.
    pub fn entry_at_or_before_seq(&self, seq: u64) -> Option<IndexEntry> {
        let n = self.entries.partition_point(|e| e.seq <= seq);
        n.checked_sub(1).map(|i| self.entries[i])
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index has no entries yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Appends entries to an index sidecar as its WAL grows.
///
/// The writer enforces the monotonic invariant and refuses out-of-order
/// appends with a typed error, so a sidecar on disk is always a valid
/// prefix (readers still verify, per the module docs).
#[derive(Debug)]
pub struct PeriodIndexWriter {
    file: Box<dyn StorageFile>,
    stride: u32,
    last: Option<IndexEntry>,
    entries: u64,
}

impl PeriodIndexWriter {
    /// Creates (truncating) a sidecar at `path` with the given stride.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] for a zero stride; I/O failures.
    pub fn create(path: impl AsRef<Path>, stride: u32) -> Result<Self, StoreError> {
        PeriodIndexWriter::create_on(&RealFs, path, stride)
    }

    /// [`PeriodIndexWriter::create`] through an explicit storage backend
    /// (the fault-injection seam).
    ///
    /// # Errors
    ///
    /// As [`PeriodIndexWriter::create`].
    pub fn create_on(
        backend: &dyn StorageBackend,
        path: impl AsRef<Path>,
        stride: u32,
    ) -> Result<Self, StoreError> {
        if stride == 0 {
            return Err(StoreError::InvalidConfig {
                reason: "index stride must be >= 1",
            });
        }
        let mut file = backend.create(path.as_ref())?;
        file.write_all(&encode_index_header(stride))?;
        file.flush()?;
        Ok(PeriodIndexWriter {
            file,
            stride,
            last: None,
            entries: 0,
        })
    }

    /// Reopens an existing sidecar for appending, trimming any torn tail
    /// first so new entries extend the valid prefix.
    ///
    /// # Errors
    ///
    /// The same header errors as [`PeriodIndex::load`]; I/O failures.
    pub fn open_append(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        PeriodIndexWriter::open_append_on(&RealFs, path)
    }

    /// [`PeriodIndexWriter::open_append`] through an explicit storage
    /// backend (the fault-injection seam).
    ///
    /// # Errors
    ///
    /// As [`PeriodIndexWriter::open_append`].
    pub fn open_append_on(
        backend: &dyn StorageBackend,
        path: impl AsRef<Path>,
    ) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let index = PeriodIndex::load(path)?;
        let valid_len =
            INDEX_HEADER_BYTES as u64 + (index.entries.len() * INDEX_ENTRY_BYTES) as u64;
        let mut file = backend.open_rw(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(PeriodIndexWriter {
            file,
            stride: index.stride,
            last: index.entries.last().copied(),
            entries: index.entries.len() as u64,
        })
    }

    /// The stride the sidecar was created with.
    pub fn stride(&self) -> u32 {
        self.stride
    }

    /// The most recent entry (from disk or appended here).
    pub fn last(&self) -> Option<IndexEntry> {
        self.last
    }

    /// Entries in the sidecar (loaded valid prefix + appended here).
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Appends one entry. Call only after the line it points at has been
    /// written to the WAL.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] when the entry breaks monotonicity;
    /// I/O failures.
    pub fn append(&mut self, entry: IndexEntry) -> Result<(), StoreError> {
        if let Some(last) = self.last {
            let monotonic =
                entry.seq > last.seq && entry.offset > last.offset && entry.period >= last.period;
            if !monotonic {
                return Err(StoreError::InvalidConfig {
                    reason: "index entries must be monotonic in seq/offset/period",
                });
            }
        }
        self.file.write_all(&entry.encode())?;
        self.file.flush()?;
        self.last = Some(entry);
        self.entries += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("jpmd-index-{tag}-{}.jx", std::process::id()))
    }

    fn e(period: u64, seq: u64, offset: u64) -> IndexEntry {
        IndexEntry {
            period,
            seq,
            offset,
        }
    }

    #[test]
    fn roundtrip_and_binary_search() {
        let path = tmp("rtrip");
        let mut w = PeriodIndexWriter::create(&path, 16).unwrap();
        for k in 0..10u64 {
            w.append(e(k * 100, k * 16 + 1, k * 1000 + 24)).unwrap();
        }
        let idx = PeriodIndex::load(&path).unwrap();
        assert_eq!(idx.stride, 16);
        assert_eq!(idx.len(), 10);
        assert_eq!(idx.entry_at_or_before_period(0), Some(e(0, 1, 24)));
        assert_eq!(idx.entry_at_or_before_period(450).unwrap().period, 400);
        assert_eq!(idx.entry_at_or_before_period(10_000).unwrap().period, 900);
        assert!(PeriodIndex {
            stride: 1,
            entries: vec![]
        }
        .entry_at_or_before_period(5)
        .is_none());
        assert_eq!(idx.entry_at_or_before_seq(33).unwrap().seq, 33);
        assert_eq!(idx.entry_at_or_before_seq(34).unwrap().seq, 33);
        assert!(idx.entry_at_or_before_seq(0).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_discarded_and_append_resumes_past_it() {
        let path = tmp("torn");
        let mut w = PeriodIndexWriter::create(&path, 8).unwrap();
        w.append(e(10, 1, 24)).unwrap();
        w.append(e(20, 9, 480)).unwrap();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // Cut the second entry in half.
        std::fs::write(&path, &full[..full.len() - INDEX_ENTRY_BYTES / 2]).unwrap();
        let idx = PeriodIndex::load(&path).unwrap();
        assert_eq!(idx.len(), 1, "torn tail dropped");
        let mut w = PeriodIndexWriter::open_append(&path).unwrap();
        assert_eq!(w.last(), Some(e(10, 1, 24)));
        w.append(e(30, 17, 900)).unwrap();
        let idx = PeriodIndex::load(&path).unwrap();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.entries[1], e(30, 17, 900));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_entries_and_headers_are_contained() {
        let path = tmp("rot");
        let mut w = PeriodIndexWriter::create(&path, 8).unwrap();
        w.append(e(10, 1, 24)).unwrap();
        w.append(e(20, 9, 480)).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the first entry: both entries after it drop.
        bytes[INDEX_HEADER_BYTES + 3] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(PeriodIndex::load(&path).unwrap().is_empty());
        // Flip a header byte: typed error.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            PeriodIndex::load(&path),
            Err(StoreError::Checksum { page: 0, .. })
        ));
        std::fs::write(&path, b"short").unwrap();
        assert!(matches!(
            PeriodIndex::load(&path),
            Err(StoreError::Truncated { page: 0 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_monotonic_appends_are_rejected_and_loads_keep_the_prefix() {
        let path = tmp("mono");
        let mut w = PeriodIndexWriter::create(&path, 4).unwrap();
        w.append(e(10, 5, 100)).unwrap();
        assert!(matches!(
            w.append(e(10, 5, 200)),
            Err(StoreError::InvalidConfig { .. })
        ));
        assert!(matches!(
            w.append(e(5, 6, 200)),
            Err(StoreError::InvalidConfig { .. })
        ));
        drop(w);
        // Hand-craft a non-monotonic second entry on disk (valid CRC):
        let rogue = e(10, 4, 50).encode();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&rogue);
        std::fs::write(&path, &bytes).unwrap();
        let idx = PeriodIndex::load(&path).unwrap();
        assert_eq!(idx.len(), 1, "non-monotonic tail dropped");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn index_path_appends_jx() {
        assert_eq!(
            index_path(Path::new("/tmp/run/telemetry.jsonl")),
            Path::new("/tmp/run/telemetry.jsonl.jx")
        );
    }

    #[test]
    fn zero_stride_is_rejected() {
        assert!(matches!(
            PeriodIndexWriter::create(tmp("zs"), 0),
            Err(StoreError::InvalidConfig { .. })
        ));
    }
}
