//! Shared command-line plumbing for the workspace's tool binaries
//! (`trace_tool`, `obs_tool`, `ckpt_tool`).
//!
//! All tools follow one exit-code convention:
//!
//! * `0` — success;
//! * `1` — runtime failure (I/O, corrupt file, failing operation);
//! * `2` — usage error (unknown subcommand, missing or unparsable
//!   argument), with the tool's usage text printed to stderr.
//!
//! A binary's `main` parses with the helpers here, returns
//! `Result<(), CliError>` from its `run` function, and maps it through
//! [`exit_with`].

use std::error::Error;
use std::process::ExitCode;
use std::str::FromStr;

/// A CLI failure, split by who is at fault: bad invocation (exit 2,
/// usage printed) vs. a failing operation (exit 1).
#[derive(Debug)]
pub enum CliError {
    /// The invocation was malformed; the message explains how.
    Usage(String),
    /// The requested operation failed.
    Runtime(Box<dyn Error>),
}

impl<E: Error + 'static> From<E> for CliError {
    fn from(e: E) -> Self {
        CliError::Runtime(Box::new(e))
    }
}

/// A runtime error from a plain message (no typed source).
pub fn runtime(message: impl Into<String>) -> CliError {
    CliError::Runtime(message.into().into())
}

/// Positional argument `index` as a string, or a usage error naming it.
pub fn require<'a>(args: &'a [String], index: usize, name: &str) -> Result<&'a str, CliError> {
    args.get(index)
        .map(String::as_str)
        .ok_or_else(|| CliError::Usage(format!("missing argument <{name}>")))
}

/// Parses `raw` as a `T`; a malformed value is a usage error, not a
/// runtime error.
pub fn parse_value<T: FromStr>(raw: &str, name: &str) -> Result<T, CliError> {
    raw.parse().map_err(|_| {
        CliError::Usage(format!(
            "argument <{name}> must be a {}, got '{raw}'",
            std::any::type_name::<T>()
        ))
    })
}

/// Parses positional argument `index` (named `name` in diagnostics),
/// falling back to `default` when absent.
pub fn parse_arg<T: FromStr>(
    args: &[String],
    index: usize,
    name: &str,
    default: T,
) -> Result<T, CliError> {
    match args.get(index) {
        None => Ok(default),
        Some(raw) => parse_value(raw, name),
    }
}

/// Like [`parse_arg`], but the argument is mandatory.
pub fn parse_required<T: FromStr>(
    args: &[String],
    index: usize,
    name: &str,
) -> Result<T, CliError> {
    parse_value(require(args, index, name)?, name)
}

/// Maps a tool's run result to the unified exit codes, printing
/// diagnostics to stderr: `0` ok, `1` runtime failure (with the typed
/// cause chain one level deep), `2` usage error followed by `usage`.
pub fn exit_with(result: Result<(), CliError>, usage: &str) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Runtime(e)) => {
            eprintln!("error: {e}");
            if let Some(cause) = e.source() {
                eprintln!("  caused by: {cause}");
            }
            ExitCode::FAILURE
        }
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}\n{usage}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn require_reports_missing_arguments_as_usage() {
        let a = args(&["tool", "cmd"]);
        assert_eq!(require(&a, 1, "subcommand").unwrap(), "cmd");
        match require(&a, 2, "file") {
            Err(CliError::Usage(m)) => assert!(m.contains("<file>")),
            _ => panic!("missing argument must be a usage error"),
        }
    }

    #[test]
    fn parse_arg_defaults_and_rejects_garbage() {
        let a = args(&["tool", "cmd", "7", "x"]);
        assert_eq!(parse_arg(&a, 2, "n", 1u64).unwrap(), 7);
        assert_eq!(parse_arg(&a, 9, "n", 1u64).unwrap(), 1);
        assert!(matches!(
            parse_arg(&a, 3, "n", 1u64),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_required::<u64>(&a, 9, "n"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn io_errors_become_runtime_errors() {
        let e: CliError = std::io::Error::other("boom").into();
        assert!(matches!(e, CliError::Runtime(_)));
        assert!(matches!(runtime("bad"), CliError::Runtime(_)));
    }
}
