//! The store's typed error: every way a `.jpt` file can be unreadable,
//! corrupt, or malformed. Corruption never panics — it surfaces as one of
//! these variants (asserted by the corruption tests in
//! `tests/roundtrip.rs` and the workspace `store_stream` integration
//! tests).

use std::error::Error;
use std::fmt;
use std::io;

use jpmd_trace::TraceError;

/// Error type for the paged binary trace store.
///
/// In page-indexed variants, page `0` is the file header and data pages
/// are numbered from `1`.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The file does not start with the store magic — not a `.jpt` file.
    BadMagic {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// The file uses a format version this build cannot read.
    UnsupportedVersion {
        /// Version stamped in the header.
        found: u16,
    },
    /// The header's record stride differs from this build's record layout.
    BadRecordSize {
        /// Record size stamped in the header.
        found: u16,
    },
    /// The header's page size is outside the supported bounds.
    BadPageSize {
        /// Page size stamped in the header.
        found: u32,
    },
    /// A checksum did not match the stored one.
    Checksum {
        /// Page the mismatch occurred in (`0` = header).
        page: u64,
        /// Checksum recorded in the file.
        stored: u32,
        /// Checksum computed over the bytes read.
        computed: u32,
    },
    /// The file ended before a full header or page could be read.
    Truncated {
        /// Page the missing bytes belong to (`0` = header).
        page: u64,
    },
    /// A page's record count disagrees with the header's record count.
    BadPageCount {
        /// Data page (1-based).
        page: u64,
        /// Count stored in the page.
        found: u32,
        /// Count implied by the header.
        expected: u32,
    },
    /// A record's kind byte is neither read (`0`) nor write (`1`).
    BadKind {
        /// Zero-based record index in the stream.
        index: u64,
        /// The byte found.
        value: u8,
    },
    /// A decoded record violated a trace invariant (see
    /// [`jpmd_trace::check_record`]).
    InvalidRecord(TraceError),
    /// A writer/reader parameter was outside its valid domain.
    InvalidConfig {
        /// What the parameter must satisfy.
        reason: &'static str,
    },
    /// A journal sidecar belongs to a different store (its stamped
    /// `file_id` does not match the main file's).
    ForeignJournal {
        /// Identity stamped in the journal header.
        found: u64,
        /// Identity of the main file it was opened against.
        expected: u64,
    },
    /// A journal sidecar was written with a different page size than the
    /// store it sits next to.
    JournalGeometry {
        /// Page size stamped in the journal header.
        found: u32,
        /// Page size of the main file.
        expected: u32,
    },
    /// A page access addressed a page the store does not have.
    PageOutOfRange {
        /// Page that was asked for.
        page: u64,
        /// Pages the store currently holds.
        pages: u64,
    },
}

impl StoreError {
    /// True when the error condemns the *contents of one data page* —
    /// exactly the class a recovering reader
    /// ([`TraceReader::open_recovering`](crate::TraceReader::open_recovering))
    /// can skip past, because the store's fixed-size pages make the next
    /// page boundary a known resync point. I/O failures, truncation, and
    /// header-level errors are not page-local and stay fatal.
    pub fn is_page_corruption(&self) -> bool {
        matches!(
            self,
            StoreError::Checksum { .. }
                | StoreError::BadPageCount { .. }
                | StoreError::BadKind { .. }
                | StoreError::InvalidRecord(_)
        )
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "trace store I/O error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a jpmd trace store (magic {found:02x?})")
            }
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace store version {found}")
            }
            StoreError::BadRecordSize { found } => {
                write!(f, "unsupported record size {found} in trace store header")
            }
            StoreError::BadPageSize { found } => {
                write!(f, "invalid page size {found} in trace store header")
            }
            StoreError::Checksum {
                page,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in page {page}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StoreError::Truncated { page } => {
                write!(f, "trace store truncated inside page {page}")
            }
            StoreError::BadPageCount {
                page,
                found,
                expected,
            } => write!(
                f,
                "page {page} holds {found} records, header implies {expected}"
            ),
            StoreError::BadKind { index, value } => {
                write!(f, "record #{index} has invalid kind byte {value:#04x}")
            }
            StoreError::InvalidRecord(e) => write!(f, "{e}"),
            StoreError::InvalidConfig { reason } => {
                write!(f, "invalid trace store configuration: {reason}")
            }
            StoreError::ForeignJournal { found, expected } => write!(
                f,
                "journal belongs to a different store (file id {found:#018x}, expected {expected:#018x})"
            ),
            StoreError::JournalGeometry { found, expected } => write!(
                f,
                "journal page size {found} does not match the store's {expected}"
            ),
            StoreError::PageOutOfRange { page, pages } => {
                write!(f, "page {page} is out of range (store holds {pages} pages)")
            }
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::InvalidRecord(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<TraceError> for StoreError {
    fn from(e: TraceError) -> Self {
        StoreError::InvalidRecord(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_the_diagnostic_fields() {
        let e = StoreError::Checksum {
            page: 3,
            stored: 0xDEAD_BEEF,
            computed: 0x1234_5678,
        };
        let s = e.to_string();
        assert!(s.contains("page 3") && s.contains("0xdeadbeef"), "{s}");
        assert!(StoreError::Truncated { page: 0 }.to_string().contains("0"));
    }

    #[test]
    fn page_corruption_classification() {
        assert!(StoreError::Checksum {
            page: 1,
            stored: 0,
            computed: 1
        }
        .is_page_corruption());
        assert!(StoreError::BadPageCount {
            page: 1,
            found: 2,
            expected: 3
        }
        .is_page_corruption());
        assert!(StoreError::BadKind { index: 0, value: 9 }.is_page_corruption());
        assert!(StoreError::InvalidRecord(TraceError::InvalidRecord {
            index: 0,
            reason: "x"
        })
        .is_page_corruption());
        assert!(!StoreError::Io(io::Error::other("x")).is_page_corruption());
        assert!(!StoreError::Truncated { page: 2 }.is_page_corruption());
        assert!(!StoreError::BadMagic { found: [0; 8] }.is_page_corruption());
        assert!(!StoreError::ForeignJournal {
            found: 1,
            expected: 2
        }
        .is_page_corruption());
        assert!(!StoreError::PageOutOfRange { page: 9, pages: 1 }.is_page_corruption());
    }

    #[test]
    fn journal_errors_display_their_diagnostics() {
        let e = StoreError::ForeignJournal {
            found: 0xAB,
            expected: 0xCD,
        };
        assert!(e.to_string().contains("0x00000000000000ab"), "{e}");
        let e = StoreError::JournalGeometry {
            found: 128,
            expected: 4096,
        };
        assert!(e.to_string().contains("128") && e.to_string().contains("4096"));
        let e = StoreError::PageOutOfRange { page: 7, pages: 3 };
        assert!(e.to_string().contains("page 7") && e.to_string().contains("3 pages"));
    }

    #[test]
    fn sources_chain() {
        let io = StoreError::from(io::Error::other("boom"));
        assert!(Error::source(&io).is_some());
        let rec = StoreError::from(TraceError::InvalidRecord {
            index: 1,
            reason: "pages must be >= 1",
        });
        assert!(Error::source(&rec).is_some());
        assert!(rec.to_string().contains("#1"));
    }
}
