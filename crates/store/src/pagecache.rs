//! Fixed-capacity LRU page cache for the run database.
//!
//! The classic storage-engine page cache (PoloDB's `pagecache.rs` is the
//! reference idiom) threads an intrusive doubly-linked recency list
//! through the nodes with raw pointers. This is the same O(1) structure
//! done safely: nodes live in a slab (`Vec`) and the links are slab
//! *indices*, so there is no `unsafe`, no allocator churn on touch, and
//! the borrow checker still holds.
//!
//! The cache holds **clean** page images only — [`PagedFile`] keeps
//! uncommitted and committed-but-not-checkpointed pages in separate maps,
//! so evicting here never loses data; it only costs a re-read.
//!
//! [`PagedFile`]: crate::PagedFile

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node {
    prev: usize,
    next: usize,
    key: u64,
    data: Vec<u8>,
}

/// A fixed-capacity LRU map from page id to page image.
#[derive(Debug)]
pub struct PageCache {
    cap: usize,
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    hits: u64,
    misses: u64,
}

impl PageCache {
    /// A cache holding at most `cap` pages (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        PageCache {
            cap,
            map: HashMap::with_capacity(cap),
            nodes: Vec::with_capacity(cap),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Pages currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The capacity the cache was built with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Unlinks node `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    /// Links node `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks `key` up, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<&[u8]> {
        match self.map.get(&key).copied() {
            Some(i) => {
                self.hits += 1;
                if self.head != i {
                    self.unlink(i);
                    self.link_front(i);
                }
                Some(&self.nodes[i].data)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) `key`, returning the evicted `(key, image)`
    /// if the insert pushed the least-recently-used page out.
    pub fn insert(&mut self, key: u64, data: Vec<u8>) -> Option<(u64, Vec<u8>)> {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].data = data;
            if self.head != i {
                self.unlink(i);
                self.link_front(i);
            }
            return None;
        }
        let evicted = if self.map.len() == self.cap {
            let lru = self.tail;
            let evicted_key = self.nodes[lru].key;
            self.unlink(lru);
            self.map.remove(&evicted_key);
            let data = std::mem::take(&mut self.nodes[lru].data);
            self.free.push(lru);
            Some((evicted_key, data))
        } else {
            None
        };
        let i = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = Node {
                    prev: NIL,
                    next: NIL,
                    key,
                    data,
                };
                slot
            }
            None => {
                self.nodes.push(Node {
                    prev: NIL,
                    next: NIL,
                    key,
                    data,
                });
                self.nodes.len() - 1
            }
        };
        self.link_front(i);
        self.map.insert(key, i);
        evicted
    }

    /// Removes `key`, returning its image.
    pub fn remove(&mut self, key: u64) -> Option<Vec<u8>> {
        let i = self.map.remove(&key)?;
        self.unlink(i);
        self.free.push(i);
        Some(std::mem::take(&mut self.nodes[i].data))
    }

    /// Drops every cached page (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Cached keys from most to least recently used (test/debug aid).
    #[cfg(test)]
    fn recency_order(&self) -> Vec<u64> {
        let mut order = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            order.push(self.nodes[i].key);
            i = self.nodes[i].next;
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(b: u8) -> Vec<u8> {
        vec![b; 4]
    }

    #[test]
    fn eviction_follows_recency_not_insertion() {
        let mut c = PageCache::new(3);
        assert!(c.insert(1, img(1)).is_none());
        assert!(c.insert(2, img(2)).is_none());
        assert!(c.insert(3, img(3)).is_none());
        // Touch 1: now 2 is the LRU.
        assert_eq!(c.get(1), Some(&img(1)[..]));
        let (evicted, data) = c.insert(4, img(4)).expect("cache full");
        assert_eq!((evicted, data), (2, img(2)));
        assert_eq!(c.recency_order(), vec![4, 1, 3]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinsert_replaces_and_promotes() {
        let mut c = PageCache::new(2);
        c.insert(1, img(1));
        c.insert(2, img(2));
        assert!(c.insert(1, img(9)).is_none(), "replace is not an eviction");
        assert_eq!(c.get(1), Some(&img(9)[..]));
        assert_eq!(c.recency_order(), vec![1, 2]);
    }

    #[test]
    fn remove_frees_a_slot_for_reuse() {
        let mut c = PageCache::new(2);
        c.insert(1, img(1));
        c.insert(2, img(2));
        assert_eq!(c.remove(1), Some(img(1)));
        assert_eq!(c.remove(1), None);
        assert!(c.insert(3, img(3)).is_none(), "freed slot, no eviction");
        assert_eq!(c.len(), 2);
        assert_eq!(c.recency_order(), vec![3, 2]);
    }

    #[test]
    fn hit_miss_counters_track_lookups() {
        let mut c = PageCache::new(2);
        c.insert(7, img(7));
        c.get(7);
        c.get(8);
        c.get(7);
        assert_eq!((c.hits(), c.misses()), (2, 1));
    }

    #[test]
    fn single_slot_cache_churns_correctly() {
        let mut c = PageCache::new(0); // clamped to 1
        assert_eq!(c.cap(), 1);
        assert!(c.insert(1, img(1)).is_none());
        assert_eq!(c.insert(2, img(2)), Some((1, img(1))));
        assert_eq!(c.get(2), Some(&img(2)[..]));
        assert_eq!(c.get(1), None);
        c.clear();
        assert!(c.is_empty());
        assert!(c.insert(3, img(3)).is_none());
    }
}
