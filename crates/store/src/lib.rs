//! Paged binary trace store for `jpmd` (`.jpt` files).
//!
//! The reproduction originally kept every workload as an in-memory JSON
//! `Vec<TraceRecord>`, which couples trace length to resident memory and
//! makes multi-hour, production-scale replays (the ROADMAP north star)
//! impossible. This crate decouples them, in the spirit of paged,
//! checksummed storage engines (PoloDB) and streaming energy-aware request
//! logs (Behzadnia et al., arXiv:1703.02591):
//!
//! * a compact **binary format** — a fixed 64-byte header (magic, version,
//!   geometry, record count) followed by fixed-size data pages of packed
//!   little-endian records, each page guarded by a CRC-32 ([`mod@format`]);
//! * a buffered streaming [`TraceWriter`] and a chunked [`TraceReader`],
//!   both O(page) in resident memory;
//! * a typed [`StoreError`] for every corruption mode — bad magic, foreign
//!   version, truncated page, checksum mismatch — instead of panics;
//! * the [`TraceSource`](jpmd_trace::TraceSource) seam: [`TraceReader`]
//!   plugs straight into the simulator's
//!   [`run_simulation_source`](../jpmd_sim/fn.run_simulation_source.html),
//!   producing **bit-identical** `RunReport`s to in-memory replay (the
//!   workspace `store_stream` integration tests assert this).
//!
//! On top of the append-only trace format, the crate is the workspace's
//! **run database** (ROADMAP item 5):
//!
//! * [`PagedFile`] — a random-access page store with a page-level
//!   write-ahead [`Journal`] (commit = journal fsync, checkpoint =
//!   write-back + truncate, recovery = replay on open) and a safe LRU
//!   [`PageCache`];
//! * [`mod@index`] — sparse per-period `<wal>.jx` sidecars that make
//!   `seek_to_period` on JSONL telemetry WALs O(index) instead of
//!   O(file);
//! * [`mod@segment`] — segmented WALs with gap-free compaction of
//!   resumed segments;
//! * [`mod@cli`] — the shared exit-code/argument plumbing every tool
//!   binary in the workspace uses.
//!
//! The `trace-tool` binary (this crate) converts between `.json` and
//! `.jpt`, prints and verifies stores, generates workloads, and
//! exercises the journal crash protocol (`db-torture`/`db-verify`).
//!
//! # Example
//!
//! ```
//! use jpmd_store::{TraceReader, TraceWriter};
//! use jpmd_trace::{AccessKind, FileId, TraceRecord};
//! use std::io::Cursor;
//!
//! # fn main() -> Result<(), jpmd_store::StoreError> {
//! let mut writer = TraceWriter::new(Cursor::new(Vec::new()), 4096, 100)?;
//! writer.write_record(&TraceRecord {
//!     time: 0.5,
//!     file: FileId(0),
//!     first_page: 10,
//!     pages: 2,
//!     kind: AccessKind::Read,
//! })?;
//! let bytes = writer.finish()?.into_inner();
//!
//! let reader = TraceReader::new(Cursor::new(bytes))?;
//! assert_eq!(reader.record_count(), 1);
//! for record in reader {
//!     assert_eq!(record?.first_page, 10);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cli;
mod crc32;
mod durability;
mod error;
pub mod format;
pub mod index;
pub mod journal;
mod pagecache;
mod pagedfile;
mod reader;
pub mod segment;
mod writer;

pub use backend::{RealFs, SharedBackend, StorageBackend, StorageFile};
pub use crc32::crc32;
pub use durability::sync_parent_dir;
pub use error::StoreError;
pub use format::Header;
pub use index::{
    index_path, IndexEntry, PeriodIndex, PeriodIndexWriter, INDEX_ENTRY_BYTES, INDEX_HEADER_BYTES,
};
pub use journal::{journal_path, Journal, JournalReplay};
pub use pagecache::PageCache;
pub use pagedfile::{PagedFile, PagedFileStats};
pub use reader::{read_trace, SkippedPage, SkippedPages, TraceReader};
pub use segment::{
    compact_segments, next_segment_path, segment_path, segment_paths, CompactionReport,
};
pub use writer::{write_trace, TraceWriter};
