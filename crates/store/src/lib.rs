//! Paged binary trace store for `jpmd` (`.jpt` files).
//!
//! The reproduction originally kept every workload as an in-memory JSON
//! `Vec<TraceRecord>`, which couples trace length to resident memory and
//! makes multi-hour, production-scale replays (the ROADMAP north star)
//! impossible. This crate decouples them, in the spirit of paged,
//! checksummed storage engines (PoloDB) and streaming energy-aware request
//! logs (Behzadnia et al., arXiv:1703.02591):
//!
//! * a compact **binary format** — a fixed 64-byte header (magic, version,
//!   geometry, record count) followed by fixed-size data pages of packed
//!   little-endian records, each page guarded by a CRC-32 ([`mod@format`]);
//! * a buffered streaming [`TraceWriter`] and a chunked [`TraceReader`],
//!   both O(page) in resident memory;
//! * a typed [`StoreError`] for every corruption mode — bad magic, foreign
//!   version, truncated page, checksum mismatch — instead of panics;
//! * the [`TraceSource`](jpmd_trace::TraceSource) seam: [`TraceReader`]
//!   plugs straight into the simulator's
//!   [`run_simulation_source`](../jpmd_sim/fn.run_simulation_source.html),
//!   producing **bit-identical** `RunReport`s to in-memory replay (the
//!   workspace `store_stream` integration tests assert this).
//!
//! The `trace-tool` binary (this crate) converts between `.json` and
//! `.jpt`, prints and verifies stores, and generates workloads.
//!
//! # Example
//!
//! ```
//! use jpmd_store::{TraceReader, TraceWriter};
//! use jpmd_trace::{AccessKind, FileId, TraceRecord};
//! use std::io::Cursor;
//!
//! # fn main() -> Result<(), jpmd_store::StoreError> {
//! let mut writer = TraceWriter::new(Cursor::new(Vec::new()), 4096, 100)?;
//! writer.write_record(&TraceRecord {
//!     time: 0.5,
//!     file: FileId(0),
//!     first_page: 10,
//!     pages: 2,
//!     kind: AccessKind::Read,
//! })?;
//! let bytes = writer.finish()?.into_inner();
//!
//! let reader = TraceReader::new(Cursor::new(bytes))?;
//! assert_eq!(reader.record_count(), 1);
//! for record in reader {
//!     assert_eq!(record?.first_page, 10);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc32;
mod durability;
mod error;
pub mod format;
mod reader;
mod writer;

pub use crc32::crc32;
pub use durability::sync_parent_dir;
pub use error::StoreError;
pub use format::Header;
pub use reader::{read_trace, SkippedPage, SkippedPages, TraceReader};
pub use writer::{write_trace, TraceWriter};
