//! Chunked streaming reader for the paged binary trace store.

use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

use jpmd_trace::{check_record, SourceError, Trace, TraceRecord, TraceSource};

use crate::crc32::crc32;
use crate::format::{Header, HEADER_BYTES, RECORD_BYTES};
use crate::StoreError;

/// One data page a recovering reader skipped, with why.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedPage {
    /// Data page number (1-based; 0 is the header).
    pub page: u64,
    /// Records the header implied the page held — the upper bound on what
    /// skipping it lost.
    pub expected_records: u32,
    /// The corruption diagnostic (rendered [`StoreError`]).
    pub reason: String,
}

/// Summary of everything a recovering reader skipped over.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SkippedPages {
    /// The skipped pages, in stream order.
    pub pages: Vec<SkippedPage>,
    /// Total records lost across all skipped pages.
    pub records_lost: u64,
}

impl SkippedPages {
    /// True when nothing was skipped (a clean read).
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

/// Streams [`TraceRecord`]s out of a `.jpt` store one page at a time.
///
/// The header is read and validated eagerly in [`TraceReader::new`]; data
/// pages are pulled lazily, each checked against its CRC and its records
/// against the trace invariants before any of them are yielded, so resident
/// memory stays O(page) however large the trace is. Corruption surfaces as
/// a typed [`StoreError`] — never a panic — and fuses the reader (further
/// pulls return `None`).
///
/// [`TraceReader::open_recovering`] flips the failure stance: a corrupt
/// *page* ([`StoreError::is_page_corruption`]) is skipped instead of
/// fatal. Because pages are fixed-size, the next page boundary is a known
/// resync point — the reader drops at most the records of the damaged
/// page, records the loss in [`TraceReader::skipped`], and streams on.
/// Truncation ends the stream cleanly (charging the unreachable tail);
/// I/O and header errors stay fatal either way.
///
/// `TraceReader` implements both `Iterator<Item = Result<TraceRecord,
/// StoreError>>` and [`TraceSource`], so it plugs straight into
/// [`run_simulation_source`](../jpmd_sim/fn.run_simulation_source.html)
/// for streaming replay.
pub struct TraceReader<R: Read> {
    input: R,
    header: Header,
    page: Vec<u8>,
    /// Decoded records of the current page.
    buffered: Vec<TraceRecord>,
    cursor: usize,
    pages_read: u64,
    records_out: u64,
    /// Records charged to skipped pages (recovery mode only).
    records_lost: u64,
    prev_time: f64,
    fused: bool,
    recovery: bool,
    skipped: SkippedPages,
}

impl TraceReader<BufReader<File>> {
    /// Opens a store file for streaming.
    ///
    /// # Errors
    ///
    /// Propagates open/read failures and header validation errors.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::new(BufReader::new(File::open(path)?))
    }

    /// Opens a store file in recovery mode: corrupt data pages are skipped
    /// (resyncing at the next page boundary) instead of ending the stream.
    ///
    /// # Errors
    ///
    /// Propagates open/read failures and header validation errors — a
    /// damaged *header* is not recoverable.
    pub fn open_recovering(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::new_recovering(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps `input`, reading and validating the header immediately.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] (page 0) when the header is incomplete,
    /// any [`Header::decode`] error, or I/O failures.
    pub fn new(mut input: R) -> Result<Self, StoreError> {
        let mut buf = [0u8; HEADER_BYTES];
        read_exact_or_truncated(&mut input, &mut buf, 0)?;
        let header = Header::decode(&buf)?;
        Ok(Self {
            input,
            page: vec![0u8; header.page_size as usize],
            buffered: Vec::with_capacity(header.capacity() as usize),
            header,
            cursor: 0,
            pages_read: 0,
            records_out: 0,
            records_lost: 0,
            prev_time: f64::NEG_INFINITY,
            fused: false,
            recovery: false,
            skipped: SkippedPages::default(),
        })
    }

    /// Like [`TraceReader::new`], in recovery mode (see
    /// [`TraceReader::open_recovering`]).
    ///
    /// # Errors
    ///
    /// Same as [`TraceReader::new`]: header validation is never skipped.
    pub fn new_recovering(input: R) -> Result<Self, StoreError> {
        let mut reader = Self::new(input)?;
        reader.recovery = true;
        Ok(reader)
    }

    /// The validated file header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Records stored in the file.
    pub fn record_count(&self) -> u64 {
        self.header.record_count
    }

    /// What a recovery-mode read skipped so far (empty for a clean file
    /// and always empty in strict mode).
    pub fn skipped(&self) -> &SkippedPages {
        &self.skipped
    }

    /// Data pages whose bytes have been consumed so far (including pages
    /// a recovering reader skipped; excluding a trailing truncated page).
    pub fn pages_read(&self) -> u64 {
        self.pages_read
    }

    /// Records consumed from the stream so far: yielded plus charged to
    /// skipped pages.
    fn records_consumed(&self) -> u64 {
        self.records_out + self.records_lost
    }

    /// Records the header implies the *next* data page holds: every page
    /// but the last must be full; the last holds the rest.
    fn next_page_expected(&self) -> u32 {
        let remaining = self.header.record_count - self.records_consumed();
        remaining.min(self.header.capacity() as u64) as u32
    }

    /// Reads, checks, and decodes the next data page into `buffered`.
    ///
    /// On failure the reader's decode state (`prev_time`, `buffered`) is
    /// rolled back so a recovering caller can charge the page as lost and
    /// resync at the next boundary — the page bytes are always fully
    /// consumed from the input before validation begins.
    fn load_page(&mut self) -> Result<(), StoreError> {
        let page = self.pages_read + 1; // 1-based in errors; 0 is the header
        read_exact_or_truncated(&mut self.input, &mut self.page, page)?;
        self.pages_read += 1;
        let prev_time = self.prev_time;
        let result = self.decode_page(page);
        if result.is_err() {
            self.prev_time = prev_time;
            self.buffered.clear();
            self.cursor = 0;
        }
        result
    }

    fn decode_page(&mut self, page: u64) -> Result<(), StoreError> {
        let len = self.page.len();
        let stored = u32::from_le_bytes(self.page[len - 4..].try_into().unwrap());
        let computed = crc32(&self.page[..len - 4]);
        if stored != computed {
            return Err(StoreError::Checksum {
                page,
                stored,
                computed,
            });
        }
        let found = u32::from_le_bytes(self.page[0..4].try_into().unwrap());
        let expected = self.next_page_expected();
        if found != expected {
            return Err(StoreError::BadPageCount {
                page,
                found,
                expected,
            });
        }
        self.buffered.clear();
        for i in 0..found as usize {
            let at = 4 + i * RECORD_BYTES;
            let index = self.records_consumed() + i as u64;
            let record = crate::format::decode_record(&self.page[at..at + RECORD_BYTES], index)?;
            check_record(&record, self.prev_time, self.header.total_pages, index)?;
            self.prev_time = record.time;
            self.buffered.push(record);
        }
        self.cursor = 0;
        Ok(())
    }

    /// Recovery-mode reaction to a failed page load: returns `None` to
    /// retry at the next page, or `Some(item)` to end the stream.
    fn recover(&mut self, e: StoreError) -> Option<Option<Result<TraceRecord, StoreError>>> {
        if e.is_page_corruption() {
            // The failed page's bytes were fully consumed, so the input
            // already sits at the next page boundary: charge the page's
            // records as lost and resync.
            let lost = self.next_page_expected();
            self.skipped.pages.push(SkippedPage {
                page: self.pages_read,
                expected_records: lost,
                reason: e.to_string(),
            });
            self.skipped.records_lost += u64::from(lost);
            self.records_lost += u64::from(lost);
            return None;
        }
        if let StoreError::Truncated { page } = e {
            // No more page boundaries to resync at: charge the whole
            // unreachable tail and end the stream cleanly.
            let lost = self.header.record_count - self.records_consumed();
            self.skipped.pages.push(SkippedPage {
                page,
                expected_records: self.next_page_expected(),
                reason: e.to_string(),
            });
            self.skipped.records_lost += lost;
            self.records_lost += lost;
            self.fused = true;
            return Some(None);
        }
        // I/O and any other failure stays fatal even in recovery.
        self.fused = true;
        Some(Some(Err(e)))
    }
}

fn read_exact_or_truncated<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    page: u64,
) -> Result<(), StoreError> {
    input.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { page }
        } else {
            StoreError::Io(e)
        }
    })
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.fused {
            return None;
        }
        while self.cursor == self.buffered.len() {
            if self.records_consumed() == self.header.record_count {
                self.fused = true;
                return None;
            }
            match self.load_page() {
                Ok(()) => break,
                Err(e) if self.recovery => {
                    if let Some(outcome) = self.recover(e) {
                        return outcome;
                    }
                }
                Err(e) => {
                    self.fused = true;
                    return Some(Err(e));
                }
            }
        }
        let record = self.buffered[self.cursor];
        self.cursor += 1;
        self.records_out += 1;
        Some(Ok(record))
    }
}

impl<R: Read> TraceSource for TraceReader<R> {
    fn page_bytes(&self) -> u64 {
        self.header.page_bytes
    }

    fn total_pages(&self) -> u64 {
        self.header.total_pages
    }

    fn next_record(&mut self) -> Option<Result<TraceRecord, SourceError>> {
        self.next().map(|r| r.map_err(SourceError::new))
    }
}

/// Loads a whole store file into an in-memory [`Trace`].
///
/// Prefer streaming ([`TraceReader`] +
/// [`run_simulation_source`](../jpmd_sim/fn.run_simulation_source.html))
/// for replay; this is for tooling that needs random access (stats,
/// synthesizer transforms, JSON conversion).
///
/// # Errors
///
/// Propagates any [`TraceReader`] error.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Trace, StoreError> {
    let mut reader = TraceReader::open(path)?;
    let mut records = Vec::new();
    if reader.record_count() != u64::MAX {
        records.reserve(reader.record_count() as usize);
    }
    for record in &mut reader {
        records.push(record?);
    }
    Ok(Trace::new(
        records,
        reader.header().page_bytes,
        reader.header().total_pages,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use jpmd_trace::{AccessKind, FileId};
    use std::io::Cursor;

    fn rec(time: f64, first_page: u64, pages: u64) -> TraceRecord {
        TraceRecord {
            time,
            file: FileId(2),
            first_page,
            pages,
            kind: AccessKind::Read,
        }
    }

    fn store(records: &[TraceRecord], page_size: u32) -> Vec<u8> {
        let mut w =
            TraceWriter::with_page_size(Cursor::new(Vec::new()), 4096, 100, page_size).unwrap();
        for r in records {
            w.write_record(r).unwrap();
        }
        w.finish().unwrap().into_inner()
    }

    #[test]
    fn multi_page_stream_yields_every_record_in_order() {
        let records: Vec<TraceRecord> = (0..13).map(|i| rec(i as f64, i, 2)).collect();
        let bytes = store(&records, 66); // capacity 2 -> 7 pages
        let reader = TraceReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.record_count(), 13);
        let back: Vec<TraceRecord> = reader.map(Result::unwrap).collect();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_store_roundtrips() {
        let bytes = store(&[], 66);
        let mut reader = TraceReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.record_count(), 0);
        assert!(reader.next().is_none());
        assert!(reader.next().is_none());
    }

    #[test]
    fn source_metadata_comes_from_the_header() {
        let bytes = store(&[rec(0.0, 0, 1)], 4096);
        let mut reader = TraceReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(TraceSource::page_bytes(&reader), 4096);
        assert_eq!(TraceSource::total_pages(&reader), 100);
        assert!(matches!(reader.next_record(), Some(Ok(_))));
        assert!(reader.next_record().is_none());
    }

    #[test]
    fn reader_fuses_after_an_error() {
        let mut bytes = store(&(0..5).map(|i| rec(i as f64, i, 1)).collect::<Vec<_>>(), 66);
        let flip = HEADER_BYTES + 10; // inside page 1's records
        bytes[flip] ^= 0xFF;
        let mut reader = TraceReader::new(Cursor::new(bytes)).unwrap();
        assert!(matches!(
            reader.next(),
            Some(Err(StoreError::Checksum { page: 1, .. }))
        ));
        assert!(reader.next().is_none());
        assert!(reader.next_record().is_none());
    }

    #[test]
    fn recovering_reader_skips_exactly_the_corrupt_page() {
        // 13 records, capacity 2 -> 7 pages; corrupt page 3 (records 4, 5).
        let records: Vec<TraceRecord> = (0..13).map(|i| rec(i as f64, i, 2)).collect();
        let mut bytes = store(&records, 66);
        let page_bytes = 66;
        let flip = HEADER_BYTES + 2 * page_bytes + 10;
        bytes[flip] ^= 0xFF;

        let mut reader = TraceReader::new_recovering(Cursor::new(bytes)).unwrap();
        let back: Vec<TraceRecord> = (&mut reader).map(Result::unwrap).collect();
        let expected: Vec<TraceRecord> =
            records[..4].iter().chain(&records[6..]).copied().collect();
        assert_eq!(back, expected);
        let skipped = reader.skipped();
        assert_eq!(skipped.records_lost, 2);
        assert_eq!(skipped.pages.len(), 1);
        assert_eq!(skipped.pages[0].page, 3);
        assert_eq!(skipped.pages[0].expected_records, 2);
        assert!(skipped.pages[0].reason.contains("checksum"));
    }

    #[test]
    fn recovering_reader_ends_cleanly_on_truncation() {
        let records: Vec<TraceRecord> = (0..13).map(|i| rec(i as f64, i, 2)).collect();
        let mut bytes = store(&records, 66);
        bytes.truncate(bytes.len() - 70); // kill page 7 and part of page 6
        let mut reader = TraceReader::new_recovering(Cursor::new(bytes)).unwrap();
        let back: Vec<TraceRecord> = (&mut reader).map(Result::unwrap).collect();
        assert_eq!(back, records[..10]);
        assert_eq!(reader.skipped().records_lost, 3);
        assert!(reader.next().is_none());
    }

    #[test]
    fn strict_reader_is_unchanged_by_recovery_plumbing() {
        let records: Vec<TraceRecord> = (0..13).map(|i| rec(i as f64, i, 2)).collect();
        let bytes = store(&records, 66);
        let mut reader = TraceReader::new(Cursor::new(bytes)).unwrap();
        let back: Vec<TraceRecord> = (&mut reader).map(Result::unwrap).collect();
        assert_eq!(back, records);
        assert!(reader.skipped().is_empty());
    }
}
