//! Chunked streaming reader for the paged binary trace store.

use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

use jpmd_trace::{check_record, SourceError, Trace, TraceRecord, TraceSource};

use crate::crc32::crc32;
use crate::format::{Header, HEADER_BYTES, RECORD_BYTES};
use crate::StoreError;

/// Streams [`TraceRecord`]s out of a `.jpt` store one page at a time.
///
/// The header is read and validated eagerly in [`TraceReader::new`]; data
/// pages are pulled lazily, each checked against its CRC and its records
/// against the trace invariants before any of them are yielded, so resident
/// memory stays O(page) however large the trace is. Corruption surfaces as
/// a typed [`StoreError`] — never a panic — and fuses the reader (further
/// pulls return `None`).
///
/// `TraceReader` implements both `Iterator<Item = Result<TraceRecord,
/// StoreError>>` and [`TraceSource`], so it plugs straight into
/// [`run_simulation_source`](../jpmd_sim/fn.run_simulation_source.html)
/// for streaming replay.
pub struct TraceReader<R: Read> {
    input: R,
    header: Header,
    page: Vec<u8>,
    /// Decoded records of the current page.
    buffered: Vec<TraceRecord>,
    cursor: usize,
    pages_read: u64,
    records_out: u64,
    prev_time: f64,
    fused: bool,
}

impl TraceReader<BufReader<File>> {
    /// Opens a store file for streaming.
    ///
    /// # Errors
    ///
    /// Propagates open/read failures and header validation errors.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps `input`, reading and validating the header immediately.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] (page 0) when the header is incomplete,
    /// any [`Header::decode`] error, or I/O failures.
    pub fn new(mut input: R) -> Result<Self, StoreError> {
        let mut buf = [0u8; HEADER_BYTES];
        read_exact_or_truncated(&mut input, &mut buf, 0)?;
        let header = Header::decode(&buf)?;
        Ok(Self {
            input,
            page: vec![0u8; header.page_size as usize],
            buffered: Vec::with_capacity(header.capacity() as usize),
            header,
            cursor: 0,
            pages_read: 0,
            records_out: 0,
            prev_time: f64::NEG_INFINITY,
            fused: false,
        })
    }

    /// The validated file header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Records stored in the file.
    pub fn record_count(&self) -> u64 {
        self.header.record_count
    }

    /// Reads, checks, and decodes the next data page into `buffered`.
    fn load_page(&mut self) -> Result<(), StoreError> {
        let page = self.pages_read + 1; // 1-based in errors; 0 is the header
        read_exact_or_truncated(&mut self.input, &mut self.page, page)?;
        let len = self.page.len();
        let stored = u32::from_le_bytes(self.page[len - 4..].try_into().unwrap());
        let computed = crc32(&self.page[..len - 4]);
        if stored != computed {
            return Err(StoreError::Checksum {
                page,
                stored,
                computed,
            });
        }
        let found = u32::from_le_bytes(self.page[0..4].try_into().unwrap());
        // Every page but the last must be full; the last holds the rest.
        let remaining = self.header.record_count - self.records_out;
        let expected = remaining.min(self.header.capacity() as u64) as u32;
        if found != expected {
            return Err(StoreError::BadPageCount {
                page,
                found,
                expected,
            });
        }
        self.buffered.clear();
        for i in 0..found as usize {
            let at = 4 + i * RECORD_BYTES;
            let index = self.records_out + i as u64;
            let record = crate::format::decode_record(&self.page[at..at + RECORD_BYTES], index)?;
            check_record(&record, self.prev_time, self.header.total_pages, index)?;
            self.prev_time = record.time;
            self.buffered.push(record);
        }
        self.cursor = 0;
        self.pages_read += 1;
        Ok(())
    }
}

fn read_exact_or_truncated<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    page: u64,
) -> Result<(), StoreError> {
    input.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { page }
        } else {
            StoreError::Io(e)
        }
    })
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.fused {
            return None;
        }
        if self.cursor == self.buffered.len() {
            if self.records_out == self.header.record_count {
                self.fused = true;
                return None;
            }
            if let Err(e) = self.load_page() {
                self.fused = true;
                return Some(Err(e));
            }
        }
        let record = self.buffered[self.cursor];
        self.cursor += 1;
        self.records_out += 1;
        Some(Ok(record))
    }
}

impl<R: Read> TraceSource for TraceReader<R> {
    fn page_bytes(&self) -> u64 {
        self.header.page_bytes
    }

    fn total_pages(&self) -> u64 {
        self.header.total_pages
    }

    fn next_record(&mut self) -> Option<Result<TraceRecord, SourceError>> {
        self.next().map(|r| r.map_err(SourceError::new))
    }
}

/// Loads a whole store file into an in-memory [`Trace`].
///
/// Prefer streaming ([`TraceReader`] +
/// [`run_simulation_source`](../jpmd_sim/fn.run_simulation_source.html))
/// for replay; this is for tooling that needs random access (stats,
/// synthesizer transforms, JSON conversion).
///
/// # Errors
///
/// Propagates any [`TraceReader`] error.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Trace, StoreError> {
    let mut reader = TraceReader::open(path)?;
    let mut records = Vec::new();
    if reader.record_count() != u64::MAX {
        records.reserve(reader.record_count() as usize);
    }
    for record in &mut reader {
        records.push(record?);
    }
    Ok(Trace::new(
        records,
        reader.header().page_bytes,
        reader.header().total_pages,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use jpmd_trace::{AccessKind, FileId};
    use std::io::Cursor;

    fn rec(time: f64, first_page: u64, pages: u64) -> TraceRecord {
        TraceRecord {
            time,
            file: FileId(2),
            first_page,
            pages,
            kind: AccessKind::Read,
        }
    }

    fn store(records: &[TraceRecord], page_size: u32) -> Vec<u8> {
        let mut w =
            TraceWriter::with_page_size(Cursor::new(Vec::new()), 4096, 100, page_size).unwrap();
        for r in records {
            w.write_record(r).unwrap();
        }
        w.finish().unwrap().into_inner()
    }

    #[test]
    fn multi_page_stream_yields_every_record_in_order() {
        let records: Vec<TraceRecord> = (0..13).map(|i| rec(i as f64, i, 2)).collect();
        let bytes = store(&records, 66); // capacity 2 -> 7 pages
        let reader = TraceReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.record_count(), 13);
        let back: Vec<TraceRecord> = reader.map(Result::unwrap).collect();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_store_roundtrips() {
        let bytes = store(&[], 66);
        let mut reader = TraceReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.record_count(), 0);
        assert!(reader.next().is_none());
        assert!(reader.next().is_none());
    }

    #[test]
    fn source_metadata_comes_from_the_header() {
        let bytes = store(&[rec(0.0, 0, 1)], 4096);
        let mut reader = TraceReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(TraceSource::page_bytes(&reader), 4096);
        assert_eq!(TraceSource::total_pages(&reader), 100);
        assert!(matches!(reader.next_record(), Some(Ok(_))));
        assert!(reader.next_record().is_none());
    }

    #[test]
    fn reader_fuses_after_an_error() {
        let mut bytes = store(&(0..5).map(|i| rec(i as f64, i, 1)).collect::<Vec<_>>(), 66);
        let flip = HEADER_BYTES + 10; // inside page 1's records
        bytes[flip] ^= 0xFF;
        let mut reader = TraceReader::new(Cursor::new(bytes)).unwrap();
        assert!(matches!(
            reader.next(),
            Some(Err(StoreError::Checksum { page: 1, .. }))
        ));
        assert!(reader.next().is_none());
        assert!(reader.next_record().is_none());
    }
}
