//! `trace-tool` — generate, inspect, convert, and verify `jpmd` workload
//! traces from the command line.
//!
//! ```text
//! trace-tool gen <out> [data_gb] [rate_mb] [popularity] [secs] [seed]
//! trace-tool stats <trace>
//! trace-tool cat <trace> [limit]
//! trace-tool convert <in> <out>
//! trace-tool verify <trace>
//! trace-tool scan <trace.jpt>
//! trace-tool scale-rate <in> <out> <factor>
//! trace-tool scale-data <in> <out> <growth>
//! trace-tool db-torture <db> [commits] [die_after] [cut_bytes]
//! trace-tool db-verify <db> <expect_commits>
//! ```
//!
//! Trace paths ending in `.jpt` use the paged binary store
//! (`jpmd-store`); anything else is the JSON produced by
//! [`Trace::to_writer`]. `convert` therefore turns JSON into binary and
//! back purely by naming the output. `gen` uses the same generator as the
//! experiment harness, so a saved trace replays byte-identically through
//! the simulator (see the `determinism` and `store_stream` integration
//! tests).
//!
//! `db-torture`/`db-verify` exercise the journaled [`PagedFile`] crash
//! protocol end to end: torture performs deterministic committed
//! transactions and (optionally) leaves a journal whose last commit
//! record is torn mid-write — exactly what `kill -9` between the
//! journal write and its fsync leaves behind — and verify reopens the
//! store, which replays the journal, and checks every page against the
//! deterministic expectation. The CI crash-recovery smoke is built on
//! this pair.
//!
//! Exit codes: `0` success, `1` runtime failure (I/O, corrupt store,
//! malformed trace), `2` usage error (unknown subcommand, missing or
//! unparsable argument) — the shared `jpmd_store::cli` convention.
//!
//! [`PagedFile`]: jpmd_store::PagedFile

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::process::ExitCode;

use jpmd_store::cli::{self, parse_arg, parse_required, require, CliError};
use jpmd_store::{PagedFile, TraceReader};
use jpmd_trace::{synth, Trace, TraceStats, WorkloadBuilder, GIB, MIB};

const USAGE: &str = "usage:
  trace-tool gen <out> [data_gb] [rate_mb] [popularity] [secs] [seed]
  trace-tool stats <trace>
  trace-tool cat <trace> [limit]
  trace-tool convert <in> <out>
  trace-tool verify <trace>
  trace-tool scan <trace.jpt>
  trace-tool scale-rate <in> <out> <factor>
  trace-tool scale-data <in> <out> <growth>
  trace-tool db-torture <db> [commits] [die_after] [cut_bytes]
  trace-tool db-verify <db> <expect_commits>

traces ending in .jpt use the paged binary store; all others are JSON
(scan reads a .jpt in recovery mode, reporting every page's health;
db-torture commits deterministic pages into a journaled page store and,
when die_after < commits, tears the journal mid-commit; db-verify
reopens it — replaying the journal — and checks every committed page)";

/// `.jpt` selects the binary store; everything else is JSON.
fn is_binary(path: &str) -> bool {
    Path::new(path)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("jpt"))
}

fn load(path: &str) -> Result<Trace, CliError> {
    if is_binary(path) {
        Ok(jpmd_store::read_trace(path)?)
    } else {
        Ok(Trace::from_reader(BufReader::new(File::open(path)?))?)
    }
}

fn save(trace: &Trace, path: &str) -> Result<(), CliError> {
    if is_binary(path) {
        jpmd_store::write_trace(path, trace)?;
    } else {
        trace.to_writer(BufWriter::new(File::create(path)?))?;
    }
    println!(
        "wrote {path}: {} records ({})",
        trace.records().len(),
        if is_binary(path) { "binary" } else { "json" }
    );
    Ok(())
}

fn print_stats(trace: &Trace) {
    let s = TraceStats::measure(trace);
    println!("records            {}", s.requests);
    println!("span               {:.1} s", s.span_secs);
    println!("pages requested    {}", s.pages_requested);
    println!(
        "mean rate          {:.2} MB/s",
        s.mean_rate_bytes_per_sec / (1024.0 * 1024.0)
    );
    println!("unique files       {}", s.unique_files);
    println!(
        "data set           {:.2} GB ({} pages of {} KiB)",
        trace.data_set_bytes() as f64 / GIB as f64,
        trace.total_pages(),
        trace.page_bytes() / 1024
    );
}

/// Streams a binary store end to end (header, every page CRC, every
/// record invariant) without materializing it; JSON traces are verified
/// by loading, which runs the same invariant checks.
fn verify(path: &str) -> Result<(), CliError> {
    if is_binary(path) {
        let mut reader = TraceReader::open(path)?;
        let header = *reader.header();
        let mut records = 0u64;
        let mut span = 0.0f64;
        for record in &mut reader {
            let record = record?;
            records += 1;
            span = record.time;
        }
        println!(
            "ok: {records} records over {span:.1} s, {} data pages of {} bytes (crc32 verified)",
            header.data_pages(),
            header.page_size,
        );
    } else {
        let trace = load(path)?;
        println!(
            "ok: {} records over {:.1} s (json, invariants verified)",
            trace.records().len(),
            trace.span()
        );
    }
    Ok(())
}

/// Reads a binary store in recovery mode, reporting every data page's
/// health (ok / corrupt / unreadable past a truncation) and the records
/// salvaged. Fails only when *nothing* is salvageable — a store with a
/// valid header and zero readable data pages.
fn scan(path: &str) -> Result<(), CliError> {
    if !is_binary(path) {
        return Err(CliError::Usage("scan requires a .jpt binary store".into()));
    }
    let mut reader = jpmd_store::TraceReader::open_recovering(path)?;
    let header = *reader.header();
    let mut records = 0u64;
    for record in &mut reader {
        record?; // only I/O errors survive recovery mode
        records += 1;
    }
    let skipped = reader.skipped().clone();
    let visited = reader.pages_read();
    let data_pages = header.data_pages();
    let capacity = u64::from(header.capacity());
    let mut ok_pages = 0u64;
    for page in 1..=data_pages {
        if let Some(bad) = skipped.pages.iter().find(|s| s.page == page) {
            let status = if bad.reason.contains("truncated") {
                "truncated"
            } else {
                "corrupt"
            };
            println!(
                "page {page:>6}  {status}: {} ({} records lost)",
                bad.reason, bad.expected_records
            );
        } else if page <= visited {
            // Every page but the last is full; the last holds the rest.
            let held = if page == data_pages {
                header.record_count - (data_pages - 1) * capacity
            } else {
                capacity
            };
            println!("page {page:>6}  ok ({held} records)");
            ok_pages += 1;
        } else {
            println!("page {page:>6}  unreadable (past truncation)");
        }
    }
    println!(
        "scanned {data_pages} data pages: {ok_pages} ok, {} skipped; \
         {records} of {} records recovered ({} lost)",
        data_pages - ok_pages,
        header.record_count,
        skipped.records_lost
    );
    if data_pages > 0 && ok_pages == 0 {
        return Err(cli::runtime("no readable data pages in store"));
    }
    Ok(())
}

fn cat(path: &str, limit: usize) -> Result<(), CliError> {
    let trace = load(path)?;
    println!(
        "# page_bytes={} total_pages={} records={}",
        trace.page_bytes(),
        trace.total_pages(),
        trace.records().len()
    );
    for r in trace.records().iter().take(limit) {
        let kind = match r.kind {
            jpmd_trace::AccessKind::Read => 'R',
            jpmd_trace::AccessKind::Write => 'W',
        };
        println!(
            "{:.6} {} {} {} {kind}",
            r.time, r.file.0, r.first_page, r.pages
        );
    }
    if trace.records().len() > limit {
        println!("... ({} more)", trace.records().len() - limit);
    }
    Ok(())
}

/// Page geometry of the torture database.
const DB_PAGE: u32 = 256;
/// Data pages the torture run cycles through (page 0 is the counter).
const DB_DATA_PAGES: u64 = 16;

/// The deterministic fill byte commit `c` stamps into every page it
/// writes (nonzero, so a fresh page never passes by accident).
fn db_fill(c: u64) -> u8 {
    (c % 249 + 1) as u8
}

fn db_image(b: u8) -> Vec<u8> {
    vec![b; DB_PAGE as usize]
}

/// Commit `c` writes the counter page (0) and one cycling data page,
/// both filled with [`db_fill`]`(c)`.
fn db_commit(db: &mut PagedFile, c: u64) -> Result<(), CliError> {
    db.write_page(0, &db_image(db_fill(c)))?;
    let data = (c - 1) % DB_DATA_PAGES + 1;
    db.write_page(data, &db_image(db_fill(c)))?;
    db.commit()?;
    Ok(())
}

/// Runs `commits` deterministic transactions against a fresh journaled
/// page store (checkpointing every 5th). When `die_after < commits`,
/// performs one more commit past `die_after` and then cuts `cut` bytes
/// off the journal tail — the on-disk state of a process killed between
/// the journal write and its fsync — so the extra commit must be
/// discarded as torn on the next open. `cut` must stay smaller than one
/// commit record (2 page frames + marker) or it would bite into durable
/// commits; the default 5 lands inside the commit marker.
fn db_torture(path: &str, commits: u64, die_after: u64, cut: u64) -> Result<(), CliError> {
    let mut db = PagedFile::create(path, DB_PAGE, 8)?;
    let durable = die_after.min(commits);
    for c in 1..=durable {
        db_commit(&mut db, c)?;
        if c % 5 == 0 {
            db.checkpoint()?;
        }
    }
    if die_after < commits {
        let torn = die_after + 1;
        db_commit(&mut db, torn)?;
        drop(db);
        let jpath = jpmd_store::journal_path(Path::new(path));
        let len = std::fs::metadata(&jpath)?.len();
        let keep = len.saturating_sub(cut.max(1));
        std::fs::OpenOptions::new()
            .write(true)
            .open(&jpath)?
            .set_len(keep)?;
        println!(
            "tortured {path}: {durable} commits durable, commit {torn} torn \
             (journal cut to {keep} of {len} bytes)"
        );
    } else {
        db.checkpoint()?;
        println!("tortured {path}: {durable} commits durable, checkpointed clean");
    }
    Ok(())
}

/// Reopens the torture database (recovering via journal replay) and
/// checks every page against the deterministic expectation for
/// `expect` durable commits.
fn db_verify(path: &str, expect: u64) -> Result<(), CliError> {
    let mut db = PagedFile::open(path, 8)?;
    let stats = db.stats();
    if expect == 0 {
        println!(
            "ok: empty db (replayed {} commits)",
            stats.recovered_commits
        );
        return Ok(());
    }
    let expect_pages = expect.min(DB_DATA_PAGES) + 1;
    if db.page_count() != expect_pages {
        return Err(cli::runtime(format!(
            "page count {} != expected {expect_pages}",
            db.page_count()
        )));
    }
    let counter = db.read_page(0)?;
    if counter != db_image(db_fill(expect)) {
        return Err(cli::runtime(format!(
            "counter page holds {:#04x}, expected {:#04x} for commit {expect}",
            counter[0],
            db_fill(expect)
        )));
    }
    for p in 1..=expect.min(DB_DATA_PAGES) {
        let last = p + DB_DATA_PAGES * ((expect - p) / DB_DATA_PAGES);
        let got = db.read_page(p)?;
        if got != db_image(db_fill(last)) {
            return Err(cli::runtime(format!(
                "page {p} holds {:#04x}, expected {:#04x} (commit {last})",
                got[0],
                db_fill(last)
            )));
        }
    }
    println!(
        "ok: {expect} commits verified (replayed {} journal commits{})",
        stats.recovered_commits,
        if stats.recovered_torn_tail {
            ", torn tail discarded"
        } else {
            ""
        }
    );
    Ok(())
}

fn run(args: &[String]) -> Result<(), CliError> {
    let cmd = require(args, 1, "subcommand")?;
    match cmd {
        "gen" => {
            let out = require(args, 2, "out")?;
            let data_gb: u64 = parse_arg(args, 3, "data_gb", 16)?;
            let rate_mb: u64 = parse_arg(args, 4, "rate_mb", 100)?;
            let popularity: f64 = parse_arg(args, 5, "popularity", 0.1)?;
            let secs: f64 = parse_arg(args, 6, "secs", 3600.0)?;
            let seed: u64 = parse_arg(args, 7, "seed", 42)?;
            let trace = WorkloadBuilder::new()
                .data_set_bytes(data_gb * GIB)
                .rate_bytes_per_sec(rate_mb * MIB)
                .popularity(popularity)
                .duration_secs(secs)
                .seed(seed)
                .build()?;
            save(&trace, out)?;
            print_stats(&trace);
        }
        "stats" => print_stats(&load(require(args, 2, "trace")?)?),
        "cat" => {
            let path = require(args, 2, "trace")?;
            let limit: usize = parse_arg(args, 3, "limit", usize::MAX)?;
            cat(path, limit)?;
        }
        "convert" => {
            let inp = require(args, 2, "in")?;
            let out = require(args, 3, "out")?;
            save(&load(inp)?, out)?;
        }
        "verify" => verify(require(args, 2, "trace")?)?,
        "scan" => scan(require(args, 2, "trace.jpt")?)?,
        "scale-rate" => {
            let inp = require(args, 2, "in")?;
            let out = require(args, 3, "out")?;
            let factor: f64 = parse_required(args, 4, "factor")?;
            let scaled = synth::scale_rate(&load(inp)?, factor)?;
            save(&scaled, out)?;
        }
        "scale-data" => {
            let inp = require(args, 2, "in")?;
            let out = require(args, 3, "out")?;
            let growth: u32 = parse_required(args, 4, "growth")?;
            let trace = load(inp)?;
            // Reconstruct the file set from the trace's whole-file
            // records; files the trace never touches are unknown and get a
            // 1-page placeholder (they receive no accesses either way).
            let max_file = trace
                .records()
                .iter()
                .map(|r| r.file.0)
                .max()
                .ok_or_else(|| cli::runtime("cannot scale an empty trace"))?;
            let mut counts: Vec<u64> = vec![1; max_file as usize + 1];
            for r in trace.records() {
                counts[r.file.0 as usize] = r.pages;
            }
            let fileset = jpmd_trace::FileSet::from_page_counts(counts, trace.page_bytes())?;
            let (scaled, _) = synth::scale_data_set(&trace, &fileset, growth)?;
            save(&scaled, out)?;
        }
        "db-torture" => {
            let db = require(args, 2, "db")?;
            let commits: u64 = parse_arg(args, 3, "commits", 20)?;
            let die_after: u64 = parse_arg(args, 4, "die_after", u64::MAX)?;
            let cut: u64 = parse_arg(args, 5, "cut_bytes", 5)?;
            db_torture(db, commits, die_after, cut)?;
        }
        "db-verify" => {
            let db = require(args, 2, "db")?;
            let expect: u64 = parse_required(args, 3, "expect_commits")?;
            db_verify(db, expect)?;
        }
        unknown => {
            return Err(CliError::Usage(format!("unknown subcommand '{unknown}'")));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    cli::exit_with(run(&args), USAGE)
}
