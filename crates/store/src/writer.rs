//! Buffered streaming writer for the paged binary trace store.

use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use jpmd_trace::{check_record, Trace, TraceRecord};

use crate::backend::{SharedBackend, StorageFile};
use crate::crc32::crc32;
use crate::durability::sync_parent_dir;
use crate::format::{Header, DEFAULT_PAGE_SIZE, RECORD_BYTES};
use crate::StoreError;

/// Streams [`TraceRecord`]s into the paged binary format.
///
/// Records are validated incrementally (same invariants as
/// [`Trace::from_reader`], via [`jpmd_trace::check_record`]) and packed
/// into fixed-size pages; each full page is checksummed and written out,
/// so resident memory stays O(page) regardless of trace length.
///
/// The header is written up front with a **poison record count**
/// (`u64::MAX`) and patched by [`TraceWriter::finish`] — a writer that is
/// dropped without finishing leaves a file every reader rejects instead of
/// one that silently reads as truncated.
pub struct TraceWriter<W: Write + Seek> {
    out: W,
    header: Header,
    capacity: u32,
    page: Vec<u8>,
    in_page: u32,
    written: u64,
    prev_time: f64,
    /// Set by [`TraceWriter::create`] so [`TraceWriter::finish_durable`]
    /// can fsync the parent directory; `None` for in-memory writers.
    path: Option<PathBuf>,
    /// Set by [`TraceWriter::create_on`] so the parent-directory sync
    /// goes through the same backend that wrote the file.
    backend: Option<SharedBackend>,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates `path` and writes the store header for a trace with the
    /// given page size and data-set size.
    ///
    /// # Errors
    ///
    /// Propagates file creation and write failures.
    pub fn create(
        path: impl AsRef<Path>,
        page_bytes: u64,
        total_pages: u64,
    ) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let mut writer = Self::new(BufWriter::new(File::create(path)?), page_bytes, total_pages)?;
        writer.path = Some(path.to_path_buf());
        Ok(writer)
    }

    /// [`TraceWriter::finish`], then pushed all the way to stable storage:
    /// the sealed file is fsynced, and — for writers opened with
    /// [`TraceWriter::create`] — so is its parent directory, so neither
    /// the patched header nor the directory entry can be lost to a crash.
    ///
    /// The store does not need a write-temp-then-rename dance for
    /// crash *detection* (the poison record count already makes an
    /// unfinished file typed garbage every reader rejects); this call is
    /// about making a *finished* file permanent.
    ///
    /// # Errors
    ///
    /// Propagates write, flush, and fsync failures.
    pub fn finish_durable(self) -> Result<(), StoreError> {
        let path = self.path.clone();
        let out = self.finish()?;
        let file = out
            .into_inner()
            .map_err(|e| StoreError::Io(e.into_error()))?;
        file.sync_all()?;
        if let Some(path) = path {
            sync_parent_dir(&path)?;
        }
        Ok(())
    }
}

impl TraceWriter<BufWriter<Box<dyn StorageFile>>> {
    /// [`TraceWriter::create`] through an explicit storage backend (the
    /// fault-injection seam).
    ///
    /// # Errors
    ///
    /// Propagates file creation and write failures (injected or real).
    pub fn create_on(
        backend: SharedBackend,
        path: impl AsRef<Path>,
        page_bytes: u64,
        total_pages: u64,
    ) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let file = backend.create(path)?;
        let mut writer = Self::new(BufWriter::new(file), page_bytes, total_pages)?;
        writer.path = Some(path.to_path_buf());
        writer.backend = Some(backend);
        Ok(writer)
    }

    /// [`TraceWriter::finish_durable`] for a backend-created writer: the
    /// fsyncs (file and parent directory) go through the backend too.
    ///
    /// # Errors
    ///
    /// Propagates write, flush, and fsync failures.
    pub fn finish_durable(self) -> Result<(), StoreError> {
        let path = self.path.clone();
        let backend = self.backend.clone();
        let out = self.finish()?;
        let mut file = out
            .into_inner()
            .map_err(|e| StoreError::Io(e.into_error()))?;
        file.sync_all()?;
        if let Some(path) = path {
            match &backend {
                Some(backend) => backend.sync_parent_dir(&path)?,
                None => sync_parent_dir(&path)?,
            }
        }
        Ok(())
    }
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Wraps `out` with the default page size ([`DEFAULT_PAGE_SIZE`]).
    ///
    /// # Errors
    ///
    /// Propagates write failures from emitting the header.
    pub fn new(out: W, page_bytes: u64, total_pages: u64) -> Result<Self, StoreError> {
        Self::with_page_size(out, page_bytes, total_pages, DEFAULT_PAGE_SIZE)
    }

    /// Wraps `out` with an explicit store page size (between
    /// [`MIN_PAGE_SIZE`](crate::format::MIN_PAGE_SIZE) and
    /// [`MAX_PAGE_SIZE`](crate::format::MAX_PAGE_SIZE)).
    ///
    /// # Errors
    ///
    /// [`StoreError::BadPageSize`] for an out-of-bounds page size;
    /// otherwise write failures from emitting the header.
    pub fn with_page_size(
        mut out: W,
        page_bytes: u64,
        total_pages: u64,
        page_size: u32,
    ) -> Result<Self, StoreError> {
        Header::validate_page_size(page_size)?;
        if page_bytes == 0 {
            return Err(StoreError::InvalidConfig {
                reason: "page_bytes must be >= 1",
            });
        }
        let header = Header {
            page_size,
            page_bytes,
            total_pages,
            record_count: u64::MAX, // poison until finish() patches it
        };
        out.write_all(&header.encode())?;
        Ok(Self {
            out,
            capacity: header.capacity(),
            header,
            page: vec![0u8; page_size as usize],
            in_page: 0,
            written: 0,
            prev_time: f64::NEG_INFINITY,
            path: None,
            backend: None,
        })
    }

    /// Records written so far.
    pub fn record_count(&self) -> u64 {
        self.written
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidRecord`] when the record violates a trace
    /// invariant (decreasing time, zero pages, range outside the data
    /// set); otherwise write failures from flushing a full page.
    pub fn write_record(&mut self, record: &TraceRecord) -> Result<(), StoreError> {
        check_record(
            record,
            self.prev_time,
            self.header.total_pages,
            self.written,
        )?;
        let at = 4 + self.in_page as usize * RECORD_BYTES;
        crate::format::encode_record(record, &mut self.page[at..at + RECORD_BYTES]);
        self.in_page += 1;
        self.written += 1;
        self.prev_time = record.time;
        if self.in_page == self.capacity {
            self.flush_page()?;
        }
        Ok(())
    }

    /// Seals the file: flushes the trailing partial page, then seeks back
    /// and rewrites the header with the final record count. Returns the
    /// inner writer (already flushed).
    ///
    /// # Errors
    ///
    /// Propagates write/seek failures.
    pub fn finish(mut self) -> Result<W, StoreError> {
        if self.in_page > 0 {
            self.flush_page()?;
        }
        self.header.record_count = self.written;
        self.out.seek(SeekFrom::Start(0))?;
        self.out.write_all(&self.header.encode())?;
        self.out.flush()?;
        Ok(self.out)
    }

    fn flush_page(&mut self) -> Result<(), StoreError> {
        let len = self.page.len();
        self.page[0..4].copy_from_slice(&self.in_page.to_le_bytes());
        // Padding beyond the last record is already zero (the buffer is
        // re-zeroed after every flush).
        let crc = crc32(&self.page[..len - 4]);
        self.page[len - 4..].copy_from_slice(&crc.to_le_bytes());
        self.out.write_all(&self.page)?;
        self.page.fill(0);
        self.in_page = 0;
        Ok(())
    }
}

/// Writes a whole in-memory [`Trace`] to `path` in the binary format and
/// fsyncs it (file and parent directory) before returning.
///
/// # Errors
///
/// Propagates [`TraceWriter`] failures.
pub fn write_trace(path: impl AsRef<Path>, trace: &Trace) -> Result<(), StoreError> {
    let mut writer = TraceWriter::create(path, trace.page_bytes(), trace.total_pages())?;
    for record in trace.records() {
        writer.write_record(record)?;
    }
    writer.finish_durable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jpmd_trace::{AccessKind, FileId};
    use std::io::Cursor;

    fn rec(time: f64, first_page: u64, pages: u64) -> TraceRecord {
        TraceRecord {
            time,
            file: FileId(1),
            first_page,
            pages,
            kind: AccessKind::Read,
        }
    }

    #[test]
    fn file_length_is_header_plus_full_pages() {
        let mut w = TraceWriter::with_page_size(Cursor::new(Vec::new()), 4096, 100, 66).unwrap();
        assert_eq!(w.capacity, 2); // (66 - 8) / 29
        for i in 0..5u64 {
            w.write_record(&rec(i as f64, i, 1)).unwrap();
        }
        let bytes = w.finish().unwrap().into_inner();
        // 5 records over capacity-2 pages -> 3 pages.
        assert_eq!(bytes.len(), 64 + 3 * 66);
    }

    #[test]
    fn rejects_out_of_order_and_out_of_range_records() {
        let mut w = TraceWriter::new(Cursor::new(Vec::new()), 4096, 100).unwrap();
        w.write_record(&rec(5.0, 0, 1)).unwrap();
        assert!(matches!(
            w.write_record(&rec(4.0, 0, 1)),
            Err(StoreError::InvalidRecord(_))
        ));
        assert!(matches!(
            w.write_record(&rec(6.0, 99, 2)),
            Err(StoreError::InvalidRecord(_))
        ));
        assert!(matches!(
            w.write_record(&rec(6.0, 0, 0)),
            Err(StoreError::InvalidRecord(_))
        ));
    }

    #[test]
    fn unfinished_writer_leaves_a_poisoned_header() {
        let mut w = TraceWriter::new(Cursor::new(Vec::new()), 4096, 100).unwrap();
        w.write_record(&rec(0.0, 0, 1)).unwrap();
        // Simulate a crash: grab the bytes without finish().
        w.out.flush().unwrap();
        let bytes = w.out.get_ref().clone();
        let header =
            Header::decode(bytes[..crate::format::HEADER_BYTES].try_into().unwrap()).unwrap();
        assert_eq!(header.record_count, u64::MAX);
    }

    #[test]
    fn finish_durable_seals_a_readable_file() {
        let path =
            std::env::temp_dir().join(format!("jpmd-store-durable-{}.jpt", std::process::id()));
        let mut w = TraceWriter::create(&path, 4096, 100).unwrap();
        for i in 0..5u64 {
            w.write_record(&rec(i as f64, i, 1)).unwrap();
        }
        w.finish_durable().unwrap();
        let trace = crate::read_trace(&path).unwrap();
        assert_eq!(trace.records().len(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tiny_page_sizes_are_rejected() {
        assert!(matches!(
            TraceWriter::with_page_size(Cursor::new(Vec::new()), 4096, 100, 16),
            Err(StoreError::BadPageSize { found: 16 })
        ));
        assert!(matches!(
            TraceWriter::new(Cursor::new(Vec::new()), 0, 100),
            Err(StoreError::InvalidConfig { .. })
        ));
    }
}
