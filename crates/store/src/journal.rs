//! Page-level write-ahead journal for [`PagedFile`](crate::PagedFile).
//!
//! The journal is a sidecar file (`<store>.jnl`) holding whole-page
//! images of every committed-but-not-yet-checkpointed write. The commit
//! protocol is the classic storage-engine shape (PoloDB's `journal.rs`
//! is the reference idiom, done here with typed errors and no `unsafe`):
//!
//! * **commit** — append one frame per dirty page, then a commit marker,
//!   then `fsync`. A transaction is durable exactly when its marker hits
//!   the platter; a torn append leaves a tail with no marker, which
//!   recovery ignores.
//! * **checkpoint** — write the journaled images back into the main
//!   file, `fsync` it, then truncate the journal to its header. Replay
//!   is idempotent (frames carry whole-page images), so a crash anywhere
//!   between write-back and truncation just replays again.
//! * **recovery** — on open, scan frames and apply every transaction
//!   with a valid commit marker, newest image per page winning; stop at
//!   the first torn or corrupt frame. Pages of an uncommitted tail are
//!   never applied — a reader cannot observe a torn commit.
//!
//! A journal belongs to exactly one main file: both carry the same
//! random `file_id`, so a stale journal shadowing a *different* (e.g.
//! restored-from-backup) main file is rejected as
//! [`StoreError::ForeignJournal`] instead of silently corrupting it.
//!
//! ## Layout
//!
//! All integers little-endian:
//!
//! ```text
//! header (32 bytes)
//!   0..8    magic      b"JPMDJNL1"
//!   8..10   version    u16 (currently 1)
//!   10..14  page size  u32 (must match the main file)
//!   14..22  file id    u64 (must match the main file)
//!   22..28  reserved   zeros
//!   28..32  CRC-32 of bytes 0..28
//!
//! page frame (13 + page-size bytes)
//!   0       tag        1
//!   1..9    page id    u64
//!   9..     payload    page-size bytes
//!   last 4  CRC-32 of tag..payload
//!
//! commit frame (13 bytes)
//!   0       tag        2
//!   1..9    commit seq u64 (monotonic per journal)
//!   9..13   CRC-32 of tag..seq
//! ```

use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::backend::{RealFs, StorageBackend, StorageFile};
use crate::crc32::crc32;
use crate::StoreError;

/// Journal file magic.
pub const JOURNAL_MAGIC: [u8; 8] = *b"JPMDJNL1";
/// Journal format version this build reads and writes.
pub const JOURNAL_VERSION: u16 = 1;
/// Bytes in the journal header.
pub const JOURNAL_HEADER_BYTES: usize = 32;

const TAG_PAGE: u8 = 1;
const TAG_COMMIT: u8 = 2;
/// Frame overhead beyond the payload: tag + u64 + CRC-32.
const FRAME_OVERHEAD: usize = 13;

/// The sidecar journal path for a main file: `<path>.jnl`.
pub fn journal_path(store: &Path) -> PathBuf {
    let mut name = store.file_name().unwrap_or_default().to_os_string();
    name.push(".jnl");
    store.with_file_name(name)
}

fn encode_header(page_size: u32, file_id: u64) -> [u8; JOURNAL_HEADER_BYTES] {
    let mut buf = [0u8; JOURNAL_HEADER_BYTES];
    buf[0..8].copy_from_slice(&JOURNAL_MAGIC);
    buf[8..10].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
    buf[10..14].copy_from_slice(&page_size.to_le_bytes());
    buf[14..22].copy_from_slice(&file_id.to_le_bytes());
    let crc = crc32(&buf[..JOURNAL_HEADER_BYTES - 4]);
    buf[JOURNAL_HEADER_BYTES - 4..].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// Validates a journal header against the owning store's geometry.
///
/// # Errors
///
/// [`StoreError::BadMagic`] / [`StoreError::UnsupportedVersion`] /
/// [`StoreError::Checksum`] for a foreign, future, or bit-rotted header;
/// [`StoreError::JournalGeometry`] when the page size disagrees with the
/// main file; [`StoreError::ForeignJournal`] when the file id does.
fn decode_header(
    buf: &[u8; JOURNAL_HEADER_BYTES],
    page_size: u32,
    file_id: u64,
) -> Result<(), StoreError> {
    if buf[0..8] != JOURNAL_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&buf[0..8]);
        return Err(StoreError::BadMagic { found });
    }
    let version = u16::from_le_bytes([buf[8], buf[9]]);
    if version != JOURNAL_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let stored = u32::from_le_bytes(buf[JOURNAL_HEADER_BYTES - 4..].try_into().unwrap());
    let computed = crc32(&buf[..JOURNAL_HEADER_BYTES - 4]);
    if stored != computed {
        return Err(StoreError::Checksum {
            page: 0,
            stored,
            computed,
        });
    }
    let found_size = u32::from_le_bytes(buf[10..14].try_into().unwrap());
    if found_size != page_size {
        return Err(StoreError::JournalGeometry {
            found: found_size,
            expected: page_size,
        });
    }
    let found_id = u64::from_le_bytes(buf[14..22].try_into().unwrap());
    if found_id != file_id {
        return Err(StoreError::ForeignJournal {
            found: found_id,
            expected: file_id,
        });
    }
    Ok(())
}

/// What a recovery scan found in a journal.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct JournalReplay {
    /// Latest committed image per page id, across every committed
    /// transaction, in page order.
    pub pages: BTreeMap<u64, Vec<u8>>,
    /// Commit markers honored (committed transactions replayed).
    pub commits: u64,
    /// Highest commit sequence number seen (0 when no commits).
    pub last_commit_seq: u64,
    /// Whether a torn or corrupt tail was discarded after the last
    /// commit marker.
    pub tail_discarded: bool,
    /// Body bytes up to and including the last commit marker — the
    /// durable prefix the journal's append cursor resumes from.
    pub durable_body_len: u64,
}

/// The open write-ahead journal of one [`PagedFile`](crate::PagedFile).
#[derive(Debug)]
pub struct Journal {
    file: Box<dyn StorageFile>,
    page_size: u32,
    /// Bytes known durable: the header plus every fully-committed frame.
    /// Appends resume exactly here, so a torn earlier append can never
    /// strand garbage *between* valid commits.
    tail: u64,
    /// A failed append may have left partial bytes after `tail`; the
    /// next append truncates them before writing.
    dirty_tail: bool,
}

impl Journal {
    /// Creates (truncating) the journal for a store with the given
    /// geometry and identity, and syncs the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn create(path: &Path, page_size: u32, file_id: u64) -> Result<Self, StoreError> {
        Journal::create_on(&RealFs, path, page_size, file_id)
    }

    /// [`Journal::create`] through an explicit [`StorageBackend`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (injected or real).
    pub fn create_on(
        backend: &dyn StorageBackend,
        path: &Path,
        page_size: u32,
        file_id: u64,
    ) -> Result<Self, StoreError> {
        let mut file = backend.create(path)?;
        file.write_all(&encode_header(page_size, file_id))?;
        file.sync_data()?;
        Ok(Journal {
            file,
            page_size,
            tail: JOURNAL_HEADER_BYTES as u64,
            dirty_tail: false,
        })
    }

    /// Opens an existing journal, validating its header, and scans it
    /// for committed transactions. The caller applies
    /// [`JournalReplay::pages`] to the main file, fsyncs, then calls
    /// [`Journal::truncate`].
    ///
    /// # Errors
    ///
    /// Header validation errors (`BadMagic`, `Version`,
    /// `JournalGeometry`, `ForeignJournal`) and I/O
    /// failures. A torn or corrupt *body* is not an error — the scan
    /// stops at the damage and reports what was committed before it.
    pub fn open(
        path: &Path,
        page_size: u32,
        file_id: u64,
    ) -> Result<(Self, JournalReplay), StoreError> {
        Journal::open_on(&RealFs, path, page_size, file_id)
    }

    /// [`Journal::open`] through an explicit [`StorageBackend`].
    ///
    /// # Errors
    ///
    /// As [`Journal::open`].
    pub fn open_on(
        backend: &dyn StorageBackend,
        path: &Path,
        page_size: u32,
        file_id: u64,
    ) -> Result<(Self, JournalReplay), StoreError> {
        let mut file = backend.open_rw(path)?;
        let mut header = [0u8; JOURNAL_HEADER_BYTES];
        read_header(file.as_mut(), &mut header)?;
        decode_header(&header, page_size, file_id)?;
        let mut body = Vec::new();
        file.read_to_end(&mut body)?;
        let replay = scan_frames(&body, page_size as usize);
        let tail = JOURNAL_HEADER_BYTES as u64 + replay.durable_body_len;
        Ok((
            Journal {
                file,
                page_size,
                tail,
                // Anything past the durable prefix is a discarded tail;
                // the first append truncates it away.
                dirty_tail: body.len() as u64 > replay.durable_body_len,
            },
            replay,
        ))
    }

    /// Appends one transaction — a frame per page plus the commit
    /// marker — as a single write, then fsyncs. The transaction is
    /// durable when this returns.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync failures; the journal may then hold a torn
    /// tail, which the next recovery discards.
    pub fn append_commit(
        &mut self,
        pages: &BTreeMap<u64, Vec<u8>>,
        commit_seq: u64,
    ) -> Result<(), StoreError> {
        let mut buf =
            Vec::with_capacity(pages.len() * (FRAME_OVERHEAD + self.page_size as usize) + 16);
        for (&id, image) in pages {
            debug_assert_eq!(image.len(), self.page_size as usize);
            let start = buf.len();
            buf.push(TAG_PAGE);
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(image);
            let crc = crc32(&buf[start..]);
            buf.extend_from_slice(&crc.to_le_bytes());
        }
        let start = buf.len();
        buf.push(TAG_COMMIT);
        buf.extend_from_slice(&commit_seq.to_le_bytes());
        let crc = crc32(&buf[start..]);
        buf.extend_from_slice(&crc.to_le_bytes());

        // A torn earlier append left partial bytes past the durable
        // prefix; erase them first, or the new frames would land after
        // garbage that stops every future recovery scan short.
        if self.dirty_tail {
            self.file.set_len(self.tail)?;
            self.dirty_tail = false;
        }
        self.file.seek(SeekFrom::Start(self.tail))?;
        let appended = self
            .file
            .write_all(&buf)
            .and_then(|()| self.file.sync_data());
        match appended {
            Ok(()) => {
                self.tail += buf.len() as u64;
                Ok(())
            }
            Err(e) => {
                self.dirty_tail = true;
                Err(e.into())
            }
        }
    }

    /// Truncates the journal back to its header (after a checkpoint made
    /// the main file current) and fsyncs.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        self.file.set_len(JOURNAL_HEADER_BYTES as u64)?;
        self.tail = JOURNAL_HEADER_BYTES as u64;
        self.dirty_tail = false;
        self.file.sync_data()?;
        Ok(())
    }

    /// Current journal length in bytes (header included).
    ///
    /// # Errors
    ///
    /// Propagates the metadata query failure.
    pub fn len(&mut self) -> Result<u64, StoreError> {
        Ok(self.file.len()?)
    }

    /// Whether the journal holds nothing beyond its header.
    ///
    /// # Errors
    ///
    /// Propagates the metadata query failure.
    pub fn is_empty(&mut self) -> Result<bool, StoreError> {
        Ok(self.len()? <= JOURNAL_HEADER_BYTES as u64)
    }
}

fn read_header(
    file: &mut dyn StorageFile,
    buf: &mut [u8; JOURNAL_HEADER_BYTES],
) -> Result<(), StoreError> {
    file.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { page: 0 }
        } else {
            StoreError::Io(e)
        }
    })
}

/// Scans the journal body (everything after the header) for committed
/// transactions. Total over arbitrary bytes: damage stops the scan, it
/// never panics and never applies an uncommitted page.
fn scan_frames(body: &[u8], page_size: usize) -> JournalReplay {
    let mut replay = JournalReplay::default();
    let mut txn: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut at = 0usize;
    loop {
        if at == body.len() {
            // Clean end: an open (uncommitted) transaction is simply
            // discarded, but it is not physical damage.
            replay.tail_discarded = !txn.is_empty();
            return replay;
        }
        let frame_len = match body[at] {
            TAG_PAGE => FRAME_OVERHEAD + page_size,
            TAG_COMMIT => FRAME_OVERHEAD,
            _ => {
                replay.tail_discarded = true;
                return replay;
            }
        };
        let Some(frame) = body.get(at..at + frame_len) else {
            replay.tail_discarded = true;
            return replay;
        };
        let stored = u32::from_le_bytes(frame[frame_len - 4..].try_into().unwrap());
        if stored != crc32(&frame[..frame_len - 4]) {
            replay.tail_discarded = true;
            return replay;
        }
        let arg = u64::from_le_bytes(frame[1..9].try_into().unwrap());
        match frame[0] {
            TAG_PAGE => {
                txn.insert(arg, frame[9..9 + page_size].to_vec());
            }
            _ => {
                // A commit marker seals the open transaction: merge it,
                // newest image per page winning.
                replay.pages.append(&mut txn);
                replay.commits += 1;
                replay.last_commit_seq = replay.last_commit_seq.max(arg);
                replay.durable_body_len = (at + frame_len) as u64;
            }
        }
        at += frame_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;

    const PS: usize = 64;

    fn img(b: u8) -> Vec<u8> {
        vec![b; PS]
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("jpmd-journal-{tag}-{}.jnl", std::process::id()))
    }

    fn pages(entries: &[(u64, u8)]) -> BTreeMap<u64, Vec<u8>> {
        entries.iter().map(|&(id, b)| (id, img(b))).collect()
    }

    #[test]
    fn committed_transactions_replay_newest_image_wins() {
        let path = tmp("replay");
        let mut j = Journal::create(&path, PS as u32, 7).unwrap();
        j.append_commit(&pages(&[(0, 1), (1, 2)]), 1).unwrap();
        j.append_commit(&pages(&[(1, 9), (4, 4)]), 2).unwrap();
        drop(j);

        let (_, replay) = Journal::open(&path, PS as u32, 7).unwrap();
        assert_eq!(replay.commits, 2);
        assert_eq!(replay.last_commit_seq, 2);
        assert!(!replay.tail_discarded);
        assert_eq!(
            replay.pages,
            pages(&[(0, 1), (1, 9), (4, 4)]),
            "page 1 takes the image of the later commit"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_discarded_but_prior_commits_survive() {
        let path = tmp("torn");
        let mut j = Journal::create(&path, PS as u32, 7).unwrap();
        j.append_commit(&pages(&[(0, 1)]), 1).unwrap();
        drop(j);
        // Simulate dying mid-commit: a page frame with no commit marker,
        // cut short.
        let mut partial = vec![TAG_PAGE];
        partial.extend_from_slice(&3u64.to_le_bytes());
        partial.extend_from_slice(&img(8)[..PS / 2]);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&partial).unwrap();
        drop(f);

        let (_, replay) = Journal::open(&path, PS as u32, 7).unwrap();
        assert_eq!(replay.commits, 1);
        assert!(replay.tail_discarded);
        assert_eq!(replay.pages, pages(&[(0, 1)]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn uncommitted_pages_are_never_applied() {
        // Full page frames but no commit marker at all.
        let mut body = Vec::new();
        body.push(TAG_PAGE);
        body.extend_from_slice(&5u64.to_le_bytes());
        body.extend_from_slice(&img(5));
        let crc = crate::crc32::crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        let replay = scan_frames(&body, PS);
        assert_eq!(replay.commits, 0);
        assert!(replay.pages.is_empty());
        assert!(replay.tail_discarded);
    }

    #[test]
    fn foreign_and_mismatched_journals_are_typed_errors() {
        let path = tmp("foreign");
        Journal::create(&path, PS as u32, 7).unwrap();
        assert!(matches!(
            Journal::open(&path, PS as u32, 8),
            Err(StoreError::ForeignJournal {
                found: 7,
                expected: 8
            })
        ));
        assert!(matches!(
            Journal::open(&path, 128, 7),
            Err(StoreError::JournalGeometry {
                found, expected: 128
            }) if found == PS as u32
        ));
        std::fs::write(&path, b"not a journal, definitely not one at all").unwrap();
        assert!(matches!(
            Journal::open(&path, PS as u32, 7),
            Err(StoreError::BadMagic { .. })
        ));
        std::fs::write(&path, b"short").unwrap();
        assert!(matches!(
            Journal::open(&path, PS as u32, 7),
            Err(StoreError::Truncated { page: 0 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_resets_to_header_only() {
        let path = tmp("trunc");
        let mut j = Journal::create(&path, PS as u32, 7).unwrap();
        j.append_commit(&pages(&[(0, 1)]), 1).unwrap();
        assert!(!j.is_empty().unwrap());
        j.truncate().unwrap();
        assert!(j.is_empty().unwrap());
        drop(j);
        let (_, replay) = Journal::open(&path, PS as u32, 7).unwrap();
        assert_eq!(replay, JournalReplay::default());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_path_appends_the_extension() {
        assert_eq!(
            journal_path(Path::new("/a/b/run.jdb")),
            Path::new("/a/b/run.jdb.jnl")
        );
        assert_eq!(journal_path(Path::new("bare")), Path::new("bare.jnl"));
    }
}
