//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), the checksum guarding
//! every header and data page of the store format.
//!
//! Implemented locally with a compile-time table: the build environment is
//! offline (see `vendor/README.md`), and the byte-at-a-time table variant
//! is plenty for trace I/O, which is dominated by disk bandwidth.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `data` (standard init `!0`, final complement).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_byte_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            let mut corrupt = data.clone();
            corrupt[i] ^= 0x40;
            assert_ne!(crc32(&corrupt), base, "flip at byte {i} undetected");
        }
    }
}
