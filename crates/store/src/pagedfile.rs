//! The run database's journaled page file: a fixed-geometry page store
//! with a write-ahead [`Journal`] and an LRU [`PageCache`].
//!
//! ```text
//! main file (<path>)                    journal (<path>.jnl)
//!   header (32 bytes)                     header (32 bytes)
//!   page 0                                page frames + commit markers
//!   page 1                                (truncated at checkpoint)
//!   …
//! ```
//!
//! Writes accumulate in an uncommitted transaction ([`PagedFile::write_page`]),
//! become durable at [`PagedFile::commit`] (journal append + fsync), and
//! migrate into the main file at [`PagedFile::checkpoint`] (write-back,
//! fsync, journal truncation). [`PagedFile::open`] replays whatever the
//! journal committed, so a process killed at **any byte** of this
//! protocol reopens to exactly the last committed state — the
//! `journal_props` property tests cut and rot the files at arbitrary
//! offsets to prove it.
//!
//! Reads go transaction → committed-pending → cache → disk, so a reader
//! always sees its own writes and never a torn page.

use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::backend::{SharedBackend, StorageFile};
use crate::crc32::crc32;
use crate::journal::{journal_path, Journal};
use crate::pagecache::PageCache;
use crate::StoreError;

/// Main-file magic: "JPMD PaGed File", generation 1.
pub const PAGED_MAGIC: [u8; 8] = *b"JPMDPGF1";
/// Paged-file format version this build understands.
pub const PAGED_VERSION: u16 = 1;
/// Bytes in the paged-file header.
pub const PAGED_HEADER_BYTES: usize = 32;
/// Smallest allowed page size.
pub const PAGED_MIN_PAGE_SIZE: u32 = 16;
/// Largest allowed page size.
pub const PAGED_MAX_PAGE_SIZE: u32 = 1 << 24;

/// Counters describing a [`PagedFile`]'s life so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagedFileStats {
    /// Transactions made durable via the journal.
    pub commits: u64,
    /// Checkpoints written back into the main file.
    pub checkpoints: u64,
    /// Committed transactions replayed from the journal at open.
    pub recovered_commits: u64,
    /// Whether open discarded a torn/uncommitted journal tail.
    pub recovered_torn_tail: bool,
}

/// A journaled page file (see the module docs for the protocol).
#[derive(Debug)]
pub struct PagedFile {
    file: Box<dyn StorageFile>,
    path: PathBuf,
    page_size: u32,
    file_id: u64,
    /// Pages that exist in committed state (main file or journal).
    committed_pages: u64,
    cache: PageCache,
    /// Uncommitted writes of the open transaction.
    txn: BTreeMap<u64, Vec<u8>>,
    /// Committed images the main file does not have yet.
    pending: BTreeMap<u64, Vec<u8>>,
    journal: Journal,
    next_commit_seq: u64,
    stats: PagedFileStats,
}

fn encode_main_header(page_size: u32, file_id: u64) -> [u8; PAGED_HEADER_BYTES] {
    let mut buf = [0u8; PAGED_HEADER_BYTES];
    buf[0..8].copy_from_slice(&PAGED_MAGIC);
    buf[8..10].copy_from_slice(&PAGED_VERSION.to_le_bytes());
    buf[10..14].copy_from_slice(&page_size.to_le_bytes());
    buf[14..22].copy_from_slice(&file_id.to_le_bytes());
    let crc = crc32(&buf[..PAGED_HEADER_BYTES - 4]);
    buf[PAGED_HEADER_BYTES - 4..].copy_from_slice(&crc.to_le_bytes());
    buf
}

fn decode_main_header(buf: &[u8; PAGED_HEADER_BYTES]) -> Result<(u32, u64), StoreError> {
    if buf[0..8] != PAGED_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&buf[0..8]);
        return Err(StoreError::BadMagic { found });
    }
    let version = u16::from_le_bytes([buf[8], buf[9]]);
    if version != PAGED_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let stored = u32::from_le_bytes(buf[PAGED_HEADER_BYTES - 4..].try_into().unwrap());
    let computed = crc32(&buf[..PAGED_HEADER_BYTES - 4]);
    if stored != computed {
        return Err(StoreError::Checksum {
            page: 0,
            stored,
            computed,
        });
    }
    let page_size = u32::from_le_bytes(buf[10..14].try_into().unwrap());
    if !(PAGED_MIN_PAGE_SIZE..=PAGED_MAX_PAGE_SIZE).contains(&page_size) {
        return Err(StoreError::BadPageSize { found: page_size });
    }
    let file_id = u64::from_le_bytes(buf[14..22].try_into().unwrap());
    Ok((page_size, file_id))
}

/// A process-random 64-bit file identity (no external RNG: seeded from
/// the standard library's per-process `RandomState`).
fn random_file_id() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    h.write_u64(0x6a70_6d64_7067_6631); // "jpmdpgf1", fixed salt
    h.finish() | 1 // never 0, so an all-zero header cannot masquerade
}

impl PagedFile {
    /// Creates (truncating) a paged file at `path` with its journal
    /// sidecar, both headers synced.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadPageSize`] for an out-of-bounds page size;
    /// otherwise I/O failures.
    pub fn create(
        path: impl AsRef<Path>,
        page_size: u32,
        cache_pages: usize,
    ) -> Result<Self, StoreError> {
        PagedFile::create_on(SharedBackend::real_fs(), path, page_size, cache_pages)
    }

    /// [`PagedFile::create`] through an explicit storage backend (the
    /// fault-injection seam).
    ///
    /// # Errors
    ///
    /// As [`PagedFile::create`], plus whatever the backend injects.
    pub fn create_on(
        backend: SharedBackend,
        path: impl AsRef<Path>,
        page_size: u32,
        cache_pages: usize,
    ) -> Result<Self, StoreError> {
        let path = path.as_ref();
        if !(PAGED_MIN_PAGE_SIZE..=PAGED_MAX_PAGE_SIZE).contains(&page_size) {
            return Err(StoreError::BadPageSize { found: page_size });
        }
        let file_id = random_file_id();
        let mut file = backend.create(path)?;
        file.write_all(&encode_main_header(page_size, file_id))?;
        file.sync_data()?;
        let journal = Journal::create_on(&*backend, &journal_path(path), page_size, file_id)?;
        Ok(PagedFile {
            file,
            path: path.to_path_buf(),
            page_size,
            file_id,
            committed_pages: 0,
            cache: PageCache::new(cache_pages),
            txn: BTreeMap::new(),
            pending: BTreeMap::new(),
            journal,
            next_commit_seq: 1,
            stats: PagedFileStats::default(),
        })
    }

    /// Opens an existing paged file, **recovering** it first: committed
    /// journal transactions are replayed into the main file and the
    /// journal is truncated; a torn tail (a crash mid-commit) is
    /// discarded. A missing journal sidecar is recreated empty.
    ///
    /// # Errors
    ///
    /// Typed header errors for a foreign/future/corrupt main file;
    /// [`StoreError::ForeignJournal`] / [`StoreError::JournalGeometry`]
    /// when the sidecar belongs to a different store; I/O failures.
    pub fn open(path: impl AsRef<Path>, cache_pages: usize) -> Result<Self, StoreError> {
        PagedFile::open_on(SharedBackend::real_fs(), path, cache_pages)
    }

    /// [`PagedFile::open`] through an explicit storage backend (the
    /// fault-injection seam). Recovery writes — journal replay into the
    /// main file, the post-replay truncation — go through the backend
    /// too, so reopening under faults is itself tortured.
    ///
    /// # Errors
    ///
    /// As [`PagedFile::open`], plus whatever the backend injects.
    pub fn open_on(
        backend: SharedBackend,
        path: impl AsRef<Path>,
        cache_pages: usize,
    ) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let mut file = backend.open_rw(path)?;
        let mut header = [0u8; PAGED_HEADER_BYTES];
        file.read_exact(&mut header).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::Truncated { page: 0 }
            } else {
                StoreError::Io(e)
            }
        })?;
        let (page_size, file_id) = decode_main_header(&header)?;
        // A partially-written trailing page (a crash mid-checkpoint)
        // rounds down here; the journal replay below rewrites it whole.
        let mut committed_pages = (file.len()? - PAGED_HEADER_BYTES as u64) / u64::from(page_size);

        let jpath = journal_path(path);
        let mut stats = PagedFileStats::default();
        let mut next_commit_seq = 1;
        let journal = if backend.exists(&jpath) {
            let (mut journal, replay) = Journal::open_on(&*backend, &jpath, page_size, file_id)?;
            if !replay.pages.is_empty() {
                for (&id, image) in &replay.pages {
                    write_page_at(file.as_mut(), page_size, id, image)?;
                    committed_pages = committed_pages.max(id + 1);
                }
                file.sync_all()?;
            }
            // Idempotent: truncating after (re)applying is safe at any
            // crash point — the next open just replays again.
            journal.truncate()?;
            stats.recovered_commits = replay.commits;
            stats.recovered_torn_tail = replay.tail_discarded;
            next_commit_seq = replay.last_commit_seq + 1;
            journal
        } else {
            Journal::create_on(&*backend, &jpath, page_size, file_id)?
        };

        Ok(PagedFile {
            file,
            path: path.to_path_buf(),
            page_size,
            file_id,
            committed_pages,
            cache: PageCache::new(cache_pages),
            txn: BTreeMap::new(),
            pending: BTreeMap::new(),
            journal,
            next_commit_seq,
            stats,
        })
    }

    /// Bytes per page.
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// The store's random identity (shared with its journal).
    pub fn file_id(&self) -> u64 {
        self.file_id
    }

    /// Pages addressable right now (committed pages plus any the open
    /// transaction appended).
    pub fn page_count(&self) -> u64 {
        let txn_top = self.txn.keys().next_back().map_or(0, |&id| id + 1);
        self.committed_pages.max(txn_top)
    }

    /// Lifetime counters (commits, checkpoints, recovery).
    pub fn stats(&self) -> PagedFileStats {
        self.stats
    }

    /// Cache hit/miss counters.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// The path this store was opened at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads one page: open-transaction image first, then
    /// committed-pending, then the cache, then the main file.
    ///
    /// # Errors
    ///
    /// [`StoreError::PageOutOfRange`] beyond [`PagedFile::page_count`];
    /// otherwise I/O failures.
    pub fn read_page(&mut self, id: u64) -> Result<Vec<u8>, StoreError> {
        if id >= self.page_count() {
            return Err(StoreError::PageOutOfRange {
                page: id,
                pages: self.page_count(),
            });
        }
        if let Some(image) = self.txn.get(&id) {
            return Ok(image.clone());
        }
        if let Some(image) = self.pending.get(&id) {
            return Ok(image.clone());
        }
        if let Some(image) = self.cache.get(id) {
            return Ok(image.to_vec());
        }
        let mut image = vec![0u8; self.page_size as usize];
        self.file
            .seek(SeekFrom::Start(page_offset(self.page_size, id)))?;
        self.file.read_exact(&mut image).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::Truncated { page: id + 1 }
            } else {
                StoreError::Io(e)
            }
        })?;
        self.cache.insert(id, image.clone());
        Ok(image)
    }

    /// Stages one page image into the open transaction. `id` may address
    /// an existing page or be exactly [`PagedFile::page_count`] (an
    /// append); sparse writes beyond that are rejected.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] when `image` is not page-sized;
    /// [`StoreError::PageOutOfRange`] for a sparse write.
    pub fn write_page(&mut self, id: u64, image: &[u8]) -> Result<(), StoreError> {
        if image.len() != self.page_size as usize {
            return Err(StoreError::InvalidConfig {
                reason: "page image must be exactly page_size bytes",
            });
        }
        if id > self.page_count() {
            return Err(StoreError::PageOutOfRange {
                page: id,
                pages: self.page_count(),
            });
        }
        self.txn.insert(id, image.to_vec());
        Ok(())
    }

    /// Pages staged in the open transaction.
    pub fn dirty_pages(&self) -> usize {
        self.txn.len()
    }

    /// Committed pages not yet checkpointed into the main file.
    pub fn pending_pages(&self) -> usize {
        self.pending.len()
    }

    /// Discards the open transaction (committed state is untouched).
    pub fn rollback(&mut self) {
        self.txn.clear();
    }

    /// Makes the open transaction durable: appends its pages and a
    /// commit marker to the journal and fsyncs. Returns the commit
    /// sequence number, or `None` for an empty transaction.
    ///
    /// # Errors
    ///
    /// Propagates journal I/O failures; the transaction then remains
    /// open (and the journal tail, if torn, is discarded by the next
    /// recovery).
    pub fn commit(&mut self) -> Result<Option<u64>, StoreError> {
        if self.txn.is_empty() {
            return Ok(None);
        }
        let seq = self.next_commit_seq;
        self.journal.append_commit(&self.txn, seq)?;
        self.next_commit_seq += 1;
        self.stats.commits += 1;
        self.committed_pages = self.page_count();
        self.pending.append(&mut self.txn);
        Ok(Some(seq))
    }

    /// Writes every committed-pending page back into the main file,
    /// fsyncs it, then truncates the journal. After this the main file
    /// alone is current.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures. A crash anywhere inside is safe: the
    /// journal still holds every pending image until the truncation, and
    /// replay is idempotent.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        if self.pending.is_empty() && self.journal.is_empty()? {
            return Ok(());
        }
        for (&id, image) in &self.pending {
            write_page_at(self.file.as_mut(), self.page_size, id, image)?;
        }
        self.file.sync_all()?;
        self.journal.truncate()?;
        self.stats.checkpoints += 1;
        // The images are now on disk: keep the hot ones readable without
        // a re-read by moving them into the clean-page cache.
        let pending = std::mem::take(&mut self.pending);
        for (id, image) in pending {
            self.cache.insert(id, image);
        }
        Ok(())
    }

    /// [`PagedFile::commit`] then [`PagedFile::checkpoint`] in one call.
    ///
    /// # Errors
    ///
    /// Propagates either step's failure.
    pub fn commit_and_checkpoint(&mut self) -> Result<Option<u64>, StoreError> {
        let seq = self.commit()?;
        self.checkpoint()?;
        Ok(seq)
    }
}

fn page_offset(page_size: u32, id: u64) -> u64 {
    PAGED_HEADER_BYTES as u64 + id * u64::from(page_size)
}

fn write_page_at(
    file: &mut dyn StorageFile,
    page_size: u32,
    id: u64,
    image: &[u8],
) -> Result<(), StoreError> {
    file.seek(SeekFrom::Start(page_offset(page_size, id)))?;
    file.write_all(image)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: u32 = 64;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("jpmd-pagedfile-{tag}-{}.jdb", std::process::id()))
    }

    fn cleanup(path: &Path) {
        std::fs::remove_file(path).ok();
        std::fs::remove_file(journal_path(path)).ok();
    }

    fn img(b: u8) -> Vec<u8> {
        vec![b; PS as usize]
    }

    #[test]
    fn read_your_writes_and_roundtrip_through_checkpoint() {
        let path = tmp("rtrip");
        let mut db = PagedFile::create(&path, PS, 4).unwrap();
        db.write_page(0, &img(1)).unwrap();
        db.write_page(1, &img(2)).unwrap();
        assert_eq!(db.read_page(0).unwrap(), img(1), "uncommitted reads back");
        assert_eq!(db.commit().unwrap(), Some(1));
        assert_eq!(db.read_page(1).unwrap(), img(2), "pending reads back");
        db.checkpoint().unwrap();
        assert_eq!(db.read_page(0).unwrap(), img(1), "checkpointed reads back");
        drop(db);
        let mut db = PagedFile::open(&path, 4).unwrap();
        assert_eq!(db.page_count(), 2);
        assert_eq!(db.read_page(1).unwrap(), img(2));
        assert_eq!(db.stats().recovered_commits, 0, "nothing left to replay");
        cleanup(&path);
    }

    #[test]
    fn committed_but_not_checkpointed_state_survives_reopen() {
        let path = tmp("recover");
        let mut db = PagedFile::create(&path, PS, 4).unwrap();
        db.write_page(0, &img(1)).unwrap();
        db.commit_and_checkpoint().unwrap();
        db.write_page(0, &img(9)).unwrap();
        db.write_page(1, &img(2)).unwrap();
        db.commit().unwrap();
        drop(db); // no checkpoint: images live only in the journal

        let mut db = PagedFile::open(&path, 4).unwrap();
        assert_eq!(db.stats().recovered_commits, 1);
        assert!(!db.stats().recovered_torn_tail);
        assert_eq!(db.read_page(0).unwrap(), img(9), "journal image wins");
        assert_eq!(db.read_page(1).unwrap(), img(2), "appended page recovered");
        assert_eq!(db.page_count(), 2);
        cleanup(&path);
    }

    #[test]
    fn uncommitted_writes_die_with_the_process() {
        let path = tmp("uncommitted");
        let mut db = PagedFile::create(&path, PS, 4).unwrap();
        db.write_page(0, &img(1)).unwrap();
        db.commit_and_checkpoint().unwrap();
        db.write_page(0, &img(9)).unwrap(); // never committed
        drop(db);
        let mut db = PagedFile::open(&path, 4).unwrap();
        assert_eq!(db.read_page(0).unwrap(), img(1));
        cleanup(&path);
    }

    #[test]
    fn rollback_discards_only_the_open_transaction() {
        let path = tmp("rollback");
        let mut db = PagedFile::create(&path, PS, 4).unwrap();
        db.write_page(0, &img(1)).unwrap();
        db.commit().unwrap();
        db.write_page(0, &img(9)).unwrap();
        db.write_page(1, &img(2)).unwrap();
        assert_eq!(db.page_count(), 2);
        db.rollback();
        assert_eq!(db.page_count(), 1, "appended page rolled back");
        assert_eq!(db.read_page(0).unwrap(), img(1));
        cleanup(&path);
    }

    #[test]
    fn out_of_range_and_misshapen_accesses_are_typed() {
        let path = tmp("bounds");
        let mut db = PagedFile::create(&path, PS, 4).unwrap();
        assert!(matches!(
            db.read_page(0),
            Err(StoreError::PageOutOfRange { page: 0, pages: 0 })
        ));
        assert!(matches!(
            db.write_page(1, &img(1)),
            Err(StoreError::PageOutOfRange { page: 1, pages: 0 })
        ));
        assert!(matches!(
            db.write_page(0, &[0u8; 3]),
            Err(StoreError::InvalidConfig { .. })
        ));
        assert!(matches!(
            PagedFile::create(tmp("badps"), 8, 4),
            Err(StoreError::BadPageSize { found: 8 })
        ));
        cleanup(&path);
    }

    #[test]
    fn cache_serves_repeated_reads_through_eviction_churn() {
        let path = tmp("cache");
        let mut db = PagedFile::create(&path, PS, 2).unwrap();
        for id in 0..6u64 {
            db.write_page(id, &img(id as u8)).unwrap();
        }
        db.commit_and_checkpoint().unwrap();
        drop(db);
        let mut db = PagedFile::open(&path, 2).unwrap();
        for round in 0..3 {
            for id in 0..6u64 {
                assert_eq!(db.read_page(id).unwrap(), img(id as u8), "round {round}");
            }
        }
        let (hits, misses) = db.cache_stats();
        assert!(misses >= 6, "first pass misses every page");
        assert!(hits + misses == 18);
        cleanup(&path);
    }

    #[test]
    fn crash_between_writeback_and_truncate_replays_idempotently() {
        let path = tmp("idempotent");
        let mut db = PagedFile::create(&path, PS, 4).unwrap();
        db.write_page(0, &img(5)).unwrap();
        db.commit().unwrap();
        drop(db);
        // First reopen replays. Simulate a crash *after* write-back by
        // reopening again with the pre-truncation journal restored.
        let jpath = journal_path(&path);
        let journal_bytes = std::fs::read(&jpath).unwrap();
        let mut db = PagedFile::open(&path, 4).unwrap();
        assert_eq!(db.read_page(0).unwrap(), img(5));
        drop(db);
        std::fs::write(&jpath, journal_bytes).unwrap();
        let mut db = PagedFile::open(&path, 4).unwrap();
        assert_eq!(db.read_page(0).unwrap(), img(5), "replaying twice is safe");
        cleanup(&path);
    }

    #[test]
    fn a_deleted_journal_is_recreated_empty() {
        let path = tmp("nojournal");
        let mut db = PagedFile::create(&path, PS, 4).unwrap();
        db.write_page(0, &img(1)).unwrap();
        db.commit_and_checkpoint().unwrap();
        drop(db);
        std::fs::remove_file(journal_path(&path)).unwrap();
        let mut db = PagedFile::open(&path, 4).unwrap();
        assert_eq!(db.read_page(0).unwrap(), img(1));
        assert!(journal_path(&path).exists());
        cleanup(&path);
    }

    #[test]
    fn commit_sequence_continues_across_reopen() {
        let path = tmp("seq");
        let mut db = PagedFile::create(&path, PS, 4).unwrap();
        db.write_page(0, &img(1)).unwrap();
        assert_eq!(db.commit().unwrap(), Some(1));
        db.write_page(0, &img(2)).unwrap();
        assert_eq!(db.commit().unwrap(), Some(2));
        drop(db);
        let mut db = PagedFile::open(&path, 4).unwrap();
        db.write_page(0, &img(3)).unwrap();
        assert_eq!(db.commit().unwrap(), Some(3), "seq resumes after replay");
        cleanup(&path);
    }
}
