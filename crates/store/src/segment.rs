//! Segmented JSONL WALs and gap-free compaction.
//!
//! Resuming a run used to mean rewriting the telemetry WAL in place
//! (scan, trim, append) — O(file) work per resume and a fault window
//! while the rewrite runs. Segments make resume O(1): the original WAL
//! stays untouched as segment 0 (`<base>`), and each resume opens a new
//! append-only segment next to it (`<base>.seg1`, `<base>.seg2`, …)
//! starting at the resumed sequence number.
//!
//! A later segment *shadows* the tail of every earlier one from its
//! first sequence number onward (the resumed run re-emits those
//! records). [`compact_segments`] folds the chain back into one
//! gap-free stream: for each segment it keeps exactly the lines whose
//! seq precedes the next segment's first seq, drops unparseable lines
//! (torn tails from crashes), and writes the result atomically
//! (temp file + rename + parent-dir fsync).
//!
//! The module is generic over *how* a line's seq is extracted — callers
//! pass a closure — so the store crate never needs to know the JSON
//! shape of `ObsRecord`.

use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::durability::sync_parent_dir;
use crate::StoreError;

/// The path of segment `n` of a WAL: the base itself for `n == 0`,
/// `<base>.seg<n>` otherwise.
pub fn segment_path(base: &Path, n: u32) -> PathBuf {
    if n == 0 {
        return base.to_path_buf();
    }
    let mut name = base.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".seg{n}"));
    base.with_file_name(name)
}

/// Discovers the segment chain for `base`: `[base, base.seg1, …]`,
/// stopping at the first missing generation (segments are created in
/// order, so a gap means the chain ends there). Returns an empty vec
/// when not even the base exists.
pub fn segment_paths(base: &Path) -> Vec<PathBuf> {
    let mut paths = Vec::new();
    if !base.exists() {
        return paths;
    }
    paths.push(base.to_path_buf());
    for n in 1.. {
        let p = segment_path(base, n);
        if !p.exists() {
            break;
        }
        paths.push(p);
    }
    paths
}

/// The path a new resume segment should be created at: the first unused
/// generation after the existing chain.
pub fn next_segment_path(base: &Path) -> PathBuf {
    let existing = segment_paths(base).len() as u32;
    // No base yet → the base itself is "segment 0".
    segment_path(base, existing.max(1) * u32::from(existing > 0))
}

/// What [`compact_segments`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Segments that fed the compaction.
    pub segments: usize,
    /// Lines read across all segments.
    pub lines_in: u64,
    /// Lines written to the compacted stream.
    pub lines_out: u64,
    /// Lines dropped because a later segment shadowed them.
    pub shadowed: u64,
    /// Lines dropped because the seq extractor rejected them
    /// (torn/corrupt lines).
    pub dropped: u64,
}

/// Folds the segment chain of `base` into one gap-free stream at `out`,
/// atomically. `seq_of` extracts the sequence number from one line
/// (without its newline); returning `None` drops the line as corrupt.
///
/// Within each segment, only lines with strictly increasing seq are
/// kept (a corrupt middle cannot smuggle a replay in); across segments,
/// a segment's lines are kept only up to (exclusive) the next segment's
/// first seq.
///
/// # Errors
///
/// [`StoreError::InvalidConfig`] when `base` has no segments, or when
/// `out` equals one of the input segments; I/O failures otherwise.
pub fn compact_segments(
    base: &Path,
    out: &Path,
    mut seq_of: impl FnMut(&str) -> Option<u64>,
) -> Result<CompactionReport, StoreError> {
    let segments = segment_paths(base);
    if segments.is_empty() {
        return Err(StoreError::InvalidConfig {
            reason: "no segments to compact",
        });
    }
    if segments.iter().any(|s| s == out) {
        return Err(StoreError::InvalidConfig {
            reason: "compaction output must not be an input segment",
        });
    }

    // First parseable seq of each segment; the cut-off for segment i is
    // the minimum first-seq of any *later* segment (resume targets only
    // move backward relative to what they shadow).
    let mut first_seqs: Vec<Option<u64>> = Vec::with_capacity(segments.len());
    for path in &segments {
        let reader = BufReader::new(File::open(path)?);
        let mut first = None;
        for line in reader.lines() {
            if let Some(seq) = seq_of(&line?) {
                first = Some(seq);
                break;
            }
        }
        first_seqs.push(first);
    }
    let mut cutoffs: Vec<Option<u64>> = vec![None; segments.len()];
    let mut min_later: Option<u64> = None;
    for i in (0..segments.len()).rev() {
        cutoffs[i] = min_later;
        if let Some(f) = first_seqs[i] {
            min_later = Some(min_later.map_or(f, |m: u64| m.min(f)));
        }
    }

    let tmp = out.with_extension("compact.tmp");
    let mut writer = BufWriter::new(File::create(&tmp)?);
    let mut report = CompactionReport {
        segments: segments.len(),
        lines_in: 0,
        lines_out: 0,
        shadowed: 0,
        dropped: 0,
    };
    let mut last_written: Option<u64> = None;
    for (i, path) in segments.iter().enumerate() {
        let reader = BufReader::new(File::open(path)?);
        for line in reader.lines() {
            let line = line?;
            report.lines_in += 1;
            let Some(seq) = seq_of(&line) else {
                report.dropped += 1;
                continue;
            };
            if cutoffs[i].is_some_and(|cut| seq >= cut) {
                report.shadowed += 1;
                continue;
            }
            if last_written.is_some_and(|last| seq <= last) {
                report.dropped += 1;
                continue;
            }
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
            last_written = Some(seq);
            report.lines_out += 1;
        }
    }
    writer.flush()?;
    writer
        .into_inner()
        .map_err(|e| e.into_error())?
        .sync_data()?;
    fs::rename(&tmp, out)?;
    sync_parent_dir(out)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("jpmd-seg-{tag}-{}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn seq_of(line: &str) -> Option<u64> {
        line.strip_prefix("s=")?.parse().ok()
    }

    fn write_lines(path: &Path, seqs: &[u64]) {
        let body: String = seqs.iter().map(|s| format!("s={s}\n")).collect();
        fs::write(path, body).unwrap();
    }

    #[test]
    fn segment_paths_and_naming() {
        let d = tmpdir("paths");
        let base = d.join("wal.jsonl");
        assert_eq!(segment_path(&base, 0), base);
        assert_eq!(segment_path(&base, 2), d.join("wal.jsonl.seg2"));
        assert!(segment_paths(&base).is_empty());
        write_lines(&base, &[1]);
        assert_eq!(next_segment_path(&base), d.join("wal.jsonl.seg1"));
        write_lines(&d.join("wal.jsonl.seg1"), &[1]);
        write_lines(&d.join("wal.jsonl.seg3"), &[1]); // gap: ignored
        assert_eq!(segment_paths(&base).len(), 2);
        assert_eq!(next_segment_path(&base), d.join("wal.jsonl.seg2"));
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn compaction_shadows_resumed_tails_gap_free() {
        let d = tmpdir("shadow");
        let base = d.join("wal.jsonl");
        write_lines(&base, &[1, 2, 3, 4, 5]);
        write_lines(&segment_path(&base, 1), &[4, 5, 6, 7]); // resumed at 4
        write_lines(&segment_path(&base, 2), &[6, 7, 8]); // resumed at 6
        let out = d.join("compact.jsonl");
        let report = compact_segments(&base, &out, seq_of).unwrap();
        assert_eq!(report.lines_out, 8);
        assert_eq!(report.shadowed, 4, "4,5 of base and 6,7 of seg1");
        assert_eq!(report.dropped, 0);
        let got: Vec<u64> = fs::read_to_string(&out)
            .unwrap()
            .lines()
            .map(|l| seq_of(l).unwrap())
            .collect();
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6, 7, 8], "gap-free stream");
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn corrupt_lines_drop_without_breaking_order() {
        let d = tmpdir("rot");
        let base = d.join("wal.jsonl");
        fs::write(&base, "s=1\ngarbage\ns=2\ns=9\ns=3\n").unwrap();
        write_lines(&segment_path(&base, 1), &[3, 4]);
        let out = d.join("compact.jsonl");
        let report = compact_segments(&base, &out, seq_of).unwrap();
        let got: Vec<u64> = fs::read_to_string(&out)
            .unwrap()
            .lines()
            .map(|l| seq_of(l).unwrap())
            .collect();
        assert_eq!(got, vec![1, 2, 3, 4], "garbage + shadowed 9 + stale 3 gone");
        assert_eq!(report.dropped, 1, "only `garbage` fails the extractor");
        assert_eq!(report.shadowed, 2, "9 and the stale 3 fall past seg1's cut");
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn single_segment_compaction_is_identity_modulo_corruption() {
        let d = tmpdir("single");
        let base = d.join("wal.jsonl");
        write_lines(&base, &[1, 2, 3]);
        let out = d.join("compact.jsonl");
        let report = compact_segments(&base, &out, seq_of).unwrap();
        assert_eq!(report.lines_out, 3);
        assert_eq!(report.shadowed, 0);
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn misuse_is_typed() {
        let d = tmpdir("typed");
        let base = d.join("missing.jsonl");
        assert!(matches!(
            compact_segments(&base, &d.join("out"), seq_of),
            Err(StoreError::InvalidConfig { .. })
        ));
        write_lines(&base, &[1]);
        assert!(matches!(
            compact_segments(&base, &base, seq_of),
            Err(StoreError::InvalidConfig { .. })
        ));
        fs::remove_dir_all(&d).ok();
    }
}
