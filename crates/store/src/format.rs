//! On-disk layout of the `.jpt` trace store.
//!
//! All integers are little-endian. A file is one fixed-size header
//! followed by zero or more fixed-size data pages:
//!
//! ```text
//! header (64 bytes)
//!   0..8    magic            b"JPMDTRC1"
//!   8..10   version          u16  (currently 1)
//!   10..12  record size      u16  (currently 29)
//!   12..16  store page size  u32  (bytes per data page; default 4096)
//!   16..24  trace page size  u64  (Trace::page_bytes)
//!   24..32  total pages      u64  (Trace::total_pages, the data set)
//!   32..40  record count     u64
//!   40..60  reserved         zeros
//!   60..64  CRC-32 of bytes 0..60
//!
//! data page (page-size bytes)
//!   0..4            records in this page (u32)
//!   4..4+n*29       n packed records
//!   …               zero padding
//!   last 4 bytes    CRC-32 of everything before it
//!
//! record (29 bytes)
//!   0..8    time        f64 bit pattern (exact round-trip)
//!   8..12   file id     u32
//!   12..20  first page  u64
//!   20..28  pages       u64
//!   28      kind        u8 (0 = read, 1 = write)
//! ```
//!
//! Every page but the last must be full; the last may be partial. Pages
//! are always padded to the full page size, so the expected file length is
//! `64 + ceil(record_count / capacity) * page_size` exactly.
//!
//! **Versioning:** readers accept only their own `version`; any layout
//! change (field widths, record stride, checksum scope) bumps it. The
//! record-size field lets old readers reject new strides with a precise
//! error instead of decoding garbage.

use jpmd_trace::{AccessKind, FileId, TraceRecord};

use crate::crc32::crc32;
use crate::StoreError;

/// File magic: "JPMD TRaCe", format generation 1.
pub const MAGIC: [u8; 8] = *b"JPMDTRC1";
/// Format version readers of this build understand.
pub const VERSION: u16 = 1;
/// Bytes per packed record.
pub const RECORD_BYTES: usize = 29;
/// Bytes in the file header.
pub const HEADER_BYTES: usize = 64;
/// Per-page overhead: leading record count + trailing CRC.
pub const PAGE_OVERHEAD: usize = 8;
/// Default data-page size.
pub const DEFAULT_PAGE_SIZE: u32 = 4096;
/// Smallest allowed data-page size (fits one record).
pub const MIN_PAGE_SIZE: u32 = (PAGE_OVERHEAD + RECORD_BYTES) as u32;
/// Largest allowed data-page size.
pub const MAX_PAGE_SIZE: u32 = 1 << 24;

/// Decoded file header: the store's geometry and the trace metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Bytes per data page.
    pub page_size: u32,
    /// Trace page size ([`Trace::page_bytes`](jpmd_trace::Trace::page_bytes)).
    pub page_bytes: u64,
    /// Data-set size in trace pages.
    pub total_pages: u64,
    /// Records stored in the file.
    pub record_count: u64,
}

impl Header {
    /// Records per data page at this page size.
    pub fn capacity(&self) -> u32 {
        ((self.page_size as usize - PAGE_OVERHEAD) / RECORD_BYTES) as u32
    }

    /// Number of data pages holding `record_count` records.
    pub fn data_pages(&self) -> u64 {
        let cap = self.capacity() as u64;
        self.record_count / cap + u64::from(!self.record_count.is_multiple_of(cap))
    }

    /// Checks the page size bounds.
    pub(crate) fn validate_page_size(page_size: u32) -> Result<(), StoreError> {
        if (MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) {
            Ok(())
        } else {
            Err(StoreError::BadPageSize { found: page_size })
        }
    }

    /// Serializes the header, including its CRC.
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut buf = [0u8; HEADER_BYTES];
        buf[0..8].copy_from_slice(&MAGIC);
        buf[8..10].copy_from_slice(&VERSION.to_le_bytes());
        buf[10..12].copy_from_slice(&(RECORD_BYTES as u16).to_le_bytes());
        buf[12..16].copy_from_slice(&self.page_size.to_le_bytes());
        buf[16..24].copy_from_slice(&self.page_bytes.to_le_bytes());
        buf[24..32].copy_from_slice(&self.total_pages.to_le_bytes());
        buf[32..40].copy_from_slice(&self.record_count.to_le_bytes());
        let crc = crc32(&buf[..HEADER_BYTES - 4]);
        buf[HEADER_BYTES - 4..].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Parses and validates a header.
    ///
    /// Identity fields (magic, version, record size) are checked before
    /// the CRC so a foreign or future-format file is reported as such;
    /// bit corruption elsewhere in the header surfaces as
    /// [`StoreError::Checksum`] on page 0.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`],
    /// [`StoreError::BadRecordSize`], [`StoreError::Checksum`], or
    /// [`StoreError::BadPageSize`].
    pub fn decode(buf: &[u8; HEADER_BYTES]) -> Result<Self, StoreError> {
        if buf[0..8] != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&buf[0..8]);
            return Err(StoreError::BadMagic { found });
        }
        let version = u16::from_le_bytes([buf[8], buf[9]]);
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let record_bytes = u16::from_le_bytes([buf[10], buf[11]]);
        if record_bytes as usize != RECORD_BYTES {
            return Err(StoreError::BadRecordSize {
                found: record_bytes,
            });
        }
        let stored = u32::from_le_bytes(buf[HEADER_BYTES - 4..].try_into().unwrap());
        let computed = crc32(&buf[..HEADER_BYTES - 4]);
        if stored != computed {
            return Err(StoreError::Checksum {
                page: 0,
                stored,
                computed,
            });
        }
        let header = Header {
            page_size: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
            page_bytes: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
            total_pages: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
            record_count: u64::from_le_bytes(buf[32..40].try_into().unwrap()),
        };
        Self::validate_page_size(header.page_size)?;
        Ok(header)
    }
}

/// Packs one record into `buf` (exactly [`RECORD_BYTES`] long).
pub(crate) fn encode_record(record: &TraceRecord, buf: &mut [u8]) {
    debug_assert_eq!(buf.len(), RECORD_BYTES);
    buf[0..8].copy_from_slice(&record.time.to_le_bytes());
    buf[8..12].copy_from_slice(&record.file.0.to_le_bytes());
    buf[12..20].copy_from_slice(&record.first_page.to_le_bytes());
    buf[20..28].copy_from_slice(&record.pages.to_le_bytes());
    buf[28] = match record.kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
    };
}

/// Unpacks one record from `buf`; `index` is its stream position for error
/// reporting.
pub(crate) fn decode_record(buf: &[u8], index: u64) -> Result<TraceRecord, StoreError> {
    debug_assert_eq!(buf.len(), RECORD_BYTES);
    let kind = match buf[28] {
        0 => AccessKind::Read,
        1 => AccessKind::Write,
        value => return Err(StoreError::BadKind { index, value }),
    };
    Ok(TraceRecord {
        time: f64::from_le_bytes(buf[0..8].try_into().unwrap()),
        file: FileId(u32::from_le_bytes(buf[8..12].try_into().unwrap())),
        first_page: u64::from_le_bytes(buf[12..20].try_into().unwrap()),
        pages: u64::from_le_bytes(buf[20..28].try_into().unwrap()),
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Header {
        Header {
            page_size: DEFAULT_PAGE_SIZE,
            page_bytes: 1 << 20,
            total_pages: 4096,
            record_count: 1000,
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = header();
        assert_eq!(Header::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn capacity_and_page_math() {
        let h = header();
        assert_eq!(h.capacity(), (4096 - 8) / 29);
        assert_eq!(h.data_pages(), 1000 / 140 + 1);
        let empty = Header {
            record_count: 0,
            ..h
        };
        assert_eq!(empty.data_pages(), 0);
        let exact = Header {
            record_count: 280,
            ..h
        };
        assert_eq!(exact.data_pages(), 2);
    }

    #[test]
    fn bad_magic_is_detected_before_crc() {
        let mut buf = header().encode();
        buf[0] = b'X';
        assert!(matches!(
            Header::decode(&buf),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_is_rejected_by_name() {
        let mut h = header().encode();
        h[8..10].copy_from_slice(&2u16.to_le_bytes());
        let crc = crate::crc32::crc32(&h[..HEADER_BYTES - 4]);
        h[HEADER_BYTES - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Header::decode(&h),
            Err(StoreError::UnsupportedVersion { found: 2 })
        ));
        // Even without a fixed-up CRC the version check comes first.
        let mut raw = header().encode();
        raw[8] = 9;
        assert!(matches!(
            Header::decode(&raw),
            Err(StoreError::UnsupportedVersion { found: 9 })
        ));
    }

    #[test]
    fn header_bitflip_fails_checksum() {
        let mut buf = header().encode();
        buf[20] ^= 0x01; // inside page_bytes
        assert!(matches!(
            Header::decode(&buf),
            Err(StoreError::Checksum { page: 0, .. })
        ));
    }

    #[test]
    fn record_roundtrip_is_bit_exact() {
        let r = TraceRecord {
            time: 1234.5678e-3,
            file: FileId(77),
            first_page: u64::MAX - 5,
            pages: 3,
            kind: AccessKind::Write,
        };
        let mut buf = [0u8; RECORD_BYTES];
        encode_record(&r, &mut buf);
        let back = decode_record(&buf, 0).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.time.to_bits(), r.time.to_bits());
    }

    #[test]
    fn bad_kind_byte_is_typed() {
        let mut buf = [0u8; RECORD_BYTES];
        encode_record(
            &TraceRecord {
                time: 0.0,
                file: FileId(0),
                first_page: 0,
                pages: 1,
                kind: AccessKind::Read,
            },
            &mut buf,
        );
        buf[28] = 7;
        assert!(matches!(
            decode_record(&buf, 42),
            Err(StoreError::BadKind {
                index: 42,
                value: 7
            })
        ));
    }
}
