//! Crash-window property tests for the journaled page file: a process
//! killed at **any byte** of the commit protocol reopens to exactly the
//! state after some committed prefix — never a panic, never a torn page,
//! never state that no commit sequence could have produced. A journal
//! belonging to a different store is rejected before it can touch the
//! main file.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

use jpmd_store::{journal_path, PagedFile, StoreError};
use proptest::prelude::*;

const PS: u32 = 32;
/// Commits folded into the main file by the base checkpoint.
const BASE_COMMITS: u64 = 2;
/// Total commits; those past `BASE_COMMITS` live only in the journal.
const TOTAL_COMMITS: u64 = 6;
const DATA_PAGES: u64 = 3;

/// The page fill byte commit `c` writes (distinct per commit, so page 0
/// identifies the last applied commit after recovery).
fn fill(c: u64) -> u8 {
    (c * 31 + 7) as u8
}

fn img(b: u8) -> Vec<u8> {
    vec![b; PS as usize]
}

/// The pages commit `c` (1-based) writes: page 0 as a commit counter,
/// plus one rotating data page.
fn commit_pages(c: u64) -> Vec<(u64, Vec<u8>)> {
    vec![(0, img(fill(c))), ((c - 1) % DATA_PAGES + 1, img(fill(c)))]
}

/// The full expected page image after commits `1..=k`.
fn state_after(k: u64) -> BTreeMap<u64, Vec<u8>> {
    let mut state = BTreeMap::new();
    for c in 1..=k {
        state.extend(commit_pages(c));
    }
    state
}

struct Fixture {
    main_bytes: Vec<u8>,
    journal_bytes: Vec<u8>,
}

/// One store built the same way for every property case: two commits
/// checkpointed into the main file, four more durable only in the
/// journal.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let path = scratch("seed");
        let mut db = PagedFile::create(&path, PS, 4).expect("create fixture store");
        for c in 1..=TOTAL_COMMITS {
            for (id, image) in commit_pages(c) {
                db.write_page(id, &image).expect("stage page");
            }
            db.commit().expect("commit");
            if c == BASE_COMMITS {
                db.checkpoint().expect("base checkpoint");
            }
        }
        drop(db);
        let fixture = Fixture {
            main_bytes: fs::read(&path).expect("read main file"),
            journal_bytes: fs::read(journal_path(&path)).expect("read journal"),
        };
        fs::remove_file(&path).ok();
        fs::remove_file(journal_path(&path)).ok();
        fixture
    })
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "jpmd-journal-props-{tag}-{}.jdb",
        std::process::id()
    ))
}

/// Materializes the fixture's main file plus an arbitrary journal image,
/// opens it (running recovery), and returns every readable page.
fn open_mutated(
    tag: &str,
    journal_bytes: &[u8],
) -> Result<(BTreeMap<u64, Vec<u8>>, u64), StoreError> {
    let path = scratch(tag);
    fs::write(&path, &fixture().main_bytes).expect("write main file");
    fs::write(journal_path(&path), journal_bytes).expect("write journal");
    let result = (|| {
        let mut db = PagedFile::open(&path, 4)?;
        let mut pages = BTreeMap::new();
        for id in 0..db.page_count() {
            pages.insert(id, db.read_page(id)?);
        }
        Ok((pages, db.stats().recovered_commits))
    })();
    fs::remove_file(&path).ok();
    fs::remove_file(journal_path(&path)).ok();
    result
}

/// Asserts a recovered page image is exactly `state_after(k)` for some
/// commit prefix `k`, identified by the counter page, with at least the
/// checkpointed commits present. Returns `k`.
fn assert_is_commit_prefix(pages: &BTreeMap<u64, Vec<u8>>) -> u64 {
    let counter = pages.get(&0).expect("page 0 always exists");
    let k = (BASE_COMMITS..=TOTAL_COMMITS)
        .find(|&c| counter == &img(fill(c)))
        .unwrap_or_else(|| panic!("counter page matches no commit: {:?}…", &counter[..4]));
    assert_eq!(
        pages,
        &state_after(k),
        "recovered state must be exactly the commit-{k} prefix"
    );
    k
}

proptest! {
    // Killing the process at any byte of the journal — mid-frame,
    // mid-marker, even inside the header — reopens to a committed
    // prefix, or fails with a typed error when the header itself is
    // gone. Never a panic, never a half-applied transaction.
    #[test]
    fn truncation_at_any_offset_recovers_a_commit_prefix(cut_seed in any::<u64>()) {
        let journal = &fixture().journal_bytes;
        let cut = (cut_seed % (journal.len() as u64 + 1)) as usize;
        match open_mutated("truncate", &journal[..cut]) {
            Ok((pages, recovered)) => {
                let k = assert_is_commit_prefix(&pages);
                prop_assert_eq!(recovered, k - BASE_COMMITS, "replayed exactly the prefix");
                // A cut past a commit's marker must preserve that commit.
                if cut == journal.len() {
                    prop_assert_eq!(k, TOTAL_COMMITS, "an intact journal loses nothing");
                }
            }
            Err(err) => {
                // Only a destroyed journal *header* may refuse to open.
                prop_assert!(
                    cut < jpmd_store::journal::JOURNAL_HEADER_BYTES,
                    "cut at {} of {} must recover, got {:?}",
                    cut,
                    journal.len(),
                    err
                );
            }
        }
    }

    // Any single rotten byte anywhere in the journal is either caught by
    // a CRC (the damaged suffix is discarded, the prefix replays) or
    // rejected as a typed header error. The recovered state is always a
    // commit prefix — rot can cost durability of the tail, never
    // integrity of what remains.
    #[test]
    fn single_byte_rot_recovers_a_prefix_or_types_an_error(
        offset_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let mut journal = fixture().journal_bytes.clone();
        let offset = (offset_seed % journal.len() as u64) as usize;
        journal[offset] ^= xor;
        match open_mutated("rot", &journal) {
            Ok((pages, _)) => {
                assert_is_commit_prefix(&pages);
            }
            Err(StoreError::Io(e)) => {
                panic!("rot at {offset} (xor {xor:#04x}) must be typed, got Io({e})");
            }
            Err(_) => {} // typed rejection (header rot) is the other legal outcome
        }
    }
}

#[test]
fn a_foreign_journal_never_touches_the_main_file() {
    // Store B is healthy and checkpointed; store A's journal (same
    // geometry, different random file id) lands next to it — the
    // restored-from-backup scenario. Recovery must refuse before
    // rewriting a single page.
    let a = scratch("foreign-a");
    let b = scratch("foreign-b");
    let mut db = PagedFile::create(&a, PS, 4).unwrap();
    db.write_page(0, &img(0xAA)).unwrap();
    db.commit().unwrap(); // journal holds an image for page 0
    drop(db);
    let mut db = PagedFile::create(&b, PS, 4).unwrap();
    db.write_page(0, &img(0xBB)).unwrap();
    db.commit_and_checkpoint().unwrap();
    drop(db);
    let b_main = fs::read(&b).unwrap();

    fs::copy(journal_path(&a), journal_path(&b)).unwrap();
    match PagedFile::open(&b, 4) {
        Err(StoreError::ForeignJournal { .. }) => {}
        other => panic!("expected ForeignJournal, got {other:?}"),
    }
    assert_eq!(
        fs::read(&b).unwrap(),
        b_main,
        "the rejected journal must not have modified the main file"
    );

    // Operator remediation — removing the foreign sidecar — restores
    // service with the store's own checkpointed state.
    fs::remove_file(journal_path(&b)).unwrap();
    let mut db = PagedFile::open(&b, 4).unwrap();
    assert_eq!(db.read_page(0).unwrap(), img(0xBB));
    for p in [&a, &b] {
        fs::remove_file(p).ok();
        fs::remove_file(journal_path(p)).ok();
    }
}

#[test]
fn a_geometry_mismatched_journal_is_rejected() {
    let a = scratch("geom-a");
    let b = scratch("geom-b");
    let mut db = PagedFile::create(&a, 64, 4).unwrap();
    db.write_page(0, &[1u8; 64]).unwrap();
    db.commit().unwrap();
    drop(db);
    PagedFile::create(&b, PS, 4).unwrap();
    fs::copy(journal_path(&a), journal_path(&b)).unwrap();
    assert!(
        PagedFile::open(&b, 4).is_err(),
        "a journal with the wrong page size must not replay"
    );
    for p in [&a, &b] {
        fs::remove_file(p).ok();
        fs::remove_file(journal_path(p)).ok();
    }
}
