//! Property tests for the recovering reader: whatever single-page damage
//! a store suffers, `TraceReader::new_recovering` never panics, never
//! loses more than the damaged page's records, and keeps every record of
//! every healthy page bit-exact and in order.

use std::io::Cursor;

use jpmd_store::{TraceReader, TraceWriter};
use jpmd_trace::{AccessKind, FileId, TraceRecord};
use proptest::prelude::*;

/// A sorted, well-formed record sequence over a 256-page data set.
fn arb_records() -> impl Strategy<Value = Vec<TraceRecord>> {
    prop::collection::vec((0.001f64..10.0, 0u64..200, 1u64..4, 0u8..2), 1..120).prop_map(|recs| {
        let mut time = 0.0;
        recs.into_iter()
            .map(|(dt, first_page, pages, write)| {
                time += dt;
                TraceRecord {
                    time,
                    file: FileId(first_page as u32),
                    first_page,
                    pages,
                    kind: if write == 1 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                }
            })
            .collect()
    })
}

fn to_store(records: &[TraceRecord], page_size: u32) -> Vec<u8> {
    let mut writer =
        TraceWriter::with_page_size(Cursor::new(Vec::new()), 1 << 20, 256, page_size).expect("w");
    for record in records {
        writer.write_record(record).expect("write");
    }
    writer.finish().expect("finish").into_inner()
}

const HEADER_BYTES: usize = 64;

proptest! {
    // Flipping one byte anywhere in the *data* region loses at most the
    // records of the page the byte lands in; everything else streams out
    // bit-exact, in order, and the loss is reported precisely.
    #[test]
    fn single_page_corruption_loses_at_most_that_page(
        records in arb_records(),
        page_size in prop::sample::select(vec![66u32, 120, 4096]),
        offset_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let clean = to_store(&records, page_size);
        let data_len = clean.len() - HEADER_BYTES;
        let offset = HEADER_BYTES + (offset_seed as usize % data_len);
        let mut bytes = clean;
        bytes[offset] ^= xor;

        let damaged_page = (offset - HEADER_BYTES) / page_size as usize + 1;
        let capacity = (page_size as usize - 8) / 29;
        let first_lost = (damaged_page - 1) * capacity;
        let last_lost = (first_lost + capacity).min(records.len());

        let mut reader = TraceReader::new_recovering(Cursor::new(bytes)).expect("header intact");
        let mut salvaged = Vec::new();
        for record in &mut reader {
            salvaged.push(record.expect("recovery mode never yields page corruption"));
        }
        let skipped = reader.skipped();

        if skipped.is_empty() {
            // The flip hit page padding; full recovery.
            prop_assert_eq!(salvaged, records);
        } else {
            // Exactly one page skipped, and it is the damaged one.
            prop_assert_eq!(skipped.pages.len(), 1);
            prop_assert_eq!(skipped.pages[0].page, damaged_page as u64);
            let expected: Vec<TraceRecord> = records[..first_lost]
                .iter()
                .chain(&records[last_lost..])
                .copied()
                .collect();
            prop_assert_eq!(salvaged, expected);
            prop_assert_eq!(
                skipped.records_lost as usize,
                last_lost - first_lost
            );
        }
    }

    // Truncating the file anywhere never panics a recovering reader and
    // yields a clean prefix of the original records, with the missing
    // tail accounted record for record.
    #[test]
    fn truncation_yields_a_clean_prefix(
        records in arb_records(),
        cut_seed in any::<u64>(),
    ) {
        let bytes = to_store(&records, 66);
        let cut = HEADER_BYTES + (cut_seed as usize % (bytes.len() - HEADER_BYTES + 1));
        let mut reader =
            TraceReader::new_recovering(Cursor::new(bytes[..cut].to_vec())).expect("header intact");
        let mut salvaged = Vec::new();
        for record in &mut reader {
            salvaged.push(record.expect("truncation is not fatal in recovery mode"));
        }
        prop_assert_eq!(&salvaged[..], &records[..salvaged.len()]);
        prop_assert_eq!(
            salvaged.len() as u64 + reader.skipped().records_lost,
            records.len() as u64
        );
    }
}
