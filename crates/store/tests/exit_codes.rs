//! `trace_tool` honors the workspace exit-code convention: `0` ok, `1`
//! runtime failure, `2` bad invocation — the shared `jpmd_store::cli`
//! contract, tested by spawning the real binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tool(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_trace_tool"))
        .args(args)
        .output()
        .expect("spawn trace_tool")
}

fn code(output: &Output) -> i32 {
    output.status.code().expect("exit code")
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("jpmd-store-exit-{}-{name}", std::process::id()))
}

#[test]
fn bad_invocations_exit_2_with_usage() {
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["gen"][..],
        &["verify"][..],
        &["scale-rate", "a", "b", "not-a-number"][..],
    ] {
        let out = tool(args);
        assert_eq!(code(&out), 2, "args {args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "args {args:?}: {stderr}");
    }

    // `scan` on a non-.jpt path is a usage error too.
    let out = tool(&["scan", "trace.json"]);
    assert_eq!(code(&out), 2);
}

#[test]
fn runtime_failures_exit_1() {
    let out = tool(&["verify", "/nonexistent/trace.jpt"]);
    assert_eq!(code(&out), 1);
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));

    // A poisoned (never-finished) store is a typed runtime failure, not a
    // crash: header with record_count == u64::MAX.
    let torn = scratch("torn.jpt");
    let mut bytes = vec![0u8; 64];
    bytes[0..8].copy_from_slice(b"JPMDTRC1");
    std::fs::write(&torn, &bytes).expect("write torn store");
    let out = tool(&["verify", torn.to_str().unwrap()]);
    assert_eq!(code(&out), 1);
    std::fs::remove_file(&torn).ok();
}

#[test]
fn gen_and_verify_round_trip_exit_0() {
    let path = scratch("roundtrip.jpt");
    let path_str = path.to_str().unwrap();

    let gen = tool(&["gen", path_str, "1", "4", "0.1", "60", "7"]);
    assert_eq!(code(&gen), 0, "{}", String::from_utf8_lossy(&gen.stderr));
    assert!(String::from_utf8_lossy(&gen.stdout).contains("wrote"));

    let verify = tool(&["verify", path_str]);
    assert_eq!(code(&verify), 0);
    assert!(String::from_utf8_lossy(&verify.stdout).starts_with("ok:"));
    std::fs::remove_file(&path).ok();
}
