//! Property and corruption tests for the paged binary store: any
//! well-formed trace round-trips bit-exactly through the format (reads
//! and writes alike, across page sizes), and every corruption mode —
//! truncation, bit flips, foreign magic/version — surfaces as a typed
//! [`StoreError`], never a panic.

use std::io::Cursor;

use jpmd_store::{format, StoreError, TraceReader, TraceWriter};
use jpmd_trace::{AccessKind, FileId, Trace, TraceRecord};
use proptest::prelude::*;

/// A random well-formed trace over a 64-page data set, with roughly
/// `write_pct` percent write records.
fn arb_trace(write_pct: u8) -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0.0f64..2000.0, 0u64..60, 1u64..5, 0u8..100), 0..150).prop_map(
        move |recs| {
            let records = recs
                .into_iter()
                .map(|(time, first_page, pages, roll)| TraceRecord {
                    time,
                    file: FileId(first_page as u32),
                    first_page,
                    pages,
                    kind: if roll < write_pct {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                })
                .collect();
            Trace::new(records, 1 << 20, 64)
        },
    )
}

fn to_store(trace: &Trace, page_size: u32) -> Vec<u8> {
    let mut writer = TraceWriter::with_page_size(
        Cursor::new(Vec::new()),
        trace.page_bytes(),
        trace.total_pages(),
        page_size,
    )
    .expect("writer");
    for record in trace.records() {
        writer.write_record(record).expect("write");
    }
    writer.finish().expect("finish").into_inner()
}

fn from_store(bytes: Vec<u8>) -> Result<Trace, StoreError> {
    let mut reader = TraceReader::new(Cursor::new(bytes))?;
    let mut records = Vec::new();
    for record in &mut reader {
        records.push(record?);
    }
    Ok(Trace::new(
        records,
        reader.header().page_bytes,
        reader.header().total_pages,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // gen trace -> binary -> read back == original, bit for bit,
    // including `AccessKind::Write` records and across page sizes that
    // force single- and many-page layouts.
    #[test]
    fn binary_roundtrip_is_identity(trace in arb_trace(35), page_choice in 0usize..3) {
        let page_size = [format::MIN_PAGE_SIZE, 256, format::DEFAULT_PAGE_SIZE][page_choice];
        let bytes = to_store(&trace, page_size);
        let back = from_store(bytes).expect("well-formed store must read back");
        prop_assert_eq!(back.records().len(), trace.records().len());
        for (a, b) in trace.records().iter().zip(back.records()) {
            prop_assert_eq!(a.time.to_bits(), b.time.to_bits());
            prop_assert_eq!(a.file, b.file);
            prop_assert_eq!(a.first_page, b.first_page);
            prop_assert_eq!(a.pages, b.pages);
            prop_assert_eq!(a.kind, b.kind);
        }
        prop_assert_eq!(back.page_bytes(), trace.page_bytes());
        prop_assert_eq!(back.total_pages(), trace.total_pages());
    }

    // Flipping any single byte of the payload is detected: the read
    // fails with a typed error (checksum on a data page, or a header
    // identity/checksum error), never a panic and never silent
    // acceptance of different records.
    #[test]
    fn any_single_byte_flip_is_detected(
        trace in arb_trace(20),
        flip_at in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        let bytes = to_store(&trace, 256);
        let mut corrupt = bytes.clone();
        let at = flip_at % corrupt.len();
        corrupt[at] ^= 1 << flip_bit;
        match from_store(corrupt) {
            Err(_) => {} // typed rejection: what we want
            Ok(back) => {
                // A flip inside page padding or unread trailing bytes is
                // CRC-detected, so the only acceptable Ok is impossible:
                // CRC covers every stored byte. Reaching here with equal
                // records would mean the flip landed outside any page,
                // which the format's exact-length property rules out.
                prop_assert!(
                    false,
                    "corrupted store read back Ok with {} records (flip at {at})",
                    back.records().len()
                );
            }
        }
    }

    // Truncating the file anywhere strictly inside the data region
    // yields `Truncated` or a checksum error on the cut page.
    #[test]
    fn truncation_is_detected(trace in arb_trace(0), cut_frac in 0.0f64..1.0) {
        if trace.records().is_empty() {
            continue; // nothing to truncate; skip this case
        }
        let bytes = to_store(&trace, 256);
        let data_len = bytes.len() - format::HEADER_BYTES;
        let cut = format::HEADER_BYTES + (cut_frac * (data_len - 1) as f64) as usize;
        let result = from_store(bytes[..cut].to_vec());
        prop_assert!(
            matches!(result, Err(StoreError::Truncated { .. })),
            "cut at {cut} of {} gave {result:?}",
            bytes.len()
        );
    }
}

#[test]
fn empty_trace_roundtrips() {
    let empty = Trace::new(vec![], 4096, 16);
    let bytes = to_store(&empty, format::DEFAULT_PAGE_SIZE);
    assert_eq!(bytes.len(), format::HEADER_BYTES);
    let back = from_store(bytes).unwrap();
    assert!(back.records().is_empty());
    assert_eq!(back.total_pages(), 16);
}

#[test]
fn wrong_magic_is_a_typed_error() {
    let trace = Trace::new(
        vec![TraceRecord {
            time: 1.0,
            file: FileId(0),
            first_page: 0,
            pages: 1,
            kind: AccessKind::Read,
        }],
        1 << 20,
        64,
    );
    let mut bytes = to_store(&trace, 256);
    bytes[0..8].copy_from_slice(b"NOTAJPMD");
    assert!(matches!(
        TraceReader::new(Cursor::new(bytes)).err(),
        Some(StoreError::BadMagic { .. })
    ));
}

#[test]
fn future_version_is_a_typed_error() {
    let trace = Trace::new(vec![], 1 << 20, 64);
    let mut bytes = to_store(&trace, 256);
    bytes[8..10].copy_from_slice(&7u16.to_le_bytes());
    assert!(matches!(
        TraceReader::new(Cursor::new(bytes)).err(),
        Some(StoreError::UnsupportedVersion { found: 7 })
    ));
}

#[test]
fn truncated_header_is_a_typed_error() {
    assert!(matches!(
        TraceReader::new(Cursor::new(vec![0u8; 10])).err(),
        Some(StoreError::Truncated { page: 0 })
    ));
}

#[test]
fn mid_page_truncation_is_a_typed_error() {
    let records: Vec<TraceRecord> = (0..20)
        .map(|i| TraceRecord {
            time: i as f64,
            file: FileId(0),
            first_page: i,
            pages: 1,
            kind: AccessKind::Read,
        })
        .collect();
    let trace = Trace::new(records, 1 << 20, 64);
    let bytes = to_store(&trace, 256);
    // Cut in the middle of the second data page.
    let cut = format::HEADER_BYTES + 256 + 100;
    assert!(cut < bytes.len());
    let mut reader = TraceReader::new(Cursor::new(bytes[..cut].to_vec())).unwrap();
    let outcome = reader.by_ref().collect::<Result<Vec<_>, _>>();
    assert!(matches!(outcome, Err(StoreError::Truncated { page: 2 })));
}
