//! Backend-seam identity tests: routing the writers through
//! [`SharedBackend::real_fs`] (the `Box<dyn StorageFile>` path) produces
//! files byte-identical to the direct `File` path, so threading the
//! fault seam through the durability stack changed nothing when faults
//! are off.

use std::path::PathBuf;

use jpmd_store::{
    index_path, read_trace, IndexEntry, PagedFile, PeriodIndex, PeriodIndexWriter, RealFs,
    SharedBackend, TraceWriter,
};
use jpmd_trace::{AccessKind, FileId, TraceRecord};

fn scratch(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "jpmd-store-ident-{tag}-{}.{ext}",
        std::process::id()
    ))
}

fn rec(time: f64, first_page: u64) -> TraceRecord {
    TraceRecord {
        time,
        file: FileId(1),
        first_page,
        pages: 1,
        kind: AccessKind::Read,
    }
}

#[test]
fn trace_writer_backend_path_is_byte_identical_to_direct() {
    let direct = scratch("trace-direct", "jpt");
    let wrapped = scratch("trace-wrapped", "jpt");
    {
        let mut w = TraceWriter::create(&direct, 4096, 100).unwrap();
        for i in 0..500u64 {
            w.write_record(&rec(i as f64, i % 100)).unwrap();
        }
        w.finish_durable().unwrap();
    }
    {
        let mut w = TraceWriter::create_on(SharedBackend::real_fs(), &wrapped, 4096, 100).unwrap();
        for i in 0..500u64 {
            w.write_record(&rec(i as f64, i % 100)).unwrap();
        }
        w.finish_durable().unwrap();
    }
    assert_eq!(
        std::fs::read(&direct).unwrap(),
        std::fs::read(&wrapped).unwrap()
    );
    assert_eq!(read_trace(&wrapped).unwrap().records().len(), 500);
    std::fs::remove_file(&direct).ok();
    std::fs::remove_file(&wrapped).ok();
}

#[test]
fn index_writer_backend_path_is_byte_identical_to_direct() {
    let direct = scratch("idx-direct", "jsonl");
    let wrapped = scratch("idx-wrapped", "jsonl");
    let entries: Vec<IndexEntry> = (0..32)
        .map(|i| IndexEntry {
            period: i,
            seq: i * 3,
            offset: i * 100,
        })
        .collect();
    {
        let mut w = PeriodIndexWriter::create(index_path(&direct), 4).unwrap();
        for entry in &entries {
            w.append(*entry).unwrap();
        }
    }
    {
        let mut w = PeriodIndexWriter::create_on(&RealFs, index_path(&wrapped), 4).unwrap();
        for entry in &entries {
            w.append(*entry).unwrap();
        }
    }
    assert_eq!(
        std::fs::read(index_path(&direct)).unwrap(),
        std::fs::read(index_path(&wrapped)).unwrap()
    );
    assert_eq!(PeriodIndex::load(index_path(&wrapped)).unwrap().len(), 32);
    std::fs::remove_file(index_path(&direct)).ok();
    std::fs::remove_file(index_path(&wrapped)).ok();
}

#[test]
fn paged_file_backend_path_round_trips_commits_and_recovery() {
    // Paged files embed a random file id, so byte equality across two
    // creates is impossible by design; assert behavioral identity
    // instead — the backend-routed store commits, checkpoints, survives
    // reopen (recovery path), and reads back the same images.
    let path = scratch("paged", "jdb");
    let ps: u32 = 64;
    {
        let mut db = PagedFile::create_on(SharedBackend::real_fs(), &path, ps, 4).unwrap();
        db.write_page(0, &vec![1u8; ps as usize]).unwrap();
        db.write_page(1, &vec![2u8; ps as usize]).unwrap();
        assert_eq!(db.commit().unwrap(), Some(1));
        db.checkpoint().unwrap();
        db.write_page(0, &vec![3u8; ps as usize]).unwrap();
        assert_eq!(db.commit().unwrap(), Some(2));
        // No checkpoint: page 0's newest image lives only in the journal.
    }
    {
        let mut db = PagedFile::open_on(SharedBackend::real_fs(), &path, 4).unwrap();
        assert_eq!(db.stats().recovered_commits, 1, "journal replayed");
        assert_eq!(db.read_page(0).unwrap(), vec![3u8; ps as usize]);
        assert_eq!(db.read_page(1).unwrap(), vec![2u8; ps as usize]);
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(jpmd_store::journal_path(&path)).ok();
}
