//! Prints the engine counters and per-period event log for a small run.
use jpmd_mem::{IdlePolicy, MemConfig, RdramModel};
use jpmd_sim::{run_simulation, NullController, SimConfig, SpinDownPolicy};
use jpmd_trace::{WorkloadBuilder, GIB, MIB};

fn main() {
    let trace = WorkloadBuilder::new()
        .data_set_bytes(GIB / 4)
        .rate_bytes_per_sec(8 * MIB)
        .write_fraction(0.3)
        .duration_secs(1200.0)
        .seed(7)
        .build()
        .expect("workload generation");
    let mut cfg = SimConfig::with_mem(MemConfig {
        page_bytes: 1 << 20,
        bank_pages: 4,
        total_banks: 8,
        initial_banks: 8,
        model: RdramModel::default(),
        policy: IdlePolicy::Nap,
    });
    cfg.period_secs = 300.0;
    cfg.warmup_secs = 300.0;
    cfg.sync_interval_secs = 60.0;
    let report = run_simulation(
        &cfg,
        SpinDownPolicy::AlwaysOn,
        &mut NullController,
        &trace,
        1200.0,
        "example",
    );
    println!("{:#?}", report.engine);
}
