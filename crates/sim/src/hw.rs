//! The simulated hardware owned by the [`Engine`](crate::Engine): memory,
//! disk, and spin-down policy, plus the request bookkeeping both the
//! replay core and the observers read.

use jpmd_disk::{Disk, DiskPowerModel, RequestOutcome, SpinDownPolicy};
use jpmd_mem::MemoryManager;

use crate::{ControlAction, EnergyBreakdown, SimConfig, SimEvent};

/// Hook consulted at the hardware seams, letting a harness perturb what the
/// simulated hardware does without touching the replay engine. `jpmd-faults`
/// implements this for deterministic fault injection; when no injector is
/// installed ([`HwState::set_fault_injector`] never called) every seam is a
/// straight pass-through and the hot path pays only an `Option` check.
pub trait FaultInjector: Send {
    /// Called after the disk serves a request; returns extra service
    /// seconds to stall the disk with (0.0 = no fault). The stall is
    /// charged as active disk time and added to the request's latency —
    /// an inflated service time, a bad-sector retry, or a failed spin-up
    /// attempt (`outcome.woke_disk` tells the injector a spin-up
    /// happened).
    fn on_disk_request(&mut self, at: f64, outcome: &RequestOutcome) -> f64 {
        let _ = (at, outcome);
        0.0
    }

    /// Filters a controller's bank resize before it reaches the memory
    /// manager. Returning a different count models banks that refuse the
    /// power transition; implementations must return a count the memory
    /// configuration accepts.
    fn filter_banks(&mut self, requested: u32) -> u32 {
        requested
    }

    /// Filters a controller's disk-timeout setting before it is applied.
    fn filter_timeout(&mut self, requested: f64) -> f64 {
        requested
    }

    /// The injector's internal state (RNG position, counters) as a
    /// serializable value, captured into checkpoints so a resumed run
    /// replays the exact same fault sequence. The default
    /// ([`serde::Value::Null`]) is correct for stateless injectors.
    fn snapshot_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restores the state captured by [`FaultInjector::snapshot_state`].
    /// The default ignores the value (stateless injectors).
    ///
    /// # Errors
    ///
    /// Returns a decode error when `state` does not match this injector's
    /// snapshot layout.
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let _ = state;
        Ok(())
    }
}

/// Serializable image of the hardware's dynamic state.
#[derive(serde::Serialize, serde::Deserialize)]
struct HwSnapshot {
    mem: serde::Value,
    disk: serde::Value,
    spindown: SpinDownPolicy,
    disk_pages: u64,
    period_disk_times: Vec<f64>,
    injector: serde::Value,
}

/// The hardware under simulation.
///
/// Observers receive `&mut HwState` with every callback: they read counters
/// to build observations and may act on the hardware (the period controller
/// resizes memory and retunes the disk timeout through
/// [`HwState::apply_action`]).
pub struct HwState {
    /// The disk cache (banked memory, LRU, stack profiler).
    pub mem: MemoryManager,
    /// The disk behind the cache (queue, spin-down, energy).
    pub disk: Disk,
    /// The policy supplying the disk's idleness timeout.
    pub spindown: SpinDownPolicy,
    /// All pages moved between disk and memory so far (read misses +
    /// write-backs).
    pub disk_pages: u64,
    /// Disk request arrival times inside the current control period
    /// (cleared by the period observer at each boundary).
    pub period_disk_times: Vec<f64>,
    page_bytes: u64,
    disk_power: DiskPowerModel,
    injector: Option<Box<dyn FaultInjector>>,
}

impl HwState {
    /// Builds the hardware for one run: a memory manager and a disk sized
    /// for `total_pages`, with the spin-down policy's initial timeout
    /// applied.
    pub fn new(config: &SimConfig, spindown: SpinDownPolicy, total_pages: u64) -> Self {
        let mut mem = MemoryManager::new(config.mem);
        mem.set_replacement(config.replacement);
        mem.set_consolidation(config.consolidate);
        let mut disk = Disk::new(config.disk_power, config.disk_service, total_pages);
        disk.set_timeout(spindown.timeout());
        HwState {
            mem,
            disk,
            spindown,
            disk_pages: 0,
            period_disk_times: Vec::new(),
            page_bytes: config.mem.page_bytes,
            disk_power: config.disk_power,
            injector: None,
        }
    }

    /// Installs a [`FaultInjector`] consulted at every hardware seam.
    /// Without one (the default) all seams are pass-throughs.
    pub fn set_fault_injector(&mut self, injector: Box<dyn FaultInjector>) {
        self.injector = Some(injector);
    }

    /// The hardware's full dynamic state (memory, disk, spin-down policy,
    /// request bookkeeping, and the injector's state when one is
    /// installed) as a serializable value — the hardware half of a
    /// checkpoint.
    pub fn snapshot_state(&self) -> serde::Value {
        use serde::Serialize;
        HwSnapshot {
            mem: self.mem.snapshot_state(),
            disk: self.disk.snapshot_state(),
            spindown: self.spindown.clone(),
            disk_pages: self.disk_pages,
            period_disk_times: self.period_disk_times.clone(),
            injector: self
                .injector
                .as_deref()
                .map_or(serde::Value::Null, |injector| injector.snapshot_state()),
        }
        .to_value()
    }

    /// Restores the state captured by [`HwState::snapshot_state`]. An
    /// injector, when the checkpointed run had one, must already be
    /// installed (its configuration is rebuilt by the caller; only its
    /// dynamic state lives in the snapshot).
    ///
    /// # Errors
    ///
    /// Returns a decode error when `value` does not match the hardware
    /// snapshot layout (a corrupt or incompatible checkpoint).
    pub fn restore_state(&mut self, value: &serde::Value) -> Result<(), serde::Error> {
        use serde::Deserialize;
        let snapshot = HwSnapshot::from_value(value)?;
        self.mem.restore_state(&snapshot.mem)?;
        self.disk.restore_state(&snapshot.disk)?;
        self.spindown = snapshot.spindown;
        self.disk_pages = snapshot.disk_pages;
        self.period_disk_times = snapshot.period_disk_times;
        if let Some(injector) = self.injector.as_deref_mut() {
            injector.restore_state(&snapshot.injector)?;
        }
        Ok(())
    }

    /// Advances both components' internal clocks to `t` (idempotent).
    pub fn settle(&mut self, t: f64) {
        self.mem.settle(t);
        self.disk.settle(t);
    }

    /// Current cumulative energy of both components.
    pub fn snapshot_energy(&self) -> EnergyBreakdown {
        EnergyBreakdown {
            mem: self.mem.energy(),
            disk: self.disk.energy(),
        }
    }

    /// Submits one contiguous run of pages to the disk at `at`, letting the
    /// spin-down policy react, and records the request in the period
    /// bookkeeping.
    pub fn submit_request(&mut self, at: f64, first_page: u64, pages: u64) -> RequestOutcome {
        let mut outcome = self.disk.submit(at, first_page, pages, self.page_bytes);
        if let Some(injector) = self.injector.as_mut() {
            let extra = injector.on_disk_request(at, &outcome);
            if extra > 0.0 {
                self.disk.stall(extra);
                outcome.completion += extra;
                outcome.latency += extra;
            }
        }
        let timeout = self.spindown.after_request(&outcome, &self.disk_power);
        self.disk.set_timeout(timeout);
        self.period_disk_times.push(at);
        self.disk_pages += pages;
        outcome
    }

    /// Submits background write-back pages as coalesced disk writes at
    /// `at`, returning one [`SimEvent::DiskRequest`] (with `user: false`)
    /// per coalesced run. Flushes do not count toward user latency but
    /// they do occupy the disk (energy, busy time, idle-interval
    /// structure).
    pub fn submit_writes(&mut self, mut pages: Vec<u64>, at: f64) -> Vec<SimEvent> {
        pages.sort_unstable();
        let mut events = Vec::new();
        let mut i = 0usize;
        while i < pages.len() {
            let first = pages[i];
            let mut len = 1u64;
            while i + (len as usize) < pages.len() && pages[i + len as usize] == first + len {
                len += 1;
            }
            let outcome = self.submit_request(at, first, len);
            events.push(SimEvent::DiskRequest {
                time: at,
                first_page: first,
                pages: len,
                latency: outcome.latency,
                woke_disk: outcome.woke_disk,
                user: false,
            });
            i += len as usize;
        }
        events
    }

    /// Applies a controller's decision at time `t`.
    pub fn apply_action(&mut self, action: &ControlAction, t: f64) {
        if let Some(banks) = action.enabled_banks {
            let banks = match self.injector.as_mut() {
                Some(injector) => injector.filter_banks(banks),
                None => banks,
            };
            self.mem.set_enabled_banks(banks, t);
        }
        if let Some(timeout) = action.disk_timeout {
            let timeout = match self.injector.as_mut() {
                Some(injector) => injector.filter_timeout(timeout),
                None => timeout,
            };
            self.spindown.set_controlled_timeout(timeout);
            self.disk.set_timeout(timeout);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jpmd_mem::{IdlePolicy, MemConfig, RdramModel};

    fn hw(spindown: SpinDownPolicy) -> HwState {
        let config = SimConfig::with_mem(MemConfig {
            page_bytes: 1 << 20,
            bank_pages: 4,
            total_banks: 8,
            initial_banks: 8,
            model: RdramModel::default(),
            policy: IdlePolicy::Nap,
        });
        HwState::new(&config, spindown, 64)
    }

    #[test]
    fn submit_writes_coalesces_contiguous_pages() {
        let mut hw = hw(SpinDownPolicy::AlwaysOn);
        // 0..3 and 8..9 coalesce into two requests; order-insensitive.
        let events = hw.submit_writes(vec![9, 0, 2, 1, 8], 5.0);
        assert_eq!(events.len(), 2);
        assert_eq!(hw.disk_pages, 5);
        assert_eq!(hw.disk.requests(), 2);
        assert_eq!(hw.period_disk_times, vec![5.0, 5.0]);
        match events[0] {
            SimEvent::DiskRequest {
                first_page,
                pages,
                user,
                ..
            } => {
                assert_eq!((first_page, pages), (0, 3));
                assert!(!user);
            }
            _ => panic!("expected DiskRequest"),
        }
    }

    #[test]
    fn fault_injector_stalls_requests_and_filters_actions() {
        struct Nasty;
        impl FaultInjector for Nasty {
            fn on_disk_request(&mut self, _at: f64, _outcome: &RequestOutcome) -> f64 {
                2.0
            }
            fn filter_banks(&mut self, requested: u32) -> u32 {
                requested.max(6)
            }
            fn filter_timeout(&mut self, _requested: f64) -> f64 {
                9.0
            }
        }
        let mut plain = hw(SpinDownPolicy::controlled(f64::INFINITY));
        let baseline = plain.submit_request(1.0, 0, 1);

        let mut faulty = hw(SpinDownPolicy::controlled(f64::INFINITY));
        faulty.set_fault_injector(Box::new(Nasty));
        let outcome = faulty.submit_request(1.0, 0, 1);
        assert!((outcome.latency - (baseline.latency + 2.0)).abs() < 1e-12);
        assert!((outcome.completion - (baseline.completion + 2.0)).abs() < 1e-12);
        assert!((faulty.disk.busy_secs() - (plain.disk.busy_secs() + 2.0)).abs() < 1e-12);

        faulty.apply_action(
            &ControlAction {
                enabled_banks: Some(2),
                disk_timeout: Some(7.0),
            },
            10.0,
        );
        assert_eq!(faulty.mem.enabled_banks(), 6, "flaky banks refused");
        assert_eq!(faulty.disk.timeout(), 9.0, "timeout filtered");
    }

    #[test]
    fn apply_action_resizes_and_retunes() {
        let mut hw = hw(SpinDownPolicy::controlled(f64::INFINITY));
        hw.apply_action(
            &ControlAction {
                enabled_banks: Some(4),
                disk_timeout: Some(7.0),
            },
            10.0,
        );
        assert_eq!(hw.mem.enabled_banks(), 4);
        assert_eq!(hw.disk.timeout(), 7.0);
        // Empty action leaves everything alone.
        hw.apply_action(&ControlAction::default(), 11.0);
        assert_eq!(hw.mem.enabled_banks(), 4);
        assert_eq!(hw.disk.timeout(), 7.0);
    }
}
