use serde::{Deserialize, Serialize};

use jpmd_mem::AccessLog;
use jpmd_stats::IntervalStats;

/// What the simulator observed during one control period — the inputs of
/// paper Fig. 2's "collect information of disk accesses and idle intervals"
/// box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodObservation {
    /// Period start time, s.
    pub start: f64,
    /// Period end time (the decision instant), s.
    pub end: f64,
    /// Disk-cache accesses during the period (the paper's `N`).
    pub cache_accesses: u64,
    /// Disk accesses (cache misses, in pages) during the period (`n_d`).
    pub disk_page_accesses: u64,
    /// Disk requests (contiguous runs) issued during the period.
    pub disk_requests: u64,
    /// Seconds the disk spent serving during the period.
    pub disk_busy_secs: f64,
    /// Idle intervals of the *actual* disk request stream, aggregated with
    /// window `w` (count = `n_i`, plus mean/min/max).
    pub idle: IntervalStats,
    /// Page accesses delayed past the long-latency threshold during the
    /// period (every page of a user disk request whose latency exceeded
    /// the configured threshold — paper eq. 6's delayed requests).
    #[serde(default)]
    pub delayed_page_accesses: u64,
    /// Banks enabled during (the end of) the period.
    pub enabled_banks: u32,
    /// Disk timeout in force at the end of the period, s.
    pub disk_timeout: f64,
    /// Total (memory + disk) energy spent during the period, J.
    pub energy_total_j: f64,
}

impl PeriodObservation {
    /// Disk utilization over the period.
    pub fn utilization(&self) -> f64 {
        self.disk_busy_secs / (self.end - self.start).max(f64::MIN_POSITIVE)
    }

    /// Mean total power over the period, W.
    pub fn mean_power_w(&self) -> f64 {
        self.energy_total_j / (self.end - self.start).max(f64::MIN_POSITIVE)
    }

    /// Fraction of the period's page accesses that were delayed past the
    /// long-latency threshold (the paper's delayed-request ratio, checked
    /// against the limit `D`). Zero for an idle period.
    pub fn delayed_ratio(&self) -> f64 {
        if self.cache_accesses == 0 {
            0.0
        } else {
            self.delayed_page_accesses as f64 / self.cache_accesses as f64
        }
    }
}

/// Decision returned by a [`PeriodController`]: fields left `None` keep the
/// current setting.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ControlAction {
    /// Resize the disk cache to this many banks.
    pub enabled_banks: Option<u32>,
    /// Set the disk spin-down timeout to this many seconds.
    pub disk_timeout: Option<f64>,
}

/// A power manager invoked at every period boundary (paper Fig. 2).
///
/// The joint method of the paper is implemented against this trait in
/// `jpmd-core`; the static methods (2TFM, ADPD, …) use [`NullController`]
/// because their memory size and disk policy never change.
pub trait PeriodController {
    /// Decides the next period's memory size and disk timeout from the
    /// last period's observation and profiled access log.
    fn on_period_end(&mut self, observation: &PeriodObservation, log: &AccessLog) -> ControlAction;

    /// Display name for reports.
    fn name(&self) -> &str {
        "static"
    }

    /// The controller's internal state (learned models, period counters)
    /// as a serializable value, captured into checkpoints. The default
    /// ([`serde::Value::Null`]) is correct for stateless controllers such
    /// as [`NullController`].
    fn snapshot_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restores the state captured by
    /// [`PeriodController::snapshot_state`]. The default ignores the value
    /// (stateless controllers).
    ///
    /// # Errors
    ///
    /// Returns a decode error when `state` does not match this
    /// controller's snapshot layout.
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let _ = state;
        Ok(())
    }
}

/// Mutable references delegate, so `&mut dyn PeriodController` (the batch
/// simulation's wiring) satisfies generic `C: PeriodController` bounds.
impl<C: PeriodController + ?Sized> PeriodController for &mut C {
    fn on_period_end(&mut self, observation: &PeriodObservation, log: &AccessLog) -> ControlAction {
        (**self).on_period_end(observation, log)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn snapshot_state(&self) -> serde::Value {
        (**self).snapshot_state()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        (**self).restore_state(state)
    }
}

/// Boxes delegate, so `Box<dyn PeriodController>` works where an owned
/// controller is needed (the incremental `PolicyStepper`).
impl<C: PeriodController + ?Sized> PeriodController for Box<C> {
    fn on_period_end(&mut self, observation: &PeriodObservation, log: &AccessLog) -> ControlAction {
        (**self).on_period_end(observation, log)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn snapshot_state(&self) -> serde::Value {
        (**self).snapshot_state()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        (**self).restore_state(state)
    }
}

/// A controller that never changes anything — all non-joint methods.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullController;

impl PeriodController for NullController {
    fn on_period_end(&mut self, _: &PeriodObservation, _: &AccessLog) -> ControlAction {
        ControlAction::default()
    }
}

/// Wraps a controller so every decision is timed under the
/// `controller.decide` span (and, when telemetry is enabled, emits a
/// `SpanEnd` event). Pure delegation otherwise — the wrapped controller's
/// decisions are untouched, which is what keeps instrumented runs
/// bit-identical to plain ones.
///
/// Generic over the controller it owns: the batch simulation instantiates
/// it with `&mut dyn PeriodController`, while a long-lived incremental
/// stepper owns its controller outright.
pub struct TimedController<C> {
    inner: C,
    spans: jpmd_obs::SpanRecorder,
    telemetry: jpmd_obs::Telemetry,
}

impl<C: PeriodController> TimedController<C> {
    /// Times `inner` under `spans`, emitting through `telemetry`.
    pub fn new(inner: C, spans: jpmd_obs::SpanRecorder, telemetry: jpmd_obs::Telemetry) -> Self {
        TimedController {
            inner,
            spans,
            telemetry,
        }
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The wrapped controller, mutably.
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }
}

impl<C: PeriodController> PeriodController for TimedController<C> {
    fn on_period_end(&mut self, observation: &PeriodObservation, log: &AccessLog) -> ControlAction {
        let _span = self.spans.time_with("controller.decide", &self.telemetry);
        self.inner.on_period_end(observation, log)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn snapshot_state(&self) -> serde::Value {
        self.inner.snapshot_state()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.inner.restore_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_busy_over_span() {
        let obs = PeriodObservation {
            start: 0.0,
            end: 600.0,
            cache_accesses: 10,
            disk_page_accesses: 5,
            disk_requests: 3,
            disk_busy_secs: 60.0,
            idle: jpmd_stats::IdleIntervals::default().stats(),
            delayed_page_accesses: 2,
            enabled_banks: 4,
            disk_timeout: 11.7,
            energy_total_j: 0.0,
        };
        assert!((obs.utilization() - 0.1).abs() < 1e-12);
        assert!((obs.delayed_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn null_controller_keeps_everything() {
        let obs = PeriodObservation {
            start: 0.0,
            end: 1.0,
            cache_accesses: 0,
            disk_page_accesses: 0,
            disk_requests: 0,
            disk_busy_secs: 0.0,
            idle: jpmd_stats::IdleIntervals::default().stats(),
            delayed_page_accesses: 0,
            enabled_banks: 1,
            disk_timeout: 1.0,
            energy_total_j: 0.0,
        };
        let action = NullController.on_period_end(&obs, &AccessLog::new());
        assert_eq!(action, ControlAction::default());
        assert!(action.enabled_banks.is_none());
        assert!(action.disk_timeout.is_none());
    }
}
