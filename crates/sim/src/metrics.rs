use serde::{Deserialize, Serialize};

use jpmd_disk::DiskEnergy;
use jpmd_mem::MemEnergy;

use crate::{ControlAction, EngineStats, PeriodObservation};

/// Combined memory + disk energy for one run (or one window of a run).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Memory energy.
    pub mem: MemEnergy,
    /// Disk energy.
    pub disk: DiskEnergy,
}

impl EnergyBreakdown {
    /// Total energy, J.
    pub fn total_j(&self) -> f64 {
        self.mem.total_j() + self.disk.total_j()
    }

    /// Component-wise difference (`self − earlier`), used to subtract the
    /// warm-up window.
    pub fn since(&self, earlier: &EnergyBreakdown) -> EnergyBreakdown {
        *self - *earlier
    }
}

impl std::ops::Sub for EnergyBreakdown {
    type Output = EnergyBreakdown;

    /// Component-wise difference over both devices.
    fn sub(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            mem: self.mem - rhs.mem,
            disk: self.disk - rhs.disk,
        }
    }
}

impl std::ops::SubAssign for EnergyBreakdown {
    fn sub_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self - rhs;
    }
}

/// One control period's observation and the action taken at its end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodRow {
    /// What the period looked like.
    pub observation: PeriodObservation,
    /// What the controller decided (empty for static methods).
    pub action: ControlAction,
}

/// Aggregated results of one simulation run.
///
/// All scalar metrics cover the *measured window* (after
/// [`SimConfig::warmup_secs`](crate::SimConfig)); [`RunReport::periods`]
/// covers every period including warm-up so time-series figures (paper
/// Fig. 9) can show the full run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Label of the method that produced this run ("Joint", "2TFM-16GB"…).
    pub label: String,
    /// Length of the measured window, s.
    pub duration_secs: f64,
    /// Energy spent in the measured window.
    pub energy: EnergyBreakdown,
    /// Disk-cache accesses (pages) in the window.
    pub cache_accesses: u64,
    /// Cache hits (memory accesses) in the window.
    pub hits: u64,
    /// Cache misses (disk page accesses) in the window.
    pub disk_page_accesses: u64,
    /// Disk requests (contiguous runs) in the window.
    pub disk_requests: u64,
    /// Mean latency over all cache accesses (hits count as zero), s.
    pub mean_latency_secs: f64,
    /// Median latency of *disk requests* in the window, s (0 when none).
    pub request_latency_p50_secs: f64,
    /// 99th-percentile latency of disk requests in the window, s.
    pub request_latency_p99_secs: f64,
    /// Largest request latency observed, s.
    pub max_latency_secs: f64,
    /// Accesses delayed beyond the long-latency threshold.
    pub long_latency_count: u64,
    /// Disk busy fraction of the window.
    pub utilization: f64,
    /// Disk spin-downs in the window.
    pub spin_downs: u64,
    /// Per-period time series (full run, including warm-up).
    pub periods: Vec<PeriodRow>,
    /// Engine observability: event totals, the per-period event log, and
    /// replay throughput (wall-clock fields are excluded from equality).
    pub engine: EngineStats,
    /// Aggregated span timings (engine replay, controller decisions,
    /// report finalization). Always collected; equality ignores the
    /// wall-clock fields, like [`EngineStats`].
    #[serde(default)]
    pub spans: Vec<jpmd_obs::SpanTiming>,
}

impl RunReport {
    /// Long-latency requests per second (paper Fig. 7(f), 8(b), 8(d)).
    pub fn long_latency_per_sec(&self) -> f64 {
        if self.duration_secs > 0.0 {
            self.long_latency_count as f64 / self.duration_secs
        } else {
            0.0
        }
    }

    /// Average power over the window, W.
    pub fn mean_power_w(&self) -> f64 {
        if self.duration_secs > 0.0 {
            self.energy.total_j() / self.duration_secs
        } else {
            0.0
        }
    }

    /// Total energy as a fraction of `baseline` (the paper normalizes
    /// everything against the always-on method).
    pub fn normalized_total(&self, baseline: &RunReport) -> f64 {
        self.energy.total_j() / baseline.energy.total_j().max(f64::MIN_POSITIVE)
    }

    /// Disk energy as a fraction of the baseline's disk energy.
    pub fn normalized_disk(&self, baseline: &RunReport) -> f64 {
        self.energy.disk.total_j() / baseline.energy.disk.total_j().max(f64::MIN_POSITIVE)
    }

    /// Memory energy as a fraction of the baseline's memory energy.
    pub fn normalized_mem(&self, baseline: &RunReport) -> f64 {
        self.energy.mem.total_j() / baseline.energy.mem.total_j().max(f64::MIN_POSITIVE)
    }

    /// Cache hit ratio in the window.
    pub fn hit_ratio(&self) -> f64 {
        if self.cache_accesses > 0 {
            self.hits as f64 / self.cache_accesses as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(total_mem: f64, total_disk: f64, duration: f64) -> RunReport {
        RunReport {
            label: "test".into(),
            duration_secs: duration,
            energy: EnergyBreakdown {
                mem: MemEnergy {
                    static_j: total_mem,
                    dynamic_j: 0.0,
                },
                disk: DiskEnergy {
                    active_j: 0.0,
                    idle_j: total_disk,
                    standby_j: 0.0,
                    transition_j: 0.0,
                },
            },
            cache_accesses: 100,
            hits: 80,
            disk_page_accesses: 20,
            disk_requests: 5,
            mean_latency_secs: 0.001,
            request_latency_p50_secs: 0.02,
            request_latency_p99_secs: 0.4,
            max_latency_secs: 0.6,
            long_latency_count: 3,
            utilization: 0.05,
            spin_downs: 2,
            periods: Vec::new(),
            engine: EngineStats::default(),
            spans: Vec::new(),
        }
    }

    #[test]
    fn normalization_against_baseline() {
        let a = report(50.0, 50.0, 10.0);
        let base = report(100.0, 100.0, 10.0);
        assert!((a.normalized_total(&base) - 0.5).abs() < 1e-12);
        assert!((a.normalized_disk(&base) - 0.5).abs() < 1e-12);
        assert!((a.normalized_mem(&base) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rates_and_ratios() {
        let r = report(10.0, 10.0, 10.0);
        assert!((r.long_latency_per_sec() - 0.3).abs() < 1e-12);
        assert!((r.mean_power_w() - 2.0).abs() < 1e-12);
        assert!((r.hit_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn energy_since_subtracts_componentwise() {
        let early = report(10.0, 20.0, 1.0).energy;
        let late = report(15.0, 50.0, 1.0).energy;
        let diff = late.since(&early);
        assert!((diff.mem.static_j - 5.0).abs() < 1e-12);
        assert!((diff.disk.idle_j - 30.0).abs() < 1e-12);
        assert!((diff.total_j() - 35.0).abs() < 1e-12);
        let mut assigned = late;
        assigned -= early;
        assert_eq!(assigned, diff);
    }

    /// Walks two serialized values in lockstep, asserting every numeric
    /// leaf of `diff` equals the corresponding `a − b`.
    fn assert_leafwise_difference(a: &serde::Value, b: &serde::Value, diff: &serde::Value) {
        use serde::Value;
        match (a, b, diff) {
            (Value::F64(xa), Value::F64(xb), Value::F64(xd)) => {
                assert!(
                    (xd - (xa - xb)).abs() < 1e-12,
                    "leaf {xd} != {xa} - {xb}: a field is missing from a Sub impl"
                );
            }
            (Value::Object(fa), Value::Object(fb), Value::Object(fd)) => {
                assert_eq!(fa.len(), fd.len(), "field sets diverged");
                for (((ka, va), (kb, vb)), (kd, vd)) in fa.iter().zip(fb).zip(fd) {
                    assert_eq!(ka, kb);
                    assert_eq!(ka, kd);
                    assert_leafwise_difference(va, vb, vd);
                }
            }
            _ => panic!(
                "unexpected shapes: {} / {} / {}",
                a.kind(),
                b.kind(),
                diff.kind()
            ),
        }
    }

    /// Guards the `Sub` impls against silently-missed fields: every numeric
    /// leaf of the serialized breakdown — whatever fields the energy structs
    /// grow — must be subtracted. A field skipped by a future `Sub` edit
    /// (e.g. via `..rhs` struct update) fails the leafwise comparison.
    #[test]
    fn subtraction_covers_every_energy_field() {
        use serde::Serialize;
        let late = EnergyBreakdown {
            mem: MemEnergy {
                static_j: 11.0,
                dynamic_j: 13.0,
            },
            disk: DiskEnergy {
                active_j: 17.0,
                idle_j: 19.0,
                standby_j: 23.0,
                transition_j: 29.0,
            },
        };
        let early = EnergyBreakdown {
            mem: MemEnergy {
                static_j: 1.0,
                dynamic_j: 2.0,
            },
            disk: DiskEnergy {
                active_j: 3.0,
                idle_j: 4.0,
                standby_j: 5.0,
                transition_j: 6.0,
            },
        };
        let diff = late - early;
        assert_leafwise_difference(&late.to_value(), &early.to_value(), &diff.to_value());
        assert_eq!(diff, late.since(&early));
    }
}
