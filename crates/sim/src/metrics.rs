use serde::{Deserialize, Serialize};

use jpmd_disk::DiskEnergy;
use jpmd_mem::MemEnergy;

use crate::{ControlAction, EngineStats, PeriodObservation};

/// Combined memory + disk energy for one run (or one window of a run).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Memory energy.
    pub mem: MemEnergy,
    /// Disk energy.
    pub disk: DiskEnergy,
}

impl EnergyBreakdown {
    /// Total energy, J.
    pub fn total_j(&self) -> f64 {
        self.mem.total_j() + self.disk.total_j()
    }

    /// Component-wise difference (`self − earlier`), used to subtract the
    /// warm-up window.
    pub fn since(&self, earlier: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            mem: MemEnergy {
                static_j: self.mem.static_j - earlier.mem.static_j,
                dynamic_j: self.mem.dynamic_j - earlier.mem.dynamic_j,
            },
            disk: DiskEnergy {
                active_j: self.disk.active_j - earlier.disk.active_j,
                idle_j: self.disk.idle_j - earlier.disk.idle_j,
                standby_j: self.disk.standby_j - earlier.disk.standby_j,
                transition_j: self.disk.transition_j - earlier.disk.transition_j,
            },
        }
    }
}

/// One control period's observation and the action taken at its end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodRow {
    /// What the period looked like.
    pub observation: PeriodObservation,
    /// What the controller decided (empty for static methods).
    pub action: ControlAction,
}

/// Aggregated results of one simulation run.
///
/// All scalar metrics cover the *measured window* (after
/// [`SimConfig::warmup_secs`](crate::SimConfig)); [`RunReport::periods`]
/// covers every period including warm-up so time-series figures (paper
/// Fig. 9) can show the full run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Label of the method that produced this run ("Joint", "2TFM-16GB"…).
    pub label: String,
    /// Length of the measured window, s.
    pub duration_secs: f64,
    /// Energy spent in the measured window.
    pub energy: EnergyBreakdown,
    /// Disk-cache accesses (pages) in the window.
    pub cache_accesses: u64,
    /// Cache hits (memory accesses) in the window.
    pub hits: u64,
    /// Cache misses (disk page accesses) in the window.
    pub disk_page_accesses: u64,
    /// Disk requests (contiguous runs) in the window.
    pub disk_requests: u64,
    /// Mean latency over all cache accesses (hits count as zero), s.
    pub mean_latency_secs: f64,
    /// Median latency of *disk requests* in the window, s (0 when none).
    pub request_latency_p50_secs: f64,
    /// 99th-percentile latency of disk requests in the window, s.
    pub request_latency_p99_secs: f64,
    /// Largest request latency observed, s.
    pub max_latency_secs: f64,
    /// Accesses delayed beyond the long-latency threshold.
    pub long_latency_count: u64,
    /// Disk busy fraction of the window.
    pub utilization: f64,
    /// Disk spin-downs in the window.
    pub spin_downs: u64,
    /// Per-period time series (full run, including warm-up).
    pub periods: Vec<PeriodRow>,
    /// Engine observability: event totals, the per-period event log, and
    /// replay throughput (wall-clock fields are excluded from equality).
    pub engine: EngineStats,
}

impl RunReport {
    /// Long-latency requests per second (paper Fig. 7(f), 8(b), 8(d)).
    pub fn long_latency_per_sec(&self) -> f64 {
        if self.duration_secs > 0.0 {
            self.long_latency_count as f64 / self.duration_secs
        } else {
            0.0
        }
    }

    /// Average power over the window, W.
    pub fn mean_power_w(&self) -> f64 {
        if self.duration_secs > 0.0 {
            self.energy.total_j() / self.duration_secs
        } else {
            0.0
        }
    }

    /// Total energy as a fraction of `baseline` (the paper normalizes
    /// everything against the always-on method).
    pub fn normalized_total(&self, baseline: &RunReport) -> f64 {
        self.energy.total_j() / baseline.energy.total_j().max(f64::MIN_POSITIVE)
    }

    /// Disk energy as a fraction of the baseline's disk energy.
    pub fn normalized_disk(&self, baseline: &RunReport) -> f64 {
        self.energy.disk.total_j() / baseline.energy.disk.total_j().max(f64::MIN_POSITIVE)
    }

    /// Memory energy as a fraction of the baseline's memory energy.
    pub fn normalized_mem(&self, baseline: &RunReport) -> f64 {
        self.energy.mem.total_j() / baseline.energy.mem.total_j().max(f64::MIN_POSITIVE)
    }

    /// Cache hit ratio in the window.
    pub fn hit_ratio(&self) -> f64 {
        if self.cache_accesses > 0 {
            self.hits as f64 / self.cache_accesses as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(total_mem: f64, total_disk: f64, duration: f64) -> RunReport {
        RunReport {
            label: "test".into(),
            duration_secs: duration,
            energy: EnergyBreakdown {
                mem: MemEnergy {
                    static_j: total_mem,
                    dynamic_j: 0.0,
                },
                disk: DiskEnergy {
                    active_j: 0.0,
                    idle_j: total_disk,
                    standby_j: 0.0,
                    transition_j: 0.0,
                },
            },
            cache_accesses: 100,
            hits: 80,
            disk_page_accesses: 20,
            disk_requests: 5,
            mean_latency_secs: 0.001,
            request_latency_p50_secs: 0.02,
            request_latency_p99_secs: 0.4,
            max_latency_secs: 0.6,
            long_latency_count: 3,
            utilization: 0.05,
            spin_downs: 2,
            periods: Vec::new(),
            engine: EngineStats::default(),
        }
    }

    #[test]
    fn normalization_against_baseline() {
        let a = report(50.0, 50.0, 10.0);
        let base = report(100.0, 100.0, 10.0);
        assert!((a.normalized_total(&base) - 0.5).abs() < 1e-12);
        assert!((a.normalized_disk(&base) - 0.5).abs() < 1e-12);
        assert!((a.normalized_mem(&base) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rates_and_ratios() {
        let r = report(10.0, 10.0, 10.0);
        assert!((r.long_latency_per_sec() - 0.3).abs() < 1e-12);
        assert!((r.mean_power_w() - 2.0).abs() < 1e-12);
        assert!((r.hit_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn energy_since_subtracts_componentwise() {
        let early = report(10.0, 20.0, 1.0).energy;
        let late = report(15.0, 50.0, 1.0).energy;
        let diff = late.since(&early);
        assert!((diff.mem.static_j - 5.0).abs() < 1e-12);
        assert!((diff.disk.idle_j - 30.0).abs() < 1e-12);
        assert!((diff.total_j() - 35.0).abs() < 1e-12);
    }
}
