use serde::{Deserialize, Serialize};

use jpmd_disk::{DiskPowerModel, ServiceModel};
use jpmd_mem::{MemConfig, Replacement};

/// Configuration of one system simulation (memory + disk + timing).
///
/// Defaults follow Table II of the paper: period `T` = 10 min, aggregation
/// window `w` = 0.1 s, half-second long-latency threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Memory subsystem configuration.
    pub mem: MemConfig,
    /// Disk power model.
    pub disk_power: DiskPowerModel,
    /// Disk mechanical model.
    pub disk_service: ServiceModel,
    /// Control-period length `T`, s.
    pub period_secs: f64,
    /// Latency above which a request counts as "long" (user-noticeable),
    /// s. Paper: 0.5.
    pub long_latency_secs: f64,
    /// Idle-interval aggregation window `w`, s. Paper: 0.1.
    pub aggregation_window_secs: f64,
    /// Metrics and energy are reported from this offset onward, letting
    /// the cache warm up first. 0 disables warm-up exclusion.
    pub warmup_secs: f64,
    /// Disk-cache replacement policy (default: global LRU, as in the
    /// paper; `BankAware` is the power-aware alternative of related work
    /// \[6\]/\[36\]).
    pub replacement: Replacement,
    /// When true and the memory policy is `DisableAfter`, pages of
    /// nearly-expired banks migrate to warm banks instead of being lost.
    pub consolidate: bool,
    /// Period of the dirty-page flush daemon (pdflush-style), s. Dirty
    /// pages written by `AccessKind::Write` requests reach the disk when
    /// evicted or at each sync tick. `f64::INFINITY` disables the daemon
    /// (the default; the paper's SPECWeb99 workloads are read-dominated).
    pub sync_interval_secs: f64,
}

impl SimConfig {
    /// A configuration with the paper's timing constants around the given
    /// memory configuration.
    pub fn with_mem(mem: MemConfig) -> Self {
        Self {
            mem,
            disk_power: DiskPowerModel::default(),
            disk_service: ServiceModel::default(),
            period_secs: 600.0,
            long_latency_secs: 0.5,
            aggregation_window_secs: 0.1,
            warmup_secs: 0.0,
            replacement: Replacement::default(),
            consolidate: false,
            sync_interval_secs: f64::INFINITY,
        }
    }

    /// Validates timing fields.
    ///
    /// # Panics
    ///
    /// Panics when the period or threshold is not positive, or the window
    /// is negative.
    pub fn validate(&self) {
        assert!(self.period_secs > 0.0, "period must be positive");
        assert!(
            self.long_latency_secs > 0.0,
            "long-latency threshold must be positive"
        );
        assert!(
            self.aggregation_window_secs >= 0.0,
            "aggregation window must be non-negative"
        );
        assert!(self.warmup_secs >= 0.0, "warmup must be non-negative");
        assert!(
            self.sync_interval_secs > 0.0,
            "sync interval must be positive (INFINITY disables it)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jpmd_mem::{IdlePolicy, RdramModel};

    fn mem() -> MemConfig {
        MemConfig {
            page_bytes: 1 << 20,
            bank_pages: 16,
            total_banks: 8,
            initial_banks: 8,
            model: RdramModel::default(),
            policy: IdlePolicy::Nap,
        }
    }

    #[test]
    fn defaults_match_table_ii() {
        let c = SimConfig::with_mem(mem());
        assert_eq!(c.period_secs, 600.0);
        assert_eq!(c.long_latency_secs, 0.5);
        assert_eq!(c.aggregation_window_secs, 0.1);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_rejected() {
        let mut c = SimConfig::with_mem(mem());
        c.period_secs = 0.0;
        c.validate();
    }
}
