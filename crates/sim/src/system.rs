use jpmd_disk::{Disk, SpinDownPolicy};
use jpmd_mem::MemoryManager;
use jpmd_stats::{IdleIntervals, Welford};
use jpmd_trace::{AccessKind, Trace};

use crate::{
    EnergyBreakdown, PeriodController, PeriodObservation, PeriodRow, RunReport, SimConfig,
};

/// Runs one complete system simulation: the trace drives the disk cache,
/// cache misses drive the disk, and the controller is invoked at every
/// period boundary (paper Fig. 6(b) pipeline).
///
/// * Each trace record's pages are looked up in the cache in order; missed
///   pages are coalesced into contiguous runs, each becoming one disk
///   request (this is what gives the disk its request-size mix).
/// * Hits have zero latency; every page of a missed run inherits the run's
///   request latency (queueing + spin-up + service). Accesses with latency
///   above the configured threshold count as *long-latency* (paper: 0.5 s).
/// * Metrics and energy cover the window after `config.warmup_secs`;
///   per-period rows cover the whole run.
///
/// The trace is open-loop, as in the paper: request arrival times are fixed
/// by the trace and do not shift when requests are delayed.
///
/// # Panics
///
/// Panics if the trace's page size differs from the memory configuration's,
/// or if `duration` does not exceed the warm-up.
pub fn run_simulation(
    config: &SimConfig,
    mut spindown: SpinDownPolicy,
    controller: &mut dyn PeriodController,
    trace: &Trace,
    duration: f64,
    label: &str,
) -> RunReport {
    config.validate();
    assert_eq!(
        trace.page_bytes(),
        config.mem.page_bytes,
        "trace and memory must agree on the page size"
    );
    assert!(
        duration > config.warmup_secs,
        "duration must exceed the warm-up window"
    );

    let page_bytes = config.mem.page_bytes;
    let mut mem = MemoryManager::new(config.mem);
    mem.set_replacement(config.replacement);
    mem.set_consolidation(config.consolidate);
    let mut disk = Disk::new(
        config.disk_power,
        config.disk_service,
        trace.total_pages().max(1),
    );
    disk.set_timeout(spindown.timeout());

    // Period bookkeeping.
    let mut rows: Vec<PeriodRow> = Vec::new();
    let mut period_start = 0.0f64;
    let mut next_period = config.period_secs;
    let mut p_acc = 0u64;
    let mut p_req = 0u64;
    let mut p_busy = 0.0f64;
    let mut p_energy = EnergyBreakdown::default();
    let mut period_disk_times: Vec<f64> = Vec::new();

    // Dirty-page flush daemon.
    let mut next_sync = config.sync_interval_secs;
    // All pages moved between disk and memory (read misses + write-backs).
    let mut disk_pages = 0u64;
    let mut p_pages = 0u64;
    let mut w_pages = 0u64;

    // Measured-window bookkeeping (post warm-up).
    let mut warm = config.warmup_secs <= 0.0;
    let mut w_energy = EnergyBreakdown::default();
    let mut w_acc = 0u64;
    let mut w_hits = 0u64;
    let mut w_req = 0u64;
    let mut w_busy = 0.0f64;
    let mut w_spin = 0u64;
    let mut latency = Welford::new();
    let mut request_latencies: Vec<f64> = Vec::new();
    let mut long_count = 0u64;

    macro_rules! snapshot_energy {
        () => {
            EnergyBreakdown {
                mem: mem.energy(),
                disk: disk.energy(),
            }
        };
    }

    // Submits background write-back pages as coalesced disk writes at
    // `at`. Flushes do not count toward user latency but they do occupy
    // the disk (energy, busy time, idle-interval structure).
    macro_rules! submit_writes {
        ($pages:expr, $at:expr) => {
            let mut pages: Vec<u64> = $pages;
            pages.sort_unstable();
            let at: f64 = $at;
            let mut i = 0usize;
            while i < pages.len() {
                let first = pages[i];
                let mut len = 1u64;
                while i + (len as usize) < pages.len()
                    && pages[i + len as usize] == first + len
                {
                    len += 1;
                }
                let outcome = disk.submit(at, first, len, page_bytes);
                let timeout = spindown.after_request(&outcome, &config.disk_power);
                disk.set_timeout(timeout);
                period_disk_times.push(at);
                disk_pages += len;
                i += len as usize;
            }
        };
    }

    // Advances bookkeeping (period boundaries, warm-up snapshot) to `t`.
    macro_rules! advance_to {
        ($t:expr) => {
            let target: f64 = $t;
            loop {
                let pm_boundary = if !warm && config.warmup_secs <= next_period {
                    config.warmup_secs
                } else {
                    next_period
                };
                let boundary = pm_boundary.min(next_sync);
                if boundary > target {
                    break;
                }
                if next_sync < pm_boundary {
                    // Flush daemon tick.
                    let dirty = mem.sync_dirty();
                    submit_writes!(dirty, next_sync);
                    next_sync += config.sync_interval_secs;
                    continue;
                }
                mem.settle(boundary);
                disk.settle(boundary);
                if !warm && boundary == config.warmup_secs {
                    warm = true;
                    w_energy = snapshot_energy!();
                    w_acc = mem.accesses();
                    w_hits = mem.hits();
                    w_req = disk.requests();
                    w_busy = disk.busy_secs();
                    w_spin = disk.spin_downs();
                    w_pages = disk_pages;
                    if config.warmup_secs < next_period {
                        continue;
                    }
                }
                // Period boundary.
                let observation = PeriodObservation {
                    start: period_start,
                    end: boundary,
                    cache_accesses: mem.accesses() - p_acc,
                    disk_page_accesses: disk_pages - p_pages,
                    disk_requests: disk.requests() - p_req,
                    disk_busy_secs: disk.busy_secs() - p_busy,
                    idle: IdleIntervals::from_timestamps(
                        &period_disk_times,
                        config.aggregation_window_secs,
                    )
                    .stats(),
                    enabled_banks: mem.enabled_banks(),
                    disk_timeout: disk.timeout(),
                    energy_total_j: snapshot_energy!().since(&p_energy).total_j(),
                };
                let log = mem.take_log();
                let action = controller.on_period_end(&observation, &log);
                if let Some(banks) = action.enabled_banks {
                    mem.set_enabled_banks(banks, boundary);
                }
                if let Some(t) = action.disk_timeout {
                    spindown.set_controlled_timeout(t);
                    disk.set_timeout(t);
                }
                rows.push(PeriodRow {
                    observation,
                    action,
                });
                period_start = boundary;
                next_period = boundary + config.period_secs;
                p_acc = mem.accesses();
                p_pages = disk_pages;
                p_req = disk.requests();
                p_busy = disk.busy_secs();
                p_energy = snapshot_energy!();
                period_disk_times.clear();
            }
        };
    }

    let mut max_latency = 0.0f64;
    for record in trace.records() {
        if record.time >= duration {
            break;
        }
        advance_to!(record.time);
        let now = record.time;
        let measuring = warm;
        let is_write = record.kind == AccessKind::Write;

        // Walk the record's pages, coalescing misses into runs.
        let mut run_start: Option<u64> = None;
        let mut run_len = 0u64;
        macro_rules! flush_run {
            () => {
                if let Some(first) = run_start.take() {
                    let outcome = disk.submit(now, first, run_len, page_bytes);
                    let timeout = spindown.after_request(&outcome, &config.disk_power);
                    disk.set_timeout(timeout);
                    period_disk_times.push(now);
                    disk_pages += run_len;
                    if measuring {
                        request_latencies.push(outcome.latency);
                        for _ in 0..run_len {
                            latency.push(outcome.latency);
                        }
                        if outcome.latency > config.long_latency_secs {
                            long_count += run_len;
                        }
                        if outcome.latency > max_latency {
                            max_latency = outcome.latency;
                        }
                    }
                    #[allow(unused_assignments)]
                    {
                        run_len = 0;
                    }
                }
            };
        }
        for page in record.page_range() {
            let served_from_memory = mem.access_rw(page, now, is_write);
            if served_from_memory {
                flush_run!();
                if measuring {
                    latency.push(0.0);
                }
            } else {
                if run_start.is_none() {
                    run_start = Some(page);
                }
                run_len += 1;
            }
        }
        flush_run!();
        // Dirty pages displaced by this record's fills go to the disk as
        // background writes.
        let writebacks = mem.take_writebacks();
        if !writebacks.is_empty() {
            submit_writes!(writebacks, now);
        }
    }

    // Close out remaining boundaries and settle at the end.
    advance_to!(duration);
    mem.settle(duration);
    disk.settle(duration);

    let end_energy = snapshot_energy!();
    let window = duration - config.warmup_secs;
    let cache_accesses = mem.accesses() - w_acc;
    let hits = mem.hits() - w_hits;
    RunReport {
        label: label.to_string(),
        duration_secs: window,
        energy: end_energy.since(&w_energy),
        cache_accesses,
        hits,
        disk_page_accesses: disk_pages - w_pages,
        disk_requests: disk.requests() - w_req,
        mean_latency_secs: latency.mean(),
        request_latency_p50_secs: {
            request_latencies.sort_by(f64::total_cmp);
            jpmd_stats::percentile(&request_latencies, 0.5).unwrap_or(0.0)
        },
        request_latency_p99_secs: jpmd_stats::percentile(&request_latencies, 0.99).unwrap_or(0.0),
        max_latency_secs: max_latency,
        long_latency_count: long_count,
        utilization: (disk.busy_secs() - w_busy) / window.max(f64::MIN_POSITIVE),
        spin_downs: disk.spin_downs() - w_spin,
        periods: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ControlAction, NullController};
    use jpmd_mem::{IdlePolicy, MemConfig, RdramModel};
    use jpmd_trace::{FileId, TraceRecord};

    fn mem_config(banks: u32) -> MemConfig {
        MemConfig {
            page_bytes: 1 << 20,
            bank_pages: 4,
            total_banks: 8,
            initial_banks: banks,
            model: RdramModel::default(),
            policy: IdlePolicy::Nap,
        }
    }

    fn record(time: f64, first_page: u64, pages: u64) -> TraceRecord {
        TraceRecord {
            time,
            file: FileId(0),
            first_page,
            pages,
            kind: jpmd_trace::AccessKind::Read,
        }
    }

    fn small_trace() -> Trace {
        // Two bursts on the same pages: second burst hits.
        Trace::new(
            vec![
                record(1.0, 0, 4),
                record(2.0, 0, 4),
                record(300.0, 8, 2),
            ],
            1 << 20,
            64,
        )
    }

    #[test]
    fn hits_and_misses_accounted() {
        let config = SimConfig::with_mem(mem_config(8));
        let report = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &small_trace(),
            400.0,
            "test",
        );
        assert_eq!(report.cache_accesses, 10);
        assert_eq!(report.hits, 4);
        assert_eq!(report.disk_page_accesses, 6);
        assert_eq!(report.disk_requests, 2);
        assert_eq!(report.spin_downs, 0);
    }

    #[test]
    fn always_on_energy_matches_hand_calculation() {
        let config = SimConfig::with_mem(mem_config(8));
        let report = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &small_trace(),
            400.0,
            "test",
        );
        // Disk: idle 7.5 W for (400 - busy) plus active 12.5 × busy.
        let busy = report.utilization * 400.0;
        let expect_disk = 7.5 * (400.0 - busy) + 12.5 * busy;
        assert!(
            (report.energy.disk.total_j() - expect_disk).abs() < 1e-6,
            "disk {} vs {expect_disk}",
            report.energy.disk.total_j()
        );
        // Memory static: 8 banks × 4 MiB × 0.65625 mW/MB × 400 s.
        let expect_mem_static = 8.0 * 4.0 * 0.65625e-3 * 400.0;
        assert!((report.energy.mem.static_j - expect_mem_static).abs() < 1e-6);
    }

    #[test]
    fn spindown_saves_energy_on_long_gaps() {
        let config = SimConfig::with_mem(mem_config(8));
        let on = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &small_trace(),
            400.0,
            "on",
        );
        let two_t = run_simulation(
            &config,
            SpinDownPolicy::two_competitive(&config.disk_power),
            &mut NullController,
            &small_trace(),
            400.0,
            "2t",
        );
        assert!(two_t.spin_downs >= 1);
        assert!(two_t.energy.disk.total_j() < on.energy.disk.total_j());
        // The request at t = 300 wakes the disk: long latency.
        assert!(two_t.long_latency_count >= 1);
        assert_eq!(on.long_latency_count, 0);
    }

    #[test]
    fn period_rows_cover_run() {
        let config = SimConfig::with_mem(mem_config(8));
        let report = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &small_trace(),
            1800.0,
            "test",
        );
        assert_eq!(report.periods.len(), 3);
        assert_eq!(report.periods[0].observation.start, 0.0);
        assert_eq!(report.periods[0].observation.end, 600.0);
        assert_eq!(report.periods[2].observation.end, 1800.0);
        assert_eq!(report.periods[0].observation.cache_accesses, 10);
        assert_eq!(report.periods[1].observation.cache_accesses, 0);
    }

    #[test]
    fn warmup_excludes_early_activity() {
        let mut config = SimConfig::with_mem(mem_config(8));
        config.warmup_secs = 100.0;
        let report = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &small_trace(),
            400.0,
            "test",
        );
        // Only the t = 300 record (2 pages) is inside the window.
        assert_eq!(report.cache_accesses, 2);
        assert_eq!(report.duration_secs, 300.0);
        // Energy excludes the first 100 s: disk total < 7.5 × 400.
        assert!(report.energy.disk.total_j() < 7.5 * 310.0);
    }

    #[test]
    fn smaller_memory_causes_more_disk_accesses() {
        // 12 distinct pages cycled twice; 8-page cache (2 banks) thrashes,
        // 32-page cache (8 banks) hits on the second round.
        let mut records = Vec::new();
        for round in 0..2 {
            for i in 0..12u64 {
                records.push(record(round as f64 * 50.0 + i as f64, i, 1));
            }
        }
        let trace = Trace::new(records, 1 << 20, 64);
        let big = run_simulation(
            &SimConfig::with_mem(mem_config(8)),
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &trace,
            200.0,
            "big",
        );
        let small = run_simulation(
            &SimConfig::with_mem(mem_config(2)),
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &trace,
            200.0,
            "small",
        );
        assert_eq!(big.disk_page_accesses, 12);
        assert!(small.disk_page_accesses > big.disk_page_accesses);
        // Smaller memory spends less memory energy…
        assert!(small.energy.mem.static_j < big.energy.mem.static_j);
        // …but more disk (active) energy.
        assert!(small.energy.disk.active_j > big.energy.disk.active_j);
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn mismatched_page_size_panics() {
        let config = SimConfig::with_mem(mem_config(8));
        let trace = Trace::new(vec![record(0.0, 0, 1)], 4096, 64);
        run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &trace,
            10.0,
            "bad",
        );
    }

    fn write_record(time: f64, first_page: u64, pages: u64) -> TraceRecord {
        TraceRecord {
            kind: jpmd_trace::AccessKind::Write,
            ..record(time, first_page, pages)
        }
    }

    #[test]
    fn write_misses_defer_disk_traffic() {
        // Pure writes with the flush daemon disabled: write-allocate means
        // no disk traffic at all (everything stays dirty in memory).
        let config = SimConfig::with_mem(mem_config(8));
        let trace = Trace::new(
            vec![write_record(1.0, 0, 4), write_record(2.0, 8, 4)],
            1 << 20,
            64,
        );
        let r = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &trace,
            100.0,
            "writes",
        );
        assert_eq!(r.cache_accesses, 8);
        assert_eq!(r.disk_page_accesses, 0, "write-back defers everything");
        assert_eq!(r.disk_requests, 0);
    }

    #[test]
    fn sync_daemon_flushes_dirty_pages() {
        let mut config = SimConfig::with_mem(mem_config(8));
        config.sync_interval_secs = 30.0;
        let trace = Trace::new(vec![write_record(1.0, 0, 4)], 1 << 20, 64);
        let r = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &trace,
            100.0,
            "sync",
        );
        // The 4 dirty pages reach the disk at the t = 30 sync as one
        // coalesced write request.
        assert_eq!(r.disk_page_accesses, 4);
        assert_eq!(r.disk_requests, 1);
        // User-visible latency is untouched by background flushes.
        assert_eq!(r.long_latency_count, 0);
        assert_eq!(r.mean_latency_secs, 0.0);
    }

    #[test]
    fn frequent_sync_reduces_spin_downs() {
        // A write every 200 s: with a 20 s sync the disk is poked every
        // sync tick after each write (then goes quiet until the next
        // write); with sync disabled the disk sleeps through everything.
        let mut records = Vec::new();
        for i in 0..10u64 {
            records.push(write_record(10.0 + 200.0 * i as f64, i * 4, 2));
        }
        let trace = Trace::new(records, 1 << 20, 64);
        let run_with = |sync: f64| {
            let mut config = SimConfig::with_mem(mem_config(8));
            config.sync_interval_secs = sync;
            run_simulation(
                &config,
                SpinDownPolicy::two_competitive(&config.disk_power),
                &mut NullController,
                &trace,
                2100.0,
                "sync-sweep",
            )
        };
        let frequent = run_with(20.0);
        let never = run_with(f64::INFINITY);
        assert_eq!(never.disk_page_accesses, 0);
        assert!(frequent.disk_page_accesses > 0);
        assert!(
            frequent.energy.disk.total_j() > never.energy.disk.total_j(),
            "flush traffic must cost disk energy ({} vs {})",
            frequent.energy.disk.total_j(),
            never.energy.disk.total_j()
        );
    }

    #[test]
    fn pathological_simultaneous_arrivals() {
        // Every record at t = 0, overlapping pages: the queue absorbs the
        // burst, accounting stays consistent.
        let config = SimConfig::with_mem(mem_config(2));
        let records = (0..20u64).map(|i| record(0.0, i % 8, 3)).collect();
        let trace = Trace::new(records, 1 << 20, 64);
        let r = run_simulation(
            &config,
            SpinDownPolicy::two_competitive(&config.disk_power),
            &mut NullController,
            &trace,
            600.0,
            "burst",
        );
        assert_eq!(r.cache_accesses, 60);
        assert_eq!(r.hits + r.disk_page_accesses, r.cache_accesses);
        assert!(r.energy.total_j().is_finite());
        assert!(r.max_latency_secs >= r.request_latency_p50_secs);
    }

    #[test]
    fn pathological_whole_data_set_record() {
        // One record spanning the entire page space, larger than the cache.
        let config = SimConfig::with_mem(mem_config(2)); // 8-page cache
        let trace = Trace::new(vec![record(1.0, 0, 64)], 1 << 20, 64);
        let r = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &trace,
            100.0,
            "huge",
        );
        assert_eq!(r.cache_accesses, 64);
        assert_eq!(r.disk_page_accesses, 64);
        // The misses coalesce into a single contiguous disk request.
        assert_eq!(r.disk_requests, 1);
    }

    #[test]
    fn empty_trace_still_accounts_static_energy() {
        let config = SimConfig::with_mem(mem_config(8));
        let trace = Trace::new(vec![], 1 << 20, 64);
        let r = run_simulation(
            &config,
            SpinDownPolicy::two_competitive(&config.disk_power),
            &mut NullController,
            &trace,
            1200.0,
            "empty",
        );
        assert_eq!(r.cache_accesses, 0);
        // Disk idles then spins down once; memory naps throughout.
        assert_eq!(r.spin_downs, 1);
        assert!(r.energy.mem.static_j > 0.0);
        assert_eq!(r.mean_latency_secs, 0.0);
    }

    #[test]
    fn controller_actions_are_applied() {
        struct Shrinker;
        impl PeriodController for Shrinker {
            fn on_period_end(
                &mut self,
                obs: &PeriodObservation,
                _: &jpmd_mem::AccessLog,
            ) -> ControlAction {
                ControlAction {
                    enabled_banks: Some(obs.enabled_banks.saturating_sub(1).max(1)),
                    disk_timeout: Some(5.0),
                }
            }
            fn name(&self) -> &str {
                "shrinker"
            }
        }
        let config = SimConfig::with_mem(mem_config(8));
        let report = run_simulation(
            &config,
            SpinDownPolicy::controlled(f64::INFINITY),
            &mut Shrinker,
            &small_trace(),
            1800.0,
            "shrink",
        );
        assert_eq!(report.periods[0].action.enabled_banks, Some(7));
        assert_eq!(report.periods[1].observation.enabled_banks, 7);
        assert_eq!(report.periods[1].action.enabled_banks, Some(6));
        assert_eq!(report.periods[0].observation.disk_timeout, f64::INFINITY);
        assert_eq!(report.periods[1].observation.disk_timeout, 5.0);
    }
}
