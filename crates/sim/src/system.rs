//! The top-level single-disk simulation entry point: wires the standard
//! observer stack to the event-driven [`Engine`] and assembles the
//! [`RunReport`].

use jpmd_disk::SpinDownPolicy;
use jpmd_obs::{ObsEvent, SpanRecorder, Telemetry};
use jpmd_trace::{SourceError, Trace, TraceSource};
use serde::{Deserialize, Serialize};

use crate::{
    engine::{CheckpointPolicy, EngineCheckpoint},
    EnergyMeter, Engine, FaultInjector, FlushDaemon, HwState, LatencyTracker, PeriodAccounting,
    PeriodController, RunReport, SimConfig, SimObserver, TelemetryObserver, TimedController,
    WarmupWindow,
};

/// A crash-consistent image of a full simulation run in flight: the
/// engine-level checkpoint plus the run identity and telemetry cursor.
/// This is what `jpmd-ckpt` serializes into `.jck` files.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimCheckpoint {
    /// The interrupted run's label (resume asserts it matches).
    pub label: String,
    /// The interrupted run's target duration, s (resume asserts it
    /// matches).
    pub duration: f64,
    /// The telemetry sequence counter at the capture instant; resume
    /// fast-forwards the handle here so the combined event stream stays
    /// gap-free.
    pub telemetry_seq: u64,
    /// Span call counts at the capture instant (the deterministic half of
    /// the span aggregate).
    pub span_calls: Vec<(String, u64)>,
    /// The engine's checkpoint: stats, clock, hardware, observers.
    pub engine: EngineCheckpoint,
}

/// Outcome of a checkpointable simulation run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimOutcome {
    /// The run reached its target duration; the report is final.
    Completed(Box<RunReport>),
    /// The run stopped early at a checkpoint (cooperative shutdown, or the
    /// checkpoint callback returned `false`). The last checkpoint handed
    /// to the callback is the resume point; no report exists.
    Interrupted,
}

impl SimOutcome {
    /// The completed report, or `None` for an interrupted run.
    pub fn into_report(self) -> Option<RunReport> {
        match self {
            SimOutcome::Completed(report) => Some(*report),
            SimOutcome::Interrupted => None,
        }
    }
}

/// Checkpointing configuration for [`run_simulation_full`]: when to
/// capture, and where captured checkpoints go. The callback returns
/// whether the run should continue (`false` stops it, leaving the
/// just-delivered checkpoint as the resume point).
pub struct CheckpointOptions<'a> {
    /// When checkpoints are captured.
    pub policy: CheckpointPolicy,
    /// Receives each captured checkpoint.
    pub on_checkpoint: &'a mut dyn FnMut(SimCheckpoint) -> bool,
}

/// Wraps a checkpoint-restore decode failure as a [`SourceError`] so the
/// unified entry point keeps a single error type.
fn restore_error(e: serde::Error) -> SourceError {
    SourceError::new(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("checkpoint restore failed: {e}"),
    ))
}

/// Runs one complete system simulation: the trace drives the disk cache,
/// cache misses drive the disk, and the controller is invoked at every
/// period boundary (paper Fig. 6(b) pipeline).
///
/// * Each trace record's pages are looked up in the cache in order; missed
///   pages are coalesced into contiguous runs, each becoming one disk
///   request (this is what gives the disk its request-size mix).
/// * Hits have zero latency; every page of a missed run inherits the run's
///   request latency (queueing + spin-up + service). Accesses with latency
///   above the configured threshold count as *long-latency* (paper: 0.5 s).
/// * Metrics and energy cover the window after `config.warmup_secs`;
///   per-period rows cover the whole run.
///
/// The trace is open-loop, as in the paper: request arrival times are fixed
/// by the trace and do not shift when requests are delayed.
///
/// Internally this is a thin dispatcher: it builds the [`HwState`],
/// registers the standard observers — [`WarmupWindow`],
/// [`PeriodAccounting`], [`FlushDaemon`], [`LatencyTracker`],
/// [`EnergyMeter`], in that (load-bearing) order — and hands the replay to
/// [`Engine::run`]. All simulation state lives in those components; see
/// [`crate::engine`] and [`crate::observers`].
///
/// # Panics
///
/// Panics if the trace's page size differs from the memory configuration's,
/// or if `duration` does not exceed the warm-up.
pub fn run_simulation(
    config: &SimConfig,
    spindown: SpinDownPolicy,
    controller: &mut dyn PeriodController,
    trace: &Trace,
    duration: f64,
    label: &str,
) -> RunReport {
    run_simulation_source(
        config,
        spindown,
        controller,
        trace.source(),
        duration,
        label,
    )
    .expect("in-memory trace sources cannot fail")
}

/// Like [`run_simulation`], but replays any [`TraceSource`] — including
/// `jpmd-store`'s paged binary reader, which streams multi-GB traces at
/// O(page) resident memory. For the same record sequence the report is
/// bit-identical to the in-memory replay (asserted by the `store_stream`
/// integration tests).
///
/// # Errors
///
/// Propagates the first [`SourceError`] the source yields (I/O failure or
/// a corrupt store); no report is produced for a failed replay.
///
/// # Panics
///
/// Panics if the source's page size differs from the memory
/// configuration's, or if `duration` does not exceed the warm-up.
pub fn run_simulation_source<S: TraceSource>(
    config: &SimConfig,
    spindown: SpinDownPolicy,
    controller: &mut dyn PeriodController,
    source: S,
    duration: f64,
    label: &str,
) -> Result<RunReport, SourceError> {
    run_simulation_source_with(
        config,
        spindown,
        controller,
        source,
        duration,
        label,
        &Telemetry::disabled(),
    )
}

/// Like [`run_simulation_source`], with telemetry: run lifecycle, per-period
/// traffic, and span-timing events are emitted through `telemetry`, and the
/// engine publishes its end-of-run counters into the handle's metrics
/// registry.
///
/// The instrumentation is overhead-honest: with a disabled handle this *is*
/// [`run_simulation_source`] (which delegates here), and with any sink the
/// returned [`RunReport`] is bit-identical to the uninstrumented run — the
/// telemetry observer only reads hardware state, and span wall-clock fields
/// are excluded from report equality. Asserted by the `determinism`
/// integration tests in `jpmd-obs`.
///
/// # Errors
///
/// Propagates the first [`SourceError`] the source yields.
///
/// # Panics
///
/// Panics if the source's page size differs from the memory
/// configuration's, or if `duration` does not exceed the warm-up.
#[allow(clippy::too_many_arguments)]
pub fn run_simulation_source_with<S: TraceSource>(
    config: &SimConfig,
    spindown: SpinDownPolicy,
    controller: &mut dyn PeriodController,
    source: S,
    duration: f64,
    label: &str,
    telemetry: &Telemetry,
) -> Result<RunReport, SourceError> {
    match run_simulation_full(
        config, spindown, controller, source, duration, label, telemetry, None, None, None,
    )? {
        SimOutcome::Completed(report) => Ok(*report),
        SimOutcome::Interrupted => unreachable!("no checkpoint policy was installed"),
    }
}

/// The fully-featured entry point behind every `run_simulation*` wrapper:
/// telemetry, fault injection, crash-consistent checkpointing, and
/// resume-from-checkpoint in one wiring of the standard observer stack.
///
/// * `injector` — an optional [`FaultInjector`] installed into the
///   hardware before the replay (what `jpmd-faults` uses; `None` for
///   healthy hardware).
/// * `resume` — continue an interrupted run from its [`SimCheckpoint`].
///   The *same* configuration, spin-down policy, controller type, source,
///   and injector construction must be supplied; the checkpoint carries
///   only dynamic state. No `RunStart` is re-emitted, the telemetry
///   sequence counter fast-forwards to the checkpoint's, and span call
///   counts are pre-seeded, so the resumed run's report — and its
///   normalized telemetry stream — is bit-identical to the uninterrupted
///   run's.
/// * `checkpoints` — capture checkpoints per its policy and hand them to
///   its callback; see [`CheckpointOptions`].
///
/// Completed runs close the telemetry handle ([`Telemetry::close`]), which
/// surfaces any records the sink dropped on write errors; interrupted runs
/// return [`SimOutcome::Interrupted`] immediately without a report (the
/// checkpoint callback has already seen the resume point).
///
/// # Errors
///
/// Propagates the first [`SourceError`] the source yields. A checkpoint
/// whose images do not decode against this run's observer stack fails with
/// a `SourceError` wrapping the decode error.
///
/// # Panics
///
/// Panics if the source's page size differs from the memory
/// configuration's, if `duration` does not exceed the warm-up, or if a
/// resume checkpoint's label/duration disagree with the arguments.
#[allow(clippy::too_many_arguments)]
pub fn run_simulation_full<S: TraceSource>(
    config: &SimConfig,
    spindown: SpinDownPolicy,
    controller: &mut dyn PeriodController,
    source: S,
    duration: f64,
    label: &str,
    telemetry: &Telemetry,
    injector: Option<Box<dyn FaultInjector>>,
    resume: Option<&SimCheckpoint>,
    checkpoints: Option<CheckpointOptions<'_>>,
) -> Result<SimOutcome, SourceError> {
    config.validate();
    assert_eq!(
        source.page_bytes(),
        config.mem.page_bytes,
        "trace and memory must agree on the page size"
    );
    assert!(
        duration > config.warmup_secs,
        "duration must exceed the warm-up window"
    );
    if let Some(ckpt) = resume {
        assert_eq!(
            ckpt.label, label,
            "checkpoint was captured from a different run"
        );
        assert_eq!(
            ckpt.duration, duration,
            "checkpoint was captured for a different duration"
        );
    }

    let spans = SpanRecorder::new();
    if let Some(ckpt) = resume {
        // Continue the interrupted stream: no second RunStart, the next
        // event gets the next sequence number, spans keep their counts.
        telemetry.set_seq(ckpt.telemetry_seq);
        spans.seed_calls(&ckpt.span_calls);
    } else {
        telemetry.emit_with(|| ObsEvent::RunStart {
            label: label.to_string(),
            duration_s: duration,
        });
    }

    let mut hw = HwState::new(config, spindown, source.total_pages().max(1));
    if let Some(injector) = injector {
        hw.set_fault_injector(injector);
    }
    let mut timed = TimedController::new(controller, spans.clone(), telemetry.clone());
    let mut warmup = WarmupWindow::new(config.warmup_secs);
    let mut periods = PeriodAccounting::new(
        &mut timed,
        config.period_secs,
        config.aggregation_window_secs,
        config.long_latency_secs,
    );
    let mut flush = FlushDaemon::new(config.sync_interval_secs);
    let mut latency = LatencyTracker::new(config.warmup_secs, config.long_latency_secs);
    let mut energy = EnergyMeter::new();
    let mut observer = TelemetryObserver::new(telemetry);

    let (policy, mut on_checkpoint) = match checkpoints {
        Some(options) => (Some(options.policy), Some(options.on_checkpoint)),
        None => (None, None),
    };

    let run = {
        // Registration order is load-bearing: same-instant timers fire in
        // this order (warm-up snapshot, then period row, then sync tick).
        // The telemetry observer goes last — it is purely passive, so its
        // position only matters in that it must see events after the
        // components that settle the hardware. Checkpoint observer images
        // are stored in this same order.
        let mut observers: Vec<&mut dyn SimObserver> = vec![
            &mut warmup,
            &mut periods,
            &mut flush,
            &mut latency,
            &mut energy,
        ];
        if telemetry.is_enabled() {
            observers.push(&mut observer);
        }
        if let Some(ckpt) = resume {
            hw.restore_state(&ckpt.engine.hw).map_err(restore_error)?;
            if ckpt.engine.observers.len() != observers.len() {
                return Err(restore_error(serde::Error::custom(format!(
                    "checkpoint holds {} observer images but this run registers {} observers \
                     (was telemetry toggled between capture and resume?)",
                    ckpt.engine.observers.len(),
                    observers.len()
                ))));
            }
            for (observer, state) in observers.iter_mut().zip(&ckpt.engine.observers) {
                observer.restore_state(state).map_err(restore_error)?;
            }
        }
        let mut forward = |engine: EngineCheckpoint| -> bool {
            match on_checkpoint.as_mut() {
                Some(callback) => callback(SimCheckpoint {
                    label: label.to_string(),
                    duration,
                    telemetry_seq: telemetry.seq(),
                    span_calls: spans.call_counts(),
                    engine,
                }),
                None => true,
            }
        };
        let _replay = spans.time_with("engine.replay", telemetry);
        Engine::with_metrics(telemetry.registry()).run_source_with_checkpoints(
            source,
            duration,
            &mut hw,
            &mut observers,
            policy.as_ref(),
            &mut forward,
            resume.map(|ckpt| &ckpt.engine),
        )?
    };
    if run.interrupted {
        return Ok(SimOutcome::Interrupted);
    }

    let window = duration - config.warmup_secs;
    let (traffic, lat) = {
        let _finalize = spans.time_with("report.finalize", telemetry);
        (energy.finalize(&hw, window), latency.finalize())
    };
    let report = RunReport {
        label: label.to_string(),
        duration_secs: window,
        energy: traffic.energy,
        cache_accesses: traffic.cache_accesses,
        hits: traffic.hits,
        disk_page_accesses: traffic.disk_page_accesses,
        disk_requests: traffic.disk_requests,
        mean_latency_secs: lat.mean_latency_secs,
        request_latency_p50_secs: lat.request_latency_p50_secs,
        request_latency_p99_secs: lat.request_latency_p99_secs,
        max_latency_secs: lat.max_latency_secs,
        long_latency_count: lat.long_latency_count,
        utilization: traffic.utilization,
        spin_downs: traffic.spin_downs,
        periods: periods.into_rows(),
        engine: run.stats,
        spans: spans.snapshot(),
    };
    telemetry.emit_with(|| ObsEvent::RunEnd {
        label: report.label.clone(),
        periods: report.periods.len() as u64,
        events: report.engine.events_processed,
    });
    telemetry.close();
    Ok(SimOutcome::Completed(Box::new(report)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ControlAction, NullController, PeriodObservation};
    use jpmd_mem::{IdlePolicy, MemConfig, RdramModel};
    use jpmd_trace::{FileId, TraceRecord};

    fn mem_config(banks: u32) -> MemConfig {
        MemConfig {
            page_bytes: 1 << 20,
            bank_pages: 4,
            total_banks: 8,
            initial_banks: banks,
            model: RdramModel::default(),
            policy: IdlePolicy::Nap,
        }
    }

    fn record(time: f64, first_page: u64, pages: u64) -> TraceRecord {
        TraceRecord {
            time,
            file: FileId(0),
            first_page,
            pages,
            kind: jpmd_trace::AccessKind::Read,
        }
    }

    fn small_trace() -> Trace {
        // Two bursts on the same pages: second burst hits.
        Trace::new(
            vec![record(1.0, 0, 4), record(2.0, 0, 4), record(300.0, 8, 2)],
            1 << 20,
            64,
        )
    }

    #[test]
    fn hits_and_misses_accounted() {
        let config = SimConfig::with_mem(mem_config(8));
        let report = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &small_trace(),
            400.0,
            "test",
        );
        assert_eq!(report.cache_accesses, 10);
        assert_eq!(report.hits, 4);
        assert_eq!(report.disk_page_accesses, 6);
        assert_eq!(report.disk_requests, 2);
        assert_eq!(report.spin_downs, 0);
    }

    #[test]
    fn engine_counters_surface_in_report() {
        let config = SimConfig::with_mem(mem_config(8));
        let report = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &small_trace(),
            400.0,
            "test",
        );
        assert_eq!(report.engine.counts.accesses, 10);
        assert_eq!(report.engine.counts.misses, 2);
        assert_eq!(report.engine.counts.disk_requests, 2);
        assert_eq!(report.engine.counts.period_boundaries, 0);
        assert_eq!(report.engine.events_processed, report.engine.counts.total());
        assert!(report.engine.replay_wall_secs > 0.0);
        assert!(report.engine.accesses_per_sec > 0.0);
        // One trailing partial-period row in the event log.
        assert_eq!(report.engine.period_log.len(), 1);
        assert_eq!(report.engine.period_log[0].end, 400.0);
    }

    #[test]
    fn always_on_energy_matches_hand_calculation() {
        let config = SimConfig::with_mem(mem_config(8));
        let report = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &small_trace(),
            400.0,
            "test",
        );
        // Disk: idle 7.5 W for (400 - busy) plus active 12.5 × busy.
        let busy = report.utilization * 400.0;
        let expect_disk = 7.5 * (400.0 - busy) + 12.5 * busy;
        assert!(
            (report.energy.disk.total_j() - expect_disk).abs() < 1e-6,
            "disk {} vs {expect_disk}",
            report.energy.disk.total_j()
        );
        // Memory static: 8 banks × 4 MiB × 0.65625 mW/MB × 400 s.
        let expect_mem_static = 8.0 * 4.0 * 0.65625e-3 * 400.0;
        assert!((report.energy.mem.static_j - expect_mem_static).abs() < 1e-6);
    }

    #[test]
    fn spindown_saves_energy_on_long_gaps() {
        let config = SimConfig::with_mem(mem_config(8));
        let on = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &small_trace(),
            400.0,
            "on",
        );
        let two_t = run_simulation(
            &config,
            SpinDownPolicy::two_competitive(&config.disk_power),
            &mut NullController,
            &small_trace(),
            400.0,
            "2t",
        );
        assert!(two_t.spin_downs >= 1);
        assert!(two_t.energy.disk.total_j() < on.energy.disk.total_j());
        // The request at t = 300 wakes the disk: long latency.
        assert!(two_t.long_latency_count >= 1);
        assert_eq!(on.long_latency_count, 0);
    }

    #[test]
    fn period_rows_cover_run() {
        let config = SimConfig::with_mem(mem_config(8));
        let report = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &small_trace(),
            1800.0,
            "test",
        );
        assert_eq!(report.periods.len(), 3);
        assert_eq!(report.periods[0].observation.start, 0.0);
        assert_eq!(report.periods[0].observation.end, 600.0);
        assert_eq!(report.periods[2].observation.end, 1800.0);
        assert_eq!(report.periods[0].observation.cache_accesses, 10);
        assert_eq!(report.periods[1].observation.cache_accesses, 0);
    }

    #[test]
    fn warmup_excludes_early_activity() {
        let mut config = SimConfig::with_mem(mem_config(8));
        config.warmup_secs = 100.0;
        let report = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &small_trace(),
            400.0,
            "test",
        );
        // Only the t = 300 record (2 pages) is inside the window.
        assert_eq!(report.cache_accesses, 2);
        assert_eq!(report.duration_secs, 300.0);
        // Energy excludes the first 100 s: disk total < 7.5 × 400.
        assert!(report.energy.disk.total_j() < 7.5 * 310.0);
    }

    #[test]
    fn smaller_memory_causes_more_disk_accesses() {
        // 12 distinct pages cycled twice; 8-page cache (2 banks) thrashes,
        // 32-page cache (8 banks) hits on the second round.
        let mut records = Vec::new();
        for round in 0..2 {
            for i in 0..12u64 {
                records.push(record(round as f64 * 50.0 + i as f64, i, 1));
            }
        }
        let trace = Trace::new(records, 1 << 20, 64);
        let big = run_simulation(
            &SimConfig::with_mem(mem_config(8)),
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &trace,
            200.0,
            "big",
        );
        let small = run_simulation(
            &SimConfig::with_mem(mem_config(2)),
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &trace,
            200.0,
            "small",
        );
        assert_eq!(big.disk_page_accesses, 12);
        assert!(small.disk_page_accesses > big.disk_page_accesses);
        // Smaller memory spends less memory energy…
        assert!(small.energy.mem.static_j < big.energy.mem.static_j);
        // …but more disk (active) energy.
        assert!(small.energy.disk.active_j > big.energy.disk.active_j);
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn mismatched_page_size_panics() {
        let config = SimConfig::with_mem(mem_config(8));
        let trace = Trace::new(vec![record(0.0, 0, 1)], 4096, 64);
        run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &trace,
            10.0,
            "bad",
        );
    }

    fn write_record(time: f64, first_page: u64, pages: u64) -> TraceRecord {
        TraceRecord {
            kind: jpmd_trace::AccessKind::Write,
            ..record(time, first_page, pages)
        }
    }

    #[test]
    fn write_misses_defer_disk_traffic() {
        // Pure writes with the flush daemon disabled: write-allocate means
        // no disk traffic at all (everything stays dirty in memory).
        let config = SimConfig::with_mem(mem_config(8));
        let trace = Trace::new(
            vec![write_record(1.0, 0, 4), write_record(2.0, 8, 4)],
            1 << 20,
            64,
        );
        let r = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &trace,
            100.0,
            "writes",
        );
        assert_eq!(r.cache_accesses, 8);
        assert_eq!(r.disk_page_accesses, 0, "write-back defers everything");
        assert_eq!(r.disk_requests, 0);
    }

    #[test]
    fn sync_daemon_flushes_dirty_pages() {
        let mut config = SimConfig::with_mem(mem_config(8));
        config.sync_interval_secs = 30.0;
        let trace = Trace::new(vec![write_record(1.0, 0, 4)], 1 << 20, 64);
        let r = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &trace,
            100.0,
            "sync",
        );
        // The 4 dirty pages reach the disk at the t = 30 sync as one
        // coalesced write request.
        assert_eq!(r.disk_page_accesses, 4);
        assert_eq!(r.disk_requests, 1);
        // User-visible latency is untouched by background flushes.
        assert_eq!(r.long_latency_count, 0);
        assert_eq!(r.mean_latency_secs, 0.0);
        // Sync ticks are visible in the engine counters (t = 30, 60, 90).
        assert_eq!(r.engine.counts.syncs, 3);
    }

    #[test]
    fn frequent_sync_reduces_spin_downs() {
        // A write every 200 s: with a 20 s sync the disk is poked every
        // sync tick after each write (then goes quiet until the next
        // write); with sync disabled the disk sleeps through everything.
        let mut records = Vec::new();
        for i in 0..10u64 {
            records.push(write_record(10.0 + 200.0 * i as f64, i * 4, 2));
        }
        let trace = Trace::new(records, 1 << 20, 64);
        let run_with = |sync: f64| {
            let mut config = SimConfig::with_mem(mem_config(8));
            config.sync_interval_secs = sync;
            run_simulation(
                &config,
                SpinDownPolicy::two_competitive(&config.disk_power),
                &mut NullController,
                &trace,
                2100.0,
                "sync-sweep",
            )
        };
        let frequent = run_with(20.0);
        let never = run_with(f64::INFINITY);
        assert_eq!(never.disk_page_accesses, 0);
        assert!(frequent.disk_page_accesses > 0);
        assert!(
            frequent.energy.disk.total_j() > never.energy.disk.total_j(),
            "flush traffic must cost disk energy ({} vs {})",
            frequent.energy.disk.total_j(),
            never.energy.disk.total_j()
        );
    }

    #[test]
    fn pathological_simultaneous_arrivals() {
        // Every record at t = 0, overlapping pages: the queue absorbs the
        // burst, accounting stays consistent.
        let config = SimConfig::with_mem(mem_config(2));
        let records = (0..20u64).map(|i| record(0.0, i % 8, 3)).collect();
        let trace = Trace::new(records, 1 << 20, 64);
        let r = run_simulation(
            &config,
            SpinDownPolicy::two_competitive(&config.disk_power),
            &mut NullController,
            &trace,
            600.0,
            "burst",
        );
        assert_eq!(r.cache_accesses, 60);
        assert_eq!(r.hits + r.disk_page_accesses, r.cache_accesses);
        assert!(r.energy.total_j().is_finite());
        assert!(r.max_latency_secs >= r.request_latency_p50_secs);
    }

    #[test]
    fn pathological_whole_data_set_record() {
        // One record spanning the entire page space, larger than the cache.
        let config = SimConfig::with_mem(mem_config(2)); // 8-page cache
        let trace = Trace::new(vec![record(1.0, 0, 64)], 1 << 20, 64);
        let r = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &trace,
            100.0,
            "huge",
        );
        assert_eq!(r.cache_accesses, 64);
        assert_eq!(r.disk_page_accesses, 64);
        // The misses coalesce into a single contiguous disk request.
        assert_eq!(r.disk_requests, 1);
    }

    #[test]
    fn empty_trace_still_accounts_static_energy() {
        let config = SimConfig::with_mem(mem_config(8));
        let trace = Trace::new(vec![], 1 << 20, 64);
        let r = run_simulation(
            &config,
            SpinDownPolicy::two_competitive(&config.disk_power),
            &mut NullController,
            &trace,
            1200.0,
            "empty",
        );
        assert_eq!(r.cache_accesses, 0);
        // Disk idles then spins down once; memory naps throughout.
        assert_eq!(r.spin_downs, 1);
        assert!(r.energy.mem.static_j > 0.0);
        assert_eq!(r.mean_latency_secs, 0.0);
    }

    #[test]
    fn controller_actions_are_applied() {
        struct Shrinker;
        impl PeriodController for Shrinker {
            fn on_period_end(
                &mut self,
                obs: &PeriodObservation,
                _: &jpmd_mem::AccessLog,
            ) -> ControlAction {
                ControlAction {
                    enabled_banks: Some(obs.enabled_banks.saturating_sub(1).max(1)),
                    disk_timeout: Some(5.0),
                }
            }
            fn name(&self) -> &str {
                "shrinker"
            }
        }
        let config = SimConfig::with_mem(mem_config(8));
        let report = run_simulation(
            &config,
            SpinDownPolicy::controlled(f64::INFINITY),
            &mut Shrinker,
            &small_trace(),
            1800.0,
            "shrink",
        );
        assert_eq!(report.periods[0].action.enabled_banks, Some(7));
        assert_eq!(report.periods[1].observation.enabled_banks, 7);
        assert_eq!(report.periods[1].action.enabled_banks, Some(6));
        assert_eq!(report.periods[0].observation.disk_timeout, f64::INFINITY);
        assert_eq!(report.periods[1].observation.disk_timeout, 5.0);
    }
}
