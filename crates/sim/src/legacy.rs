//! The pre-refactor monolithic replay loop, kept verbatim (test-only) as
//! the oracle for the event-driven [`Engine`](crate::Engine): the
//! regression tests at the bottom assert that
//! [`run_simulation`](crate::run_simulation) reproduces this loop's
//! physics bit for bit across representative configurations.

use jpmd_disk::{Disk, SpinDownPolicy};
use jpmd_mem::MemoryManager;
use jpmd_stats::{IdleIntervals, Welford};
use jpmd_trace::{AccessKind, Trace};

use crate::{
    EnergyBreakdown, EngineStats, PeriodController, PeriodObservation, PeriodRow, RunReport,
    SimConfig,
};

/// The original monolithic `run_simulation`, unchanged except for filling
/// the new [`RunReport::engine`] field with a default (the legacy loop has
/// no event counters).
#[allow(clippy::too_many_lines)]
pub fn run_simulation_legacy(
    config: &SimConfig,
    mut spindown: SpinDownPolicy,
    controller: &mut dyn PeriodController,
    trace: &Trace,
    duration: f64,
    label: &str,
) -> RunReport {
    config.validate();
    assert_eq!(
        trace.page_bytes(),
        config.mem.page_bytes,
        "trace and memory must agree on the page size"
    );
    assert!(
        duration > config.warmup_secs,
        "duration must exceed the warm-up window"
    );

    let page_bytes = config.mem.page_bytes;
    let mut mem = MemoryManager::new(config.mem);
    mem.set_replacement(config.replacement);
    mem.set_consolidation(config.consolidate);
    let mut disk = Disk::new(
        config.disk_power,
        config.disk_service,
        trace.total_pages().max(1),
    );
    disk.set_timeout(spindown.timeout());

    // Period bookkeeping.
    let mut rows: Vec<PeriodRow> = Vec::new();
    let mut period_start = 0.0f64;
    let mut next_period = config.period_secs;
    let mut p_acc = 0u64;
    let mut p_req = 0u64;
    let mut p_busy = 0.0f64;
    let mut p_delayed = 0u64;
    let mut p_energy = EnergyBreakdown::default();
    let mut period_disk_times: Vec<f64> = Vec::new();

    // Dirty-page flush daemon.
    let mut next_sync = config.sync_interval_secs;
    // All pages moved between disk and memory (read misses + write-backs).
    let mut disk_pages = 0u64;
    let mut p_pages = 0u64;
    let mut w_pages = 0u64;

    // Measured-window bookkeeping (post warm-up).
    let mut warm = config.warmup_secs <= 0.0;
    let mut w_energy = EnergyBreakdown::default();
    let mut w_acc = 0u64;
    let mut w_hits = 0u64;
    let mut w_req = 0u64;
    let mut w_busy = 0.0f64;
    let mut w_spin = 0u64;
    let mut latency = Welford::new();
    let mut request_latencies: Vec<f64> = Vec::new();
    let mut long_count = 0u64;

    macro_rules! snapshot_energy {
        () => {
            EnergyBreakdown {
                mem: mem.energy(),
                disk: disk.energy(),
            }
        };
    }

    macro_rules! submit_writes {
        ($pages:expr, $at:expr) => {
            let mut pages: Vec<u64> = $pages;
            pages.sort_unstable();
            let at: f64 = $at;
            let mut i = 0usize;
            while i < pages.len() {
                let first = pages[i];
                let mut len = 1u64;
                while i + (len as usize) < pages.len() && pages[i + len as usize] == first + len {
                    len += 1;
                }
                let outcome = disk.submit(at, first, len, page_bytes);
                let timeout = spindown.after_request(&outcome, &config.disk_power);
                disk.set_timeout(timeout);
                period_disk_times.push(at);
                disk_pages += len;
                i += len as usize;
            }
        };
    }

    macro_rules! advance_to {
        ($t:expr) => {
            let target: f64 = $t;
            loop {
                let pm_boundary = if !warm && config.warmup_secs <= next_period {
                    config.warmup_secs
                } else {
                    next_period
                };
                let boundary = pm_boundary.min(next_sync);
                if boundary > target {
                    break;
                }
                if next_sync < pm_boundary {
                    // Flush daemon tick.
                    let dirty = mem.sync_dirty();
                    submit_writes!(dirty, next_sync);
                    next_sync += config.sync_interval_secs;
                    continue;
                }
                mem.settle(boundary);
                disk.settle(boundary);
                if !warm && boundary == config.warmup_secs {
                    warm = true;
                    w_energy = snapshot_energy!();
                    w_acc = mem.accesses();
                    w_hits = mem.hits();
                    w_req = disk.requests();
                    w_busy = disk.busy_secs();
                    w_spin = disk.spin_downs();
                    w_pages = disk_pages;
                    if config.warmup_secs < next_period {
                        continue;
                    }
                }
                // Period boundary.
                let observation = PeriodObservation {
                    start: period_start,
                    end: boundary,
                    cache_accesses: mem.accesses() - p_acc,
                    disk_page_accesses: disk_pages - p_pages,
                    disk_requests: disk.requests() - p_req,
                    disk_busy_secs: disk.busy_secs() - p_busy,
                    idle: IdleIntervals::from_timestamps(
                        &period_disk_times,
                        config.aggregation_window_secs,
                    )
                    .stats(),
                    delayed_page_accesses: p_delayed,
                    enabled_banks: mem.enabled_banks(),
                    disk_timeout: disk.timeout(),
                    energy_total_j: snapshot_energy!().since(&p_energy).total_j(),
                };
                let log = mem.take_log();
                let action = controller.on_period_end(&observation, &log);
                if let Some(banks) = action.enabled_banks {
                    mem.set_enabled_banks(banks, boundary);
                }
                if let Some(t) = action.disk_timeout {
                    spindown.set_controlled_timeout(t);
                    disk.set_timeout(t);
                }
                rows.push(PeriodRow {
                    observation,
                    action,
                });
                period_start = boundary;
                next_period = boundary + config.period_secs;
                p_acc = mem.accesses();
                p_pages = disk_pages;
                p_req = disk.requests();
                p_busy = disk.busy_secs();
                p_delayed = 0;
                p_energy = snapshot_energy!();
                period_disk_times.clear();
            }
        };
    }

    let mut max_latency = 0.0f64;
    for record in trace.records() {
        if record.time >= duration {
            break;
        }
        advance_to!(record.time);
        let now = record.time;
        let measuring = warm;
        let is_write = record.kind == AccessKind::Write;

        // Walk the record's pages, coalescing misses into runs.
        let mut run_start: Option<u64> = None;
        let mut run_len = 0u64;
        macro_rules! flush_run {
            () => {
                if let Some(first) = run_start.take() {
                    let outcome = disk.submit(now, first, run_len, page_bytes);
                    let timeout = spindown.after_request(&outcome, &config.disk_power);
                    disk.set_timeout(timeout);
                    period_disk_times.push(now);
                    disk_pages += run_len;
                    if outcome.latency > config.long_latency_secs {
                        p_delayed += run_len;
                    }
                    if measuring {
                        request_latencies.push(outcome.latency);
                        for _ in 0..run_len {
                            latency.push(outcome.latency);
                        }
                        if outcome.latency > config.long_latency_secs {
                            long_count += run_len;
                        }
                        if outcome.latency > max_latency {
                            max_latency = outcome.latency;
                        }
                    }
                    #[allow(unused_assignments)]
                    {
                        run_len = 0;
                    }
                }
            };
        }
        for page in record.page_range() {
            let served_from_memory = mem.access_rw(page, now, is_write);
            if served_from_memory {
                flush_run!();
                if measuring {
                    latency.push(0.0);
                }
            } else {
                if run_start.is_none() {
                    run_start = Some(page);
                }
                run_len += 1;
            }
        }
        flush_run!();
        let writebacks = mem.take_writebacks();
        if !writebacks.is_empty() {
            submit_writes!(writebacks, now);
        }
    }

    // Close out remaining boundaries and settle at the end.
    advance_to!(duration);
    mem.settle(duration);
    disk.settle(duration);

    let end_energy = snapshot_energy!();
    let window = duration - config.warmup_secs;
    let cache_accesses = mem.accesses() - w_acc;
    let hits = mem.hits() - w_hits;
    RunReport {
        label: label.to_string(),
        duration_secs: window,
        energy: end_energy.since(&w_energy),
        cache_accesses,
        hits,
        disk_page_accesses: disk_pages - w_pages,
        disk_requests: disk.requests() - w_req,
        mean_latency_secs: latency.mean(),
        request_latency_p50_secs: {
            request_latencies.sort_by(f64::total_cmp);
            jpmd_stats::percentile(&request_latencies, 0.5).unwrap_or(0.0)
        },
        request_latency_p99_secs: jpmd_stats::percentile(&request_latencies, 0.99).unwrap_or(0.0),
        max_latency_secs: max_latency,
        long_latency_count: long_count,
        utilization: (disk.busy_secs() - w_busy) / window.max(f64::MIN_POSITIVE),
        spin_downs: disk.spin_downs() - w_spin,
        periods: rows,
        engine: EngineStats::default(),
        spans: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_simulation, ControlAction, NullController};
    use jpmd_mem::{IdlePolicy, MemConfig, RdramModel};
    use jpmd_trace::{FileId, TraceRecord, WorkloadBuilder, GIB, MIB};

    fn mem_config(banks: u32) -> MemConfig {
        MemConfig {
            page_bytes: 1 << 20,
            bank_pages: 4,
            total_banks: 8,
            initial_banks: banks,
            model: RdramModel::default(),
            policy: IdlePolicy::Nap,
        }
    }

    fn record(time: f64, first_page: u64, pages: u64, write: bool) -> TraceRecord {
        TraceRecord {
            time,
            file: FileId(0),
            first_page,
            pages,
            kind: if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        }
    }

    /// Bit-for-bit comparison of every physics field (everything except
    /// the engine counters, which the legacy loop does not produce).
    fn assert_physics_equal(engine: &RunReport, legacy: &RunReport) {
        assert_eq!(engine.label, legacy.label);
        assert_eq!(engine.duration_secs, legacy.duration_secs);
        assert_eq!(engine.energy, legacy.energy, "energy breakdown");
        assert_eq!(engine.cache_accesses, legacy.cache_accesses);
        assert_eq!(engine.hits, legacy.hits);
        assert_eq!(engine.disk_page_accesses, legacy.disk_page_accesses);
        assert_eq!(engine.disk_requests, legacy.disk_requests);
        assert_eq!(engine.mean_latency_secs, legacy.mean_latency_secs);
        assert_eq!(
            engine.request_latency_p50_secs,
            legacy.request_latency_p50_secs
        );
        assert_eq!(
            engine.request_latency_p99_secs,
            legacy.request_latency_p99_secs
        );
        assert_eq!(engine.max_latency_secs, legacy.max_latency_secs);
        assert_eq!(engine.long_latency_count, legacy.long_latency_count);
        assert_eq!(engine.utilization, legacy.utilization);
        assert_eq!(engine.spin_downs, legacy.spin_downs);
        assert_eq!(engine.periods, legacy.periods, "period rows");
    }

    fn synthetic_trace() -> Trace {
        WorkloadBuilder::new()
            .data_set_bytes(GIB / 4)
            .rate_bytes_per_sec(8 * MIB)
            .popularity(0.25)
            .write_fraction(0.3)
            .duration_secs(2000.0)
            .seed(11)
            .build()
            .expect("workload generation")
    }

    #[test]
    fn engine_matches_legacy_always_on_multi_period() {
        let config = SimConfig::with_mem(mem_config(8));
        let trace = synthetic_trace();
        let a = run_simulation(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &trace,
            1800.0,
            "oracle",
        );
        let b = run_simulation_legacy(
            &config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            &trace,
            1800.0,
            "oracle",
        );
        assert_physics_equal(&a, &b);
        assert!(a.periods.len() >= 2);
        // The engine side additionally carries the event counters.
        assert_eq!(a.engine.counts.accesses, a.cache_accesses);
        assert_eq!(a.engine.counts.period_boundaries as usize, a.periods.len());
    }

    #[test]
    fn engine_matches_legacy_with_warmup_sync_and_spindown() {
        let mut config = SimConfig::with_mem(mem_config(4));
        config.warmup_secs = 250.0;
        config.sync_interval_secs = 30.0;
        let trace = synthetic_trace();
        let a = run_simulation(
            &config,
            SpinDownPolicy::two_competitive(&config.disk_power),
            &mut NullController,
            &trace,
            1900.0,
            "oracle",
        );
        let b = run_simulation_legacy(
            &config,
            SpinDownPolicy::two_competitive(&config.disk_power),
            &mut NullController,
            &trace,
            1900.0,
            "oracle",
        );
        assert_physics_equal(&a, &b);
        assert!(a.engine.counts.syncs > 0);
        assert!(a.engine.counts.warmup_ends == 1);
    }

    #[test]
    fn engine_matches_legacy_with_active_controller() {
        struct Shrinker;
        impl PeriodController for Shrinker {
            fn on_period_end(
                &mut self,
                obs: &PeriodObservation,
                _: &jpmd_mem::AccessLog,
            ) -> ControlAction {
                ControlAction {
                    enabled_banks: Some(obs.enabled_banks.saturating_sub(1).max(1)),
                    disk_timeout: Some(5.0),
                }
            }
            fn name(&self) -> &str {
                "shrinker"
            }
        }
        let config = SimConfig::with_mem(mem_config(8));
        let trace = synthetic_trace();
        let a = run_simulation(
            &config,
            SpinDownPolicy::controlled(f64::INFINITY),
            &mut Shrinker,
            &trace,
            1800.0,
            "oracle",
        );
        let b = run_simulation_legacy(
            &config,
            SpinDownPolicy::controlled(f64::INFINITY),
            &mut Shrinker,
            &trace,
            1800.0,
            "oracle",
        );
        assert_physics_equal(&a, &b);
        // Controller actions actually fired in both runs.
        assert_eq!(a.periods[0].action.enabled_banks, Some(7));
    }

    #[test]
    fn engine_matches_legacy_when_warmup_equals_period() {
        // The hairiest tie: warm-up snapshot and first period boundary at
        // the same instant, with the flush daemon also landing on it.
        let mut config = SimConfig::with_mem(mem_config(8));
        config.warmup_secs = config.period_secs;
        config.sync_interval_secs = config.period_secs / 4.0;
        let trace = synthetic_trace();
        let a = run_simulation(
            &config,
            SpinDownPolicy::two_competitive(&config.disk_power),
            &mut NullController,
            &trace,
            1800.0,
            "oracle",
        );
        let b = run_simulation_legacy(
            &config,
            SpinDownPolicy::two_competitive(&config.disk_power),
            &mut NullController,
            &trace,
            1800.0,
            "oracle",
        );
        assert_physics_equal(&a, &b);
    }

    // ------------------------------------------------------------------
    // Period-boundary edge cases (consistent rows from both paths).
    // ------------------------------------------------------------------

    fn check_both(config: &SimConfig, trace: &Trace, duration: f64) -> (RunReport, RunReport) {
        let a = run_simulation(
            config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            trace,
            duration,
            "edge",
        );
        let b = run_simulation_legacy(
            config,
            SpinDownPolicy::AlwaysOn,
            &mut NullController,
            trace,
            duration,
            "edge",
        );
        assert_physics_equal(&a, &b);
        (a, b)
    }

    #[test]
    fn access_exactly_on_period_boundary_lands_in_next_period() {
        let config = SimConfig::with_mem(mem_config(8));
        let p = config.period_secs;
        let trace = Trace::new(
            vec![
                record(1.0, 0, 2, false),
                record(p, 8, 2, false), // exactly on the boundary
            ],
            1 << 20,
            64,
        );
        let (a, _) = check_both(&config, &trace, 2.0 * p);
        assert_eq!(a.periods.len(), 2);
        // The boundary closes *before* the coincident record replays, so
        // its accesses belong to the second period.
        assert_eq!(a.periods[0].observation.cache_accesses, 2);
        assert_eq!(a.periods[1].observation.cache_accesses, 2);
        assert_eq!(a.engine.period_log.len(), 2);
        assert_eq!(a.engine.period_log[1].counts.accesses, 2);
    }

    #[test]
    fn warmup_equal_to_period_snapshots_then_closes_row() {
        let mut config = SimConfig::with_mem(mem_config(8));
        config.warmup_secs = config.period_secs;
        let p = config.period_secs;
        let trace = Trace::new(vec![record(1.0, 0, 4, false)], 1 << 20, 64);
        let (a, _) = check_both(&config, &trace, 2.0 * p);
        // Warm-up activity is excluded from the window but the first
        // period row still covers it.
        assert_eq!(a.cache_accesses, 0);
        assert_eq!(a.duration_secs, p);
        assert_eq!(a.periods.len(), 2);
        assert_eq!(a.periods[0].observation.cache_accesses, 4);
        assert_eq!(a.engine.counts.warmup_ends, 1);
    }

    #[test]
    fn trace_ending_mid_period_produces_no_partial_row() {
        let config = SimConfig::with_mem(mem_config(8));
        let p = config.period_secs;
        let trace = Trace::new(
            vec![record(1.0, 0, 2, false), record(p + 1.0, 4, 2, false)],
            1 << 20,
            64,
        );
        // Run ends halfway through the second period.
        let (a, _) = check_both(&config, &trace, 1.5 * p);
        assert_eq!(a.periods.len(), 1);
        assert_eq!(a.periods[0].observation.end, p);
        // The engine's event log still accounts for the partial tail.
        assert_eq!(a.engine.period_log.len(), 2);
        assert_eq!(a.engine.period_log[1].end, 1.5 * p);
        assert_eq!(a.engine.period_log[1].counts.accesses, 2);
        // A run ending exactly on a boundary closes the row instead.
        let (c, _) = check_both(&config, &trace, 2.0 * p);
        assert_eq!(c.periods.len(), 2);
        assert_eq!(c.periods[1].observation.end, 2.0 * p);
    }
}
