//! Multi-disk system simulation — the substrate for the paper's §VI
//! future-work extension ("extend the joint method to multiple disks").
//!
//! Mirrors [`run_simulation`](crate::run_simulation) with a
//! [`DiskArray`] in place of the single disk: one shared disk cache, cache
//! misses routed to member disks by the array's [`Layout`], and per-disk
//! spin-down policies. An [`ArrayPeriodController`] may resize the shared
//! memory and set *per-disk* timeouts every period.

use jpmd_disk::{DiskArray, Layout, SpinDownPolicy};
use jpmd_mem::{AccessLog, MemoryManager};
use jpmd_stats::{IdleIntervals, IntervalStats, Welford};
use jpmd_trace::Trace;

use crate::{EnergyBreakdown, RunReport, SimConfig};

/// Geometry of the array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayConfig {
    /// Number of member disks (≥ 1).
    pub disks: usize,
    /// Data layout across members.
    pub layout: Layout,
}

/// What one member disk did during a control period.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskPeriodStats {
    /// Requests served by this disk in the period.
    pub requests: u64,
    /// Seconds this disk spent serving in the period.
    pub busy_secs: f64,
    /// Idle intervals of this disk's request stream (aggregated).
    pub idle: IntervalStats,
}

/// Period observation for an array run.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayPeriodObservation {
    /// Period start, s.
    pub start: f64,
    /// Period end (decision instant), s.
    pub end: f64,
    /// Disk-cache accesses in the period (`N`).
    pub cache_accesses: u64,
    /// Cache misses (pages) in the period.
    pub disk_page_accesses: u64,
    /// Banks enabled at period end.
    pub enabled_banks: u32,
    /// Per-member statistics.
    pub per_disk: Vec<DiskPeriodStats>,
}

/// Decision of an [`ArrayPeriodController`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArrayControlAction {
    /// Resize the shared disk cache to this many banks.
    pub enabled_banks: Option<u32>,
    /// Set each member's spin-down timeout (length must equal the disk
    /// count).
    pub disk_timeouts: Option<Vec<f64>>,
}

/// A period controller for array runs (the multi-disk joint policy in
/// `jpmd-core` implements this).
pub trait ArrayPeriodController {
    /// Decides the next period's memory size and per-disk timeouts.
    fn on_period_end(
        &mut self,
        observation: &ArrayPeriodObservation,
        log: &AccessLog,
    ) -> ArrayControlAction;

    /// Display name for reports.
    fn name(&self) -> &str {
        "static-array"
    }
}

/// An array controller that never changes anything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullArrayController;

impl ArrayPeriodController for NullArrayController {
    fn on_period_end(&mut self, _: &ArrayPeriodObservation, _: &AccessLog) -> ArrayControlAction {
        ArrayControlAction::default()
    }
}

/// Runs one multi-disk simulation. Semantics match
/// [`run_simulation`](crate::run_simulation); `policy_template` is cloned
/// per member disk (so an adaptive policy adapts per disk), and the
/// reported utilization is the *mean per-disk* utilization
/// (total busy / (disks × window)).
///
/// # Panics
///
/// Panics under the same conditions as `run_simulation`, or when the
/// controller returns a timeout vector of the wrong length, or when a
/// controller issues timeouts while `policy_template` is not
/// [`SpinDownPolicy::Controlled`].
pub fn run_array_simulation(
    config: &SimConfig,
    array_config: &ArrayConfig,
    policy_template: SpinDownPolicy,
    controller: &mut dyn ArrayPeriodController,
    trace: &Trace,
    duration: f64,
    label: &str,
) -> RunReport {
    config.validate();
    assert!(array_config.disks >= 1, "array needs at least one disk");
    assert_eq!(
        trace.page_bytes(),
        config.mem.page_bytes,
        "trace and memory must agree on the page size"
    );
    assert!(
        duration > config.warmup_secs,
        "duration must exceed warm-up"
    );

    let n = array_config.disks;
    let page_bytes = config.mem.page_bytes;
    let mut mem = MemoryManager::new(config.mem);
    mem.set_replacement(config.replacement);
    mem.set_consolidation(config.consolidate);
    let mut array = DiskArray::new(
        n,
        config.disk_power,
        config.disk_service,
        trace.total_pages().max(1),
        array_config.layout,
    );
    let mut policies: Vec<SpinDownPolicy> = vec![policy_template; n];
    for (d, p) in policies.iter_mut().enumerate() {
        array.set_timeout(d, p.timeout());
    }

    let mut rows = Vec::new();
    let mut period_start = 0.0f64;
    let mut next_period = config.period_secs;
    let mut p_acc = 0u64;
    let mut p_miss = 0u64;
    let mut p_disk_reqs: Vec<u64> = vec![0; n];
    let mut p_disk_busy: Vec<f64> = vec![0.0; n];
    let mut p_energy = EnergyBreakdown::default();
    let mut period_disk_times: Vec<Vec<f64>> = vec![Vec::new(); n];

    let mut warm = config.warmup_secs <= 0.0;
    let mut w_energy = EnergyBreakdown::default();
    let mut w_acc = 0u64;
    let mut w_hits = 0u64;
    let mut w_req = 0u64;
    let mut w_busy = 0.0f64;
    let mut w_spin = 0u64;
    let mut latency = Welford::new();
    let mut request_latencies: Vec<f64> = Vec::new();
    let mut long_count = 0u64;
    let mut max_latency = 0.0f64;

    macro_rules! snapshot_energy {
        () => {
            EnergyBreakdown {
                mem: mem.energy(),
                disk: array.energy(),
            }
        };
    }

    macro_rules! advance_to {
        ($t:expr) => {
            let target: f64 = $t;
            loop {
                let boundary = if !warm && config.warmup_secs <= next_period {
                    config.warmup_secs
                } else {
                    next_period
                };
                if boundary > target {
                    break;
                }
                mem.settle(boundary);
                array.settle(boundary);
                if !warm && boundary == config.warmup_secs {
                    warm = true;
                    w_energy = snapshot_energy!();
                    w_acc = mem.accesses();
                    w_hits = mem.hits();
                    w_req = array.requests();
                    w_busy = array.busy_secs();
                    w_spin = array.spin_downs();
                    if config.warmup_secs < next_period {
                        continue;
                    }
                }
                let per_disk: Vec<DiskPeriodStats> = (0..n)
                    .map(|d| DiskPeriodStats {
                        requests: array.disk(d).requests() - p_disk_reqs[d],
                        busy_secs: array.disk(d).busy_secs() - p_disk_busy[d],
                        idle: IdleIntervals::from_timestamps(
                            &period_disk_times[d],
                            config.aggregation_window_secs,
                        )
                        .stats(),
                    })
                    .collect();
                let observation = ArrayPeriodObservation {
                    start: period_start,
                    end: boundary,
                    cache_accesses: mem.accesses() - p_acc,
                    disk_page_accesses: mem.misses() - p_miss,
                    enabled_banks: mem.enabled_banks(),
                    per_disk,
                };
                let log = mem.take_log();
                let action = controller.on_period_end(&observation, &log);
                if let Some(banks) = action.enabled_banks {
                    mem.set_enabled_banks(banks, boundary);
                }
                if let Some(timeouts) = &action.disk_timeouts {
                    assert_eq!(timeouts.len(), n, "one timeout per member disk");
                    for (d, &t) in timeouts.iter().enumerate() {
                        policies[d].set_controlled_timeout(t);
                        array.set_timeout(d, t);
                    }
                }
                rows.push(crate::PeriodRow {
                    observation: crate::PeriodObservation {
                        start: observation.start,
                        end: observation.end,
                        cache_accesses: observation.cache_accesses,
                        disk_page_accesses: observation.disk_page_accesses,
                        disk_requests: observation.per_disk.iter().map(|d| d.requests).sum(),
                        disk_busy_secs: observation.per_disk.iter().map(|d| d.busy_secs).sum(),
                        idle: IdleIntervals::default().stats(),
                        // The array path does not track per-request latency
                        // against the long-latency threshold.
                        delayed_page_accesses: 0,
                        enabled_banks: observation.enabled_banks,
                        disk_timeout: policies[0].timeout(),
                        energy_total_j: snapshot_energy!().since(&p_energy).total_j(),
                    },
                    action: crate::ControlAction {
                        enabled_banks: action.enabled_banks,
                        disk_timeout: action.disk_timeouts.as_ref().map(|t| t[0]),
                    },
                });
                period_start = boundary;
                next_period = boundary + config.period_secs;
                p_acc = mem.accesses();
                p_miss = mem.misses();
                p_energy = snapshot_energy!();
                for d in 0..n {
                    p_disk_reqs[d] = array.disk(d).requests();
                    p_disk_busy[d] = array.disk(d).busy_secs();
                    period_disk_times[d].clear();
                }
            }
        };
    }

    for record in trace.records() {
        if record.time >= duration {
            break;
        }
        advance_to!(record.time);
        let now = record.time;
        let measuring = warm;

        let mut run_start: Option<u64> = None;
        let mut run_len = 0u64;
        macro_rules! flush_run {
            () => {
                if let Some(first) = run_start.take() {
                    let outcome = array.submit(now, first, run_len, page_bytes);
                    for (d, part) in &outcome.parts {
                        let t = policies[*d].after_request(part, &config.disk_power);
                        array.set_timeout(*d, t);
                        period_disk_times[*d].push(now);
                    }
                    if measuring {
                        request_latencies.push(outcome.latency);
                        for _ in 0..run_len {
                            latency.push(outcome.latency);
                        }
                        if outcome.latency > config.long_latency_secs {
                            long_count += run_len;
                        }
                        if outcome.latency > max_latency {
                            max_latency = outcome.latency;
                        }
                    }
                    #[allow(unused_assignments)]
                    {
                        run_len = 0;
                    }
                }
            };
        }
        for page in record.page_range() {
            let hit = mem.access(page, now);
            if hit {
                flush_run!();
                if measuring {
                    latency.push(0.0);
                }
            } else {
                if run_start.is_none() {
                    run_start = Some(page);
                }
                run_len += 1;
            }
        }
        flush_run!();
    }

    advance_to!(duration);
    mem.settle(duration);
    array.settle(duration);

    let end_energy = snapshot_energy!();
    let window = duration - config.warmup_secs;
    let cache_accesses = mem.accesses() - w_acc;
    let hits = mem.hits() - w_hits;
    RunReport {
        label: label.to_string(),
        duration_secs: window,
        energy: end_energy.since(&w_energy),
        cache_accesses,
        hits,
        disk_page_accesses: cache_accesses - hits,
        disk_requests: array.requests() - w_req,
        mean_latency_secs: latency.mean(),
        request_latency_p50_secs: {
            request_latencies.sort_by(f64::total_cmp);
            jpmd_stats::percentile(&request_latencies, 0.5).unwrap_or(0.0)
        },
        request_latency_p99_secs: jpmd_stats::percentile(&request_latencies, 0.99).unwrap_or(0.0),
        max_latency_secs: max_latency,
        long_latency_count: long_count,
        utilization: (array.busy_secs() - w_busy) / (n as f64 * window.max(f64::MIN_POSITIVE)),
        spin_downs: array.spin_downs() - w_spin,
        periods: rows,
        engine: crate::EngineStats::default(),
        spans: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jpmd_mem::{IdlePolicy, MemConfig, RdramModel};
    use jpmd_trace::{FileId, TraceRecord};

    fn mem_config() -> MemConfig {
        MemConfig {
            page_bytes: 1 << 20,
            bank_pages: 4,
            total_banks: 8,
            initial_banks: 8,
            model: RdramModel::default(),
            policy: IdlePolicy::Nap,
        }
    }

    fn record(time: f64, first_page: u64, pages: u64) -> TraceRecord {
        TraceRecord {
            time,
            file: FileId(0),
            first_page,
            pages,
            kind: jpmd_trace::AccessKind::Read,
        }
    }

    #[test]
    fn single_disk_array_matches_single_disk_run() {
        // With n = 1 the array run must agree with the plain simulator on
        // counters (energies agree too because the member disk sees the
        // identical request stream).
        let config = SimConfig::with_mem(mem_config());
        let trace = Trace::new(
            vec![record(1.0, 0, 4), record(2.0, 0, 4), record(300.0, 40, 2)],
            1 << 20,
            64,
        );
        let plain = crate::run_simulation(
            &config,
            SpinDownPolicy::two_competitive(&config.disk_power),
            &mut crate::NullController,
            &trace,
            400.0,
            "plain",
        );
        let arr = run_array_simulation(
            &config,
            &ArrayConfig {
                disks: 1,
                layout: Layout::Partitioned,
            },
            SpinDownPolicy::two_competitive(&config.disk_power),
            &mut NullArrayController,
            &trace,
            400.0,
            "array",
        );
        assert_eq!(arr.cache_accesses, plain.cache_accesses);
        assert_eq!(arr.disk_page_accesses, plain.disk_page_accesses);
        assert_eq!(arr.spin_downs, plain.spin_downs);
        assert!((arr.energy.disk.total_j() - plain.energy.disk.total_j()).abs() < 1e-6);
        assert!((arr.utilization - plain.utilization).abs() < 1e-12);
    }

    #[test]
    fn partitioned_array_spins_down_cold_members() {
        let config = SimConfig::with_mem(mem_config());
        // All traffic in the first quarter of the page space, cache too
        // small to absorb it (2 banks = 8 pages, 12 hot pages cycled).
        let mut records = Vec::new();
        let mut t = 0.0;
        for i in 0..60u64 {
            records.push(record(t, (i * 5) % 12, 1));
            t += 30.0;
        }
        let trace = Trace::new(records, 1 << 20, 64);
        let mut cfg = config;
        cfg.mem.initial_banks = 2;
        let arr = run_array_simulation(
            &cfg,
            &ArrayConfig {
                disks: 4,
                layout: Layout::Partitioned,
            },
            SpinDownPolicy::two_competitive(&cfg.disk_power),
            &mut NullArrayController,
            &trace,
            t + 50.0,
            "array",
        );
        // Three members never see a request and spin down once each.
        assert!(arr.spin_downs >= 3, "spin_downs = {}", arr.spin_downs);
    }

    #[test]
    fn controller_sets_per_disk_timeouts() {
        struct PerDisk;
        impl ArrayPeriodController for PerDisk {
            fn on_period_end(
                &mut self,
                obs: &ArrayPeriodObservation,
                _: &AccessLog,
            ) -> ArrayControlAction {
                ArrayControlAction {
                    enabled_banks: None,
                    disk_timeouts: Some((0..obs.per_disk.len()).map(|d| 5.0 + d as f64).collect()),
                }
            }
        }
        let config = SimConfig::with_mem(mem_config());
        let trace = Trace::new(vec![record(1.0, 0, 2)], 1 << 20, 64);
        let arr = run_array_simulation(
            &config,
            &ArrayConfig {
                disks: 2,
                layout: Layout::Partitioned,
            },
            SpinDownPolicy::controlled(f64::INFINITY),
            &mut PerDisk,
            &trace,
            1300.0,
            "array",
        );
        assert_eq!(arr.periods.len(), 2);
        assert_eq!(arr.periods[0].action.disk_timeout, Some(5.0));
    }
}
