//! The event-driven replay engine.
//!
//! [`Engine::run`] is a thin replay core: it walks the trace, drives the
//! [`HwState`], and emits typed [`SimEvent`]s to a set of pluggable
//! [`SimObserver`]s. Everything that used to be inline state in the old
//! monolithic replay loop — period accounting, the warm-up snapshot, the
//! flush daemon, latency tracking, energy metering — lives in observers
//! (see [`crate::observers`]); the engine itself only knows how to turn
//! trace records into accesses, coalesce misses into disk requests, and
//! fire observer timers in deterministic order.
//!
//! # Timer semantics
//!
//! Each observer exposes [`SimObserver::next_timer`], the absolute time of
//! its next scheduled wake-up (`f64::INFINITY` for none). Before each trace
//! record (and once at the end of the run) the engine fires every timer due
//! at or before the current target time, earliest first. When several
//! timers are due at the *same* instant they fire in **registration
//! order** — the order observers were passed to [`Engine::run`]. The
//! standard stack registers `[WarmupWindow, PeriodAccounting, FlushDaemon,
//! …]`, which pins the legacy replay's tie-breaks: at a shared instant the
//! warm-up snapshot happens first, then the period row, then the sync
//! tick.
//!
//! Events an observer emits from a timer callback are dispatched to all
//! observers immediately, before the next timer fires.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use jpmd_trace::{AccessKind, SourceError, Trace, TraceRecord, TraceSource};
use serde::{Deserialize, Serialize};

use crate::{EventCounts, HwState, SimEvent};

/// A pluggable simulation component receiving engine events.
///
/// Observers own the state the old monolithic loop kept in locals; the
/// engine talks to them through three hooks. All hooks default to no-ops so
/// purely passive components implement only what they need.
pub trait SimObserver {
    /// Absolute time of this observer's next scheduled wake-up, or
    /// `f64::INFINITY` when it has none. Timers at or before the engine's
    /// current target fire via [`SimObserver::on_timer`].
    fn next_timer(&self) -> f64 {
        f64::INFINITY
    }

    /// Timer callback at time `t`. Must advance [`SimObserver::next_timer`]
    /// past `t` (the engine panics on stuck timers). Events pushed into
    /// `out` are dispatched to every observer before the next timer fires.
    fn on_timer(&mut self, _t: f64, _hw: &mut HwState, _out: &mut Vec<SimEvent>) {}

    /// Event callback; fired for every event in causal order.
    fn on_event(&mut self, _event: &SimEvent, _hw: &mut HwState) {}

    /// This observer's internal state as a serializable value, captured at
    /// a period boundary for a crash-consistent checkpoint. The default
    /// ([`serde::Value::Null`]) is correct for stateless observers.
    fn snapshot_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restores the state captured by [`SimObserver::snapshot_state`]
    /// before a resumed replay starts. The default ignores the value
    /// (stateless observers).
    ///
    /// # Errors
    ///
    /// Returns a decode error when `state` does not match this observer's
    /// snapshot layout (a corrupt or incompatible checkpoint).
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let _ = state;
        Ok(())
    }
}

/// Event totals for one stretch of the run (engine observability).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodEvents {
    /// Start of the stretch, s.
    pub start: f64,
    /// End of the stretch, s (a period boundary, or the run's end for the
    /// trailing partial period).
    pub end: f64,
    /// Events dispatched inside the stretch.
    pub counts: EventCounts,
}

/// Engine counters surfaced in [`RunReport`](crate::RunReport).
///
/// Equality ignores the wall-clock fields (`replay_wall_secs`,
/// `accesses_per_sec`): two runs of the same configuration produce equal
/// `EngineStats` even though their wall-clock timings differ, so whole
/// reports can still be compared in determinism tests.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EngineStats {
    /// Events dispatched over the whole run.
    pub events_processed: u64,
    /// Per-type totals over the whole run.
    pub counts: EventCounts,
    /// Structured per-period event log (one row per control period, plus a
    /// trailing row for a partial final period).
    pub period_log: Vec<PeriodEvents>,
    /// Transient [`SourceError`]s absorbed by retrying the pull (bounded
    /// per-pull by [`MAX_SOURCE_RETRIES`]; zero for healthy sources).
    #[serde(default)]
    pub source_retries: u64,
    /// Records discarded because they were unusable (non-finite timestamp
    /// or zero pages); zero for valid traces.
    #[serde(default)]
    pub records_dropped: u64,
    /// Records whose timestamps were clamped forward to restore arrival
    /// order; zero for valid traces.
    #[serde(default)]
    pub records_clamped: u64,
    /// Every `Some(_)` the source yielded — replayed, retried, dropped, or
    /// clamped. This is the resume cursor: restarting the same source and
    /// discarding exactly this many pulls reproduces the interrupted run's
    /// position.
    #[serde(default)]
    pub records_pulled: u64,
    /// Wall-clock time spent replaying, s (not part of equality).
    pub replay_wall_secs: f64,
    /// Replay throughput, page accesses per wall-clock second (not part of
    /// equality).
    pub accesses_per_sec: f64,
}

impl PartialEq for EngineStats {
    fn eq(&self, other: &Self) -> bool {
        self.events_processed == other.events_processed
            && self.counts == other.counts
            && self.period_log == other.period_log
            && self.source_retries == other.source_retries
            && self.records_dropped == other.records_dropped
            && self.records_clamped == other.records_clamped
            && self.records_pulled == other.records_pulled
    }
}

/// When a checkpointable replay ([`Engine::run_source_with_checkpoints`])
/// captures checkpoints. Checkpoints are only taken at period boundaries —
/// the one instant where the hardware is settled and the controller's view
/// is consistent — and fire on the first record replayed after the
/// boundary.
#[derive(Clone, Default)]
pub struct CheckpointPolicy {
    /// Capture a checkpoint once this many control periods have completed
    /// since the last one (`0` = never on cadence; only on shutdown).
    pub every_periods: u64,
    /// Cooperative shutdown flag (set it from a signal handler): when
    /// observed at a period boundary the engine captures a final
    /// checkpoint and returns with `interrupted = true`.
    pub shutdown: Option<Arc<AtomicBool>>,
}

impl CheckpointPolicy {
    /// A policy checkpointing every `every_periods` completed periods.
    pub fn every(every_periods: u64) -> Self {
        CheckpointPolicy {
            every_periods,
            shutdown: None,
        }
    }
}

/// A crash-consistent image of a replay in flight, captured at a period
/// boundary. Contains everything the *engine* owns (stats, the open
/// segment, the replay clock) plus opaque snapshots of the hardware and
/// every registered observer, in registration order.
///
/// To resume: rebuild the identical source/hardware/observer stack, restore
/// the hardware from [`EngineCheckpoint::hw`] and each observer from its
/// entry in [`EngineCheckpoint::observers`], then pass the checkpoint to
/// [`Engine::run_source_with_checkpoints`] — the engine restores its own
/// fields and discards the already-consumed source pulls.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    /// Engine counters at the capture instant (wall-clock fields are
    /// meaningless here and excluded from equality anyway).
    pub stats: EngineStats,
    /// Event counts of the open (not yet closed) period segment.
    pub segment: EventCounts,
    /// Start time of the open segment, s.
    pub segment_start: f64,
    /// Timestamp of the last replayed record, s (the clamp floor).
    pub last_time: f64,
    /// Opaque hardware snapshot ([`HwState::snapshot_state`]).
    pub hw: serde::Value,
    /// Opaque observer snapshots, in registration order.
    pub observers: Vec<serde::Value>,
}

/// Outcome of a checkpointable replay.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRun {
    /// The engine's counters (final when `interrupted` is false).
    pub stats: EngineStats,
    /// True when the replay stopped early at a checkpoint (cooperative
    /// shutdown, or the checkpoint callback returned `false`). The trailing
    /// settle/close was skipped; the stats describe the partial replay.
    pub interrupted: bool,
}

/// How many *consecutive* transient [`SourceError`]s [`Engine::run_source`]
/// absorbs before giving up and propagating the error. A successful pull
/// resets the budget, so a long trace with scattered transient faults
/// replays to completion; a source stuck in a transient-failure loop still
/// terminates.
pub const MAX_SOURCE_RETRIES: u32 = 8;

/// The event-driven replay core. See the [module docs](self) for the
/// execution model.
///
/// Two driving styles share one implementation:
///
/// * **Batch**: [`Engine::run_source`] / [`Engine::run_source_with_checkpoints`]
///   pull records from a [`TraceSource`] until the duration is reached.
/// * **Incremental**: a long-lived owner (the `jpmd-core` `PolicyStepper`,
///   and through it the `jpmd-serve` daemon) feeds records one at a time
///   with [`Engine::step_record`], polls [`Engine::take_boundary`] for
///   period rollovers, captures checkpoints on demand with
///   [`Engine::capture_now`], and closes the run with [`Engine::finish`].
///
/// The batch loop is written *on top of* the incremental methods, so the
/// two styles are bit-identical by construction.
#[derive(Default)]
pub struct Engine {
    stats: EngineStats,
    segment: EventCounts,
    segment_start: f64,
    registry: jpmd_obs::MetricsRegistry,
    boundary_pending: bool,
    periods_since_ckpt: u64,
    last_time: f64,
}

impl Engine {
    /// A fresh engine.
    pub fn new() -> Self {
        Engine::default()
    }

    /// An engine that publishes its end-of-run counters into `registry`
    /// (`engine.events`, `engine.accesses`, `engine.disk_requests`, and
    /// the throughput gauges). Publication happens once, after the replay
    /// — the hot loop is untouched, and a disabled registry makes this
    /// identical to [`Engine::new`].
    pub fn with_metrics(registry: jpmd_obs::MetricsRegistry) -> Self {
        Engine {
            registry,
            ..Engine::default()
        }
    }

    /// Replays an in-memory `trace` against `hw` until `duration`,
    /// dispatching to `observers`, and returns the engine's counters.
    /// Convenience wrapper over [`Engine::run_source`] — the in-memory
    /// source is infallible.
    pub fn run(
        self,
        trace: &Trace,
        duration: f64,
        hw: &mut HwState,
        observers: &mut [&mut dyn SimObserver],
    ) -> EngineStats {
        self.run_source(trace.source(), duration, hw, observers)
            .expect("in-memory trace sources cannot fail")
    }

    /// Replays `source` against `hw` until `duration`, dispatching to
    /// `observers`, and returns the engine's counters. Records at or after
    /// `duration` are ignored; all timers due by `duration` fire and the
    /// hardware is settled there.
    ///
    /// The engine pulls records one at a time, so a streaming source (e.g.
    /// `jpmd-store`'s paged binary reader) replays at O(page) resident
    /// memory. For the same record sequence every source produces
    /// bit-identical stats.
    ///
    /// # Errors
    ///
    /// Propagates the first non-transient [`SourceError`] the source
    /// yields (I/O failure or corruption in a streaming source); the
    /// partial replay's stats are discarded. Transient errors
    /// ([`SourceError::is_transient`]) are retried up to
    /// [`MAX_SOURCE_RETRIES`] consecutive times (counted in
    /// [`EngineStats::source_retries`]) before being propagated.
    ///
    /// The engine also refuses to let a misbehaving source corrupt the
    /// replay clock: records with a non-finite timestamp or zero pages are
    /// dropped, and records arriving out of order are clamped forward to
    /// the last replayed instant (both counted in the stats; all three
    /// counters stay zero for valid traces).
    pub fn run_source<S: TraceSource>(
        self,
        source: S,
        duration: f64,
        hw: &mut HwState,
        observers: &mut [&mut dyn SimObserver],
    ) -> Result<EngineStats, SourceError> {
        let run = self.run_source_with_checkpoints(
            source,
            duration,
            hw,
            observers,
            None,
            &mut |_| true,
            None,
        )?;
        debug_assert!(!run.interrupted, "no checkpoint policy can interrupt");
        Ok(run.stats)
    }

    /// Like [`Engine::run_source`], with crash-consistent checkpointing.
    ///
    /// When `policy` asks for a checkpoint (cadence reached, or its
    /// shutdown flag set) the engine captures an [`EngineCheckpoint`] at
    /// the first record replayed after a period boundary and hands it to
    /// `on_checkpoint`. If the callback returns `false`, or the policy's
    /// shutdown flag is set, the replay stops immediately (no trailing
    /// settle) and the run comes back with `interrupted = true`.
    ///
    /// When `resume` is given the engine restores its own counters and
    /// clock from the checkpoint and discards the checkpoint's
    /// [`EngineStats::records_pulled`] source pulls before replaying; the
    /// caller must have restored the hardware and every observer from the
    /// checkpoint's images first (see
    /// [`run_simulation_full`](crate::run_simulation_full), which does all
    /// of this). The resumed run's final stats and observer state are
    /// bit-identical to the uninterrupted run's.
    ///
    /// # Errors
    ///
    /// Propagates source errors exactly like [`Engine::run_source`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_source_with_checkpoints<S: TraceSource>(
        mut self,
        mut source: S,
        duration: f64,
        hw: &mut HwState,
        observers: &mut [&mut dyn SimObserver],
        policy: Option<&CheckpointPolicy>,
        on_checkpoint: &mut dyn FnMut(EngineCheckpoint) -> bool,
        resume: Option<&EngineCheckpoint>,
    ) -> Result<EngineRun, SourceError> {
        let wall = Instant::now();
        if let Some(ckpt) = resume {
            self.restore(ckpt);
            // Skip what the interrupted run already consumed. Every
            // `Some(_)` counts one pull — replayed, retried, dropped, or
            // clamped — so the restored stats already account for these.
            let mut discard = ckpt.stats.records_pulled;
            while discard > 0 && source.next_record().is_some() {
                discard -= 1;
            }
        }
        let mut consecutive_retries = 0u32;
        while let Some(next) = source.next_record() {
            let record = match next {
                Ok(record) => record,
                Err(e) if e.is_transient() && consecutive_retries < MAX_SOURCE_RETRIES => {
                    self.stats.records_pulled += 1;
                    consecutive_retries += 1;
                    self.stats.source_retries += 1;
                    continue;
                }
                Err(e) => return Err(e),
            };
            consecutive_retries = 0;
            if !self.step_record(record, duration, hw, observers) {
                break;
            }
            if let Some(policy) = policy {
                if self.take_boundary() {
                    let shutdown = policy
                        .shutdown
                        .as_ref()
                        .is_some_and(|flag| flag.load(Ordering::Relaxed));
                    let due =
                        policy.every_periods > 0 && self.periods_since_ckpt >= policy.every_periods;
                    if shutdown || due {
                        self.periods_since_ckpt = 0;
                        let ckpt = self.capture_now(hw, observers);
                        let keep_going = on_checkpoint(ckpt);
                        if shutdown || !keep_going {
                            self.stats.replay_wall_secs = wall.elapsed().as_secs_f64();
                            return Ok(EngineRun {
                                stats: self.stats,
                                interrupted: true,
                            });
                        }
                    }
                }
            }
        }
        let stats = self.finish(duration, hw, observers, wall.elapsed().as_secs_f64());
        Ok(EngineRun {
            stats,
            interrupted: false,
        })
    }

    /// Restores the engine's own counters and replay clock from a
    /// checkpoint (the caller restores the hardware and observers from the
    /// checkpoint's opaque images). Part of the incremental driving
    /// surface; the batch resume path uses it too.
    pub fn restore(&mut self, ckpt: &EngineCheckpoint) {
        self.stats = ckpt.stats.clone();
        self.segment = ckpt.segment;
        self.segment_start = ckpt.segment_start;
        self.last_time = ckpt.last_time;
    }

    /// Feeds one record into the replay: counts the pull, sanitizes it
    /// (drop non-finite/zero-page, clamp out-of-order), fires due timers,
    /// and replays the accesses. Returns `false` when `record.time` is at
    /// or past `duration` — the record is counted but not replayed, and
    /// the caller should stop feeding and call [`Engine::finish`].
    ///
    /// This is the single per-record step both the batch loop and the
    /// incremental `PolicyStepper` drive, so the two are bit-identical.
    pub fn step_record(
        &mut self,
        mut record: TraceRecord,
        duration: f64,
        hw: &mut HwState,
        observers: &mut [&mut dyn SimObserver],
    ) -> bool {
        self.stats.records_pulled += 1;
        if !record.time.is_finite() || record.pages == 0 {
            self.stats.records_dropped += 1;
            return true;
        }
        if record.time < self.last_time {
            record.time = self.last_time;
            self.stats.records_clamped += 1;
        }
        self.last_time = record.time;
        if record.time >= duration {
            return false;
        }
        self.advance_to(record.time, hw, observers);
        self.replay_record(&record, hw, observers);
        true
    }

    /// True when one or more period boundaries closed since the last call
    /// (the flag is cleared). Incremental drivers poll this after each
    /// [`Engine::step_record`] to learn about rollovers.
    pub fn take_boundary(&mut self) -> bool {
        std::mem::take(&mut self.boundary_pending)
    }

    /// Timestamp of the last replayed record, s (the replay clock).
    pub fn last_time(&self) -> f64 {
        self.last_time
    }

    /// The engine's counters so far (final only after [`Engine::finish`]).
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Builds a checkpoint of the current replay state at the replay
    /// clock's current instant (see [`EngineCheckpoint`]).
    pub fn capture_now(
        &self,
        hw: &HwState,
        observers: &[&mut dyn SimObserver],
    ) -> EngineCheckpoint {
        self.capture(self.last_time, hw, observers)
    }

    /// Closes out an incremental replay: fires all timers due by
    /// `duration`, settles the hardware there, closes the trailing event
    /// segment, stamps the wall-clock stats, and publishes the registry
    /// counters. Consumes the engine and returns its final counters.
    pub fn finish(
        mut self,
        duration: f64,
        hw: &mut HwState,
        observers: &mut [&mut dyn SimObserver],
        replay_wall_secs: f64,
    ) -> EngineStats {
        self.advance_to(duration, hw, observers);
        hw.settle(duration);
        if self.segment_start < duration || self.segment.total() > 0 {
            self.close_segment(duration);
        }
        self.stats.replay_wall_secs = replay_wall_secs;
        self.stats.accesses_per_sec =
            self.stats.counts.accesses as f64 / self.stats.replay_wall_secs.max(f64::MIN_POSITIVE);
        if self.registry.is_enabled() {
            self.registry
                .counter("engine.events")
                .add(self.stats.events_processed);
            self.registry
                .counter("engine.accesses")
                .add(self.stats.counts.accesses);
            self.registry
                .counter("engine.disk_requests")
                .add(self.stats.counts.disk_requests);
            self.registry
                .gauge("engine.replay_wall_secs")
                .set(self.stats.replay_wall_secs);
            self.registry
                .gauge("engine.accesses_per_sec")
                .set(self.stats.accesses_per_sec);
        }
        self.stats
    }

    /// Builds a checkpoint of the current replay state (engine counters,
    /// hardware, observers in registration order).
    fn capture(
        &self,
        last_time: f64,
        hw: &HwState,
        observers: &[&mut dyn SimObserver],
    ) -> EngineCheckpoint {
        EngineCheckpoint {
            stats: self.stats.clone(),
            segment: self.segment,
            segment_start: self.segment_start,
            last_time,
            hw: hw.snapshot_state(),
            observers: observers.iter().map(|ob| ob.snapshot_state()).collect(),
        }
    }

    /// Fires every observer timer due at or before `target`, earliest
    /// first, ties in registration order.
    fn advance_to(
        &mut self,
        target: f64,
        hw: &mut HwState,
        observers: &mut [&mut dyn SimObserver],
    ) {
        loop {
            let due = observers
                .iter()
                .fold(f64::INFINITY, |m, ob| m.min(ob.next_timer()));
            if due > target {
                return;
            }
            for i in 0..observers.len() {
                if observers[i].next_timer() == due {
                    let mut out = Vec::new();
                    observers[i].on_timer(due, hw, &mut out);
                    assert!(
                        observers[i].next_timer() > due,
                        "observer {i} did not advance its timer past {due}"
                    );
                    self.dispatch(&out, hw, observers);
                }
            }
        }
    }

    /// Replays one trace record: pages are looked up in order, misses are
    /// coalesced into contiguous runs (each becoming one disk request), and
    /// displaced dirty pages go back to the disk as background writes.
    fn replay_record(
        &mut self,
        record: &TraceRecord,
        hw: &mut HwState,
        observers: &mut [&mut dyn SimObserver],
    ) {
        let now = record.time;
        let write = record.kind == AccessKind::Write;
        let mut run_start: Option<u64> = None;
        let mut run_len = 0u64;
        for page in record.page_range() {
            let hit = hw.mem.access_rw(page, now, write);
            if hit {
                // Close the pending run first so a miss run's latency is
                // recorded before the hit that ended it (observers rely on
                // this order).
                self.flush_run(&mut run_start, &mut run_len, now, hw, observers);
            } else {
                if run_start.is_none() {
                    run_start = Some(page);
                }
                run_len += 1;
            }
            self.dispatch(
                &[SimEvent::Access {
                    time: now,
                    page,
                    hit,
                    write,
                }],
                hw,
                observers,
            );
        }
        self.flush_run(&mut run_start, &mut run_len, now, hw, observers);
        let writebacks = hw.mem.take_writebacks();
        if !writebacks.is_empty() {
            let events = hw.submit_writes(writebacks, now);
            self.dispatch(&events, hw, observers);
        }
    }

    /// Turns the pending miss run (if any) into one disk request.
    fn flush_run(
        &mut self,
        run_start: &mut Option<u64>,
        run_len: &mut u64,
        now: f64,
        hw: &mut HwState,
        observers: &mut [&mut dyn SimObserver],
    ) {
        if let Some(first) = run_start.take() {
            let pages = *run_len;
            *run_len = 0;
            let outcome = hw.submit_request(now, first, pages);
            self.dispatch(
                &[
                    SimEvent::Miss {
                        time: now,
                        first_page: first,
                        pages,
                    },
                    SimEvent::DiskRequest {
                        time: now,
                        first_page: first,
                        pages,
                        latency: outcome.latency,
                        woke_disk: outcome.woke_disk,
                        user: true,
                    },
                ],
                hw,
                observers,
            );
        }
    }

    /// Delivers events to every observer and tallies them.
    fn dispatch(
        &mut self,
        events: &[SimEvent],
        hw: &mut HwState,
        observers: &mut [&mut dyn SimObserver],
    ) {
        for event in events {
            self.stats.events_processed += 1;
            self.stats.counts.record(event);
            self.segment.record(event);
            if let SimEvent::PeriodBoundary { end, .. } = event {
                self.close_segment(*end);
                self.boundary_pending = true;
                self.periods_since_ckpt += 1;
            }
            for observer in observers.iter_mut() {
                observer.on_event(event, hw);
            }
        }
    }

    fn close_segment(&mut self, end: f64) {
        self.stats.period_log.push(PeriodEvents {
            start: self.segment_start,
            end,
            counts: std::mem::take(&mut self.segment),
        });
        self.segment_start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use jpmd_disk::SpinDownPolicy;
    use jpmd_mem::{IdlePolicy, MemConfig, RdramModel};
    use jpmd_trace::{FileId, TraceRecord};

    fn hw() -> HwState {
        let config = SimConfig::with_mem(MemConfig {
            page_bytes: 1 << 20,
            bank_pages: 4,
            total_banks: 8,
            initial_banks: 8,
            model: RdramModel::default(),
            policy: IdlePolicy::Nap,
        });
        HwState::new(&config, SpinDownPolicy::AlwaysOn, 64)
    }

    fn trace(records: Vec<TraceRecord>) -> Trace {
        Trace::new(records, 1 << 20, 64)
    }

    fn record(time: f64, first_page: u64, pages: u64) -> TraceRecord {
        TraceRecord {
            time,
            file: FileId(0),
            first_page,
            pages,
            kind: AccessKind::Read,
        }
    }

    /// Records every event it sees; a timer at a fixed instant.
    #[derive(Default)]
    struct Recorder {
        events: Vec<SimEvent>,
        timer: Option<f64>,
    }

    impl SimObserver for Recorder {
        fn next_timer(&self) -> f64 {
            self.timer.unwrap_or(f64::INFINITY)
        }
        fn on_timer(&mut self, t: f64, _hw: &mut HwState, out: &mut Vec<SimEvent>) {
            self.timer = None;
            out.push(SimEvent::Sync { time: t, pages: 0 });
        }
        fn on_event(&mut self, event: &SimEvent, _hw: &mut HwState) {
            self.events.push(event.clone());
        }
    }

    #[test]
    fn events_follow_causal_order() {
        // 4 misses coalesce into one run; the re-access hits.
        let mut recorder = Recorder::default();
        let mut hw = hw();
        {
            let mut obs: [&mut dyn SimObserver; 1] = [&mut recorder];
            let stats = Engine::new().run(
                &trace(vec![record(1.0, 0, 2), record(2.0, 0, 2)]),
                10.0,
                &mut hw,
                &mut obs,
            );
            assert_eq!(stats.counts.accesses, 4);
            assert_eq!(stats.counts.misses, 1);
            assert_eq!(stats.counts.disk_requests, 1);
            assert_eq!(stats.events_processed, stats.counts.total());
        }
        // Miss pages arrive as Access{hit: false} then the coalesced
        // Miss + DiskRequest pair, then the second record's hits.
        let kinds: Vec<&'static str> = recorder
            .events
            .iter()
            .map(|e| match e {
                SimEvent::Access { hit: true, .. } => "hit",
                SimEvent::Access { hit: false, .. } => "miss-page",
                SimEvent::Miss { .. } => "miss-run",
                SimEvent::DiskRequest { .. } => "request",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "miss-page",
                "miss-page",
                "miss-run",
                "request",
                "hit",
                "hit"
            ]
        );
    }

    #[test]
    fn timer_fires_between_records_and_events_reach_emitter() {
        let mut recorder = Recorder {
            timer: Some(5.0),
            ..Recorder::default()
        };
        let mut hw = hw();
        {
            let mut obs: [&mut dyn SimObserver; 1] = [&mut recorder];
            let stats = Engine::new().run(
                &trace(vec![record(1.0, 0, 1), record(9.0, 0, 1)]),
                10.0,
                &mut hw,
                &mut obs,
            );
            assert_eq!(stats.counts.syncs, 1);
        }
        let sync_pos = recorder
            .events
            .iter()
            .position(|e| matches!(e, SimEvent::Sync { .. }))
            .expect("sync dispatched");
        let second_access = recorder
            .events
            .iter()
            .position(|e| matches!(e, SimEvent::Access { time, .. } if *time == 9.0))
            .expect("second access");
        assert!(sync_pos < second_access);
    }

    /// Yields a scripted sequence of pulls (for fault-path tests).
    struct Scripted(std::collections::VecDeque<Result<TraceRecord, SourceError>>);

    impl Scripted {
        fn new(items: Vec<Result<TraceRecord, SourceError>>) -> Self {
            Scripted(items.into())
        }
    }

    impl TraceSource for Scripted {
        fn page_bytes(&self) -> u64 {
            1 << 20
        }
        fn total_pages(&self) -> u64 {
            64
        }
        fn next_record(&mut self) -> Option<Result<TraceRecord, SourceError>> {
            self.0.pop_front()
        }
    }

    fn transient_err() -> SourceError {
        SourceError::transient(std::io::Error::other("blip"))
    }

    #[test]
    fn transient_source_errors_are_retried() {
        let mut hw = hw();
        let source = Scripted::new(vec![
            Err(transient_err()),
            Ok(record(1.0, 0, 1)),
            Err(transient_err()),
            Err(transient_err()),
            Ok(record(2.0, 1, 1)),
        ]);
        let stats = Engine::new()
            .run_source(source, 10.0, &mut hw, &mut [])
            .expect("transient errors must be absorbed");
        assert_eq!(stats.source_retries, 3);
        assert_eq!(stats.counts.accesses, 2);
    }

    #[test]
    fn transient_retry_budget_is_bounded() {
        let mut hw = hw();
        let source = Scripted::new(
            (0..=MAX_SOURCE_RETRIES)
                .map(|_| Err(transient_err()))
                .collect(),
        );
        let err = Engine::new()
            .run_source(source, 10.0, &mut hw, &mut [])
            .expect_err("a stuck source must eventually fail");
        assert!(err.is_transient());
    }

    #[test]
    fn non_transient_source_error_aborts_immediately() {
        let mut hw = hw();
        let source = Scripted::new(vec![
            Ok(record(1.0, 0, 1)),
            Err(SourceError::new(std::io::Error::other("dead"))),
            Ok(record(2.0, 1, 1)),
        ]);
        assert!(Engine::new()
            .run_source(source, 10.0, &mut hw, &mut [])
            .is_err());
    }

    #[test]
    fn unusable_records_are_dropped_and_out_of_order_clamped() {
        let mut hw = hw();
        let source = Scripted::new(vec![
            Ok(record(5.0, 0, 1)),
            Ok(record(f64::NAN, 1, 1)),      // dropped
            Ok(record(6.0, 2, 0)),           // dropped (zero pages)
            Ok(record(3.0, 3, 1)),           // clamped to 5.0
            Ok(record(f64::INFINITY, 4, 1)), // dropped
            Ok(record(7.0, 5, 1)),
        ]);
        let stats = Engine::new()
            .run_source(source, 10.0, &mut hw, &mut [])
            .expect("sanitized replay succeeds");
        assert_eq!(stats.records_dropped, 3);
        assert_eq!(stats.records_clamped, 1);
        assert_eq!(stats.counts.accesses, 3);
        // The disk saw monotone arrivals despite the scrambled source.
        assert_eq!(hw.disk.requests(), 3);
    }

    #[test]
    fn stats_equality_ignores_wall_clock() {
        let mut a = EngineStats {
            events_processed: 3,
            replay_wall_secs: 1.0,
            accesses_per_sec: 3.0,
            ..EngineStats::default()
        };
        let b = EngineStats {
            events_processed: 3,
            replay_wall_secs: 2.0,
            accesses_per_sec: 1.5,
            ..EngineStats::default()
        };
        assert_eq!(a, b);
        a.events_processed = 4;
        assert_ne!(a, b);
    }

    #[test]
    fn trailing_partial_segment_is_logged() {
        let mut hw = hw();
        let stats = Engine::new().run(&trace(vec![record(1.0, 0, 1)]), 10.0, &mut hw, &mut []);
        assert_eq!(stats.period_log.len(), 1);
        assert_eq!(stats.period_log[0].start, 0.0);
        assert_eq!(stats.period_log[0].end, 10.0);
        assert_eq!(stats.period_log[0].counts.accesses, 1);
    }
}
