//! Typed events emitted by the replay [`Engine`](crate::Engine) to its
//! [`SimObserver`](crate::SimObserver)s.

use serde::{Deserialize, Serialize};

/// One event in a simulation run.
///
/// The engine's replay core emits these in causal order; everything an
/// observer learns about the run arrives through this enum (plus direct
/// reads of [`HwState`](crate::HwState) at dispatch time).
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// One page was looked up in the disk cache.
    Access {
        /// Arrival time, s.
        time: f64,
        /// The page looked up.
        page: u64,
        /// Whether the page was resident (no disk involvement).
        hit: bool,
        /// Whether the access was a write.
        write: bool,
    },
    /// A contiguous run of missed pages closed and is about to become one
    /// disk request.
    Miss {
        /// Arrival time, s.
        time: f64,
        /// First missed page of the run.
        first_page: u64,
        /// Length of the run, pages.
        pages: u64,
    },
    /// A disk request was submitted (a user miss run, or a background
    /// write-back when `user` is false).
    DiskRequest {
        /// Submission time, s.
        time: f64,
        /// First page of the request.
        first_page: u64,
        /// Request length, pages.
        pages: u64,
        /// Request latency (queueing + spin-up + service), s.
        latency: f64,
        /// Whether the request had to spin the disk up.
        woke_disk: bool,
        /// True for user miss runs; false for background flushes, which do
        /// not count toward user-visible latency.
        user: bool,
    },
    /// The dirty-page flush daemon ticked.
    Sync {
        /// Tick time, s.
        time: f64,
        /// Dirty pages written back at this tick.
        pages: u64,
    },
    /// The warm-up window ended; measurement starts now.
    WarmupEnd {
        /// End of warm-up, s.
        time: f64,
    },
    /// A control period closed (its row is already recorded).
    PeriodBoundary {
        /// Index of the finished period (0-based).
        index: usize,
        /// Period start, s.
        start: f64,
        /// Period end, s.
        end: f64,
    },
}

impl SimEvent {
    /// The simulation time the event occurred at.
    pub fn time(&self) -> f64 {
        match *self {
            SimEvent::Access { time, .. }
            | SimEvent::Miss { time, .. }
            | SimEvent::DiskRequest { time, .. }
            | SimEvent::Sync { time, .. }
            | SimEvent::WarmupEnd { time } => time,
            SimEvent::PeriodBoundary { end, .. } => end,
        }
    }
}

/// Per-type event totals (engine observability).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// Page lookups in the disk cache.
    pub accesses: u64,
    /// Coalesced miss runs.
    pub misses: u64,
    /// Disk requests (user runs + background flushes).
    pub disk_requests: u64,
    /// Flush-daemon ticks.
    pub syncs: u64,
    /// Warm-up completions (0 or 1).
    pub warmup_ends: u64,
    /// Closed control periods.
    pub period_boundaries: u64,
}

impl EventCounts {
    /// Tallies one event.
    pub fn record(&mut self, event: &SimEvent) {
        match event {
            SimEvent::Access { .. } => self.accesses += 1,
            SimEvent::Miss { .. } => self.misses += 1,
            SimEvent::DiskRequest { .. } => self.disk_requests += 1,
            SimEvent::Sync { .. } => self.syncs += 1,
            SimEvent::WarmupEnd { .. } => self.warmup_ends += 1,
            SimEvent::PeriodBoundary { .. } => self.period_boundaries += 1,
        }
    }

    /// Total events across all types.
    pub fn total(&self) -> u64 {
        self.accesses
            + self.misses
            + self.disk_requests
            + self.syncs
            + self.warmup_ends
            + self.period_boundaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_tally_by_type() {
        let mut c = EventCounts::default();
        c.record(&SimEvent::Access {
            time: 1.0,
            page: 0,
            hit: true,
            write: false,
        });
        c.record(&SimEvent::Miss {
            time: 1.0,
            first_page: 0,
            pages: 3,
        });
        c.record(&SimEvent::WarmupEnd { time: 2.0 });
        assert_eq!(c.accesses, 1);
        assert_eq!(c.misses, 1);
        assert_eq!(c.warmup_ends, 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn event_time_extraction() {
        assert_eq!(
            SimEvent::PeriodBoundary {
                index: 0,
                start: 0.0,
                end: 600.0
            }
            .time(),
            600.0
        );
        assert_eq!(
            SimEvent::Sync {
                time: 30.0,
                pages: 4
            }
            .time(),
            30.0
        );
    }
}
