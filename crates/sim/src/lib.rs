//! System simulator for `jpmd`: ties the workload, disk cache, and disk
//! together and measures energy and performance.
//!
//! This is the runtime of paper Fig. 6(b): synthesized traces feed the disk
//! cache ([`jpmd_mem::MemoryManager`]); cache misses become requests to the
//! disk ([`jpmd_disk::Disk`]); a [`SpinDownPolicy`] governs the disk's
//! timeout between requests; and at every period boundary a
//! [`PeriodController`] (the joint power manager, in `jpmd-core`) may
//! resize memory and retune the timeout.
//!
//! The evaluation pipeline of the paper's Fig. 6(b):
//!
//! ```text
//!  WorkloadBuilder ──► Trace ──► MemoryManager ──misses──► Disk
//!  (SPECWeb99-style)   (records) (LRU cache,              (queue, spin-
//!   + synthesizer                 banks, stack             down, energy)
//!                                 profiler)
//!                         │                                  │
//!                         └──── PeriodController ◄───────────┘
//!                               (joint policy: resize + timeout)
//! ```
//!
//! [`run_simulation`] executes one method over one trace and returns a
//! [`RunReport`] with the exact metrics the paper's figures plot: energy
//! split by component, average latency, disk utilization, long-latency
//! request rate, and per-period time series.
//!
//! # Example
//!
//! ```
//! use jpmd_mem::{IdlePolicy, MemConfig, RdramModel};
//! use jpmd_sim::{run_simulation, NullController, SimConfig};
//! use jpmd_disk::SpinDownPolicy;
//! use jpmd_trace::{WorkloadBuilder, MIB};
//!
//! # fn main() -> Result<(), jpmd_trace::TraceError> {
//! let trace = WorkloadBuilder::new()
//!     .data_set_bytes(64 * MIB)
//!     .rate_bytes_per_sec(8 * MIB)
//!     .duration_secs(60.0)
//!     .build()?;
//! let mem = MemConfig {
//!     page_bytes: MIB,
//!     bank_pages: 16,
//!     total_banks: 8,
//!     initial_banks: 8,
//!     model: RdramModel::default(),
//!     policy: IdlePolicy::Nap,
//! };
//! let config = SimConfig::with_mem(mem);
//! let report = run_simulation(
//!     &config,
//!     SpinDownPolicy::AlwaysOn,
//!     &mut NullController,
//!     &trace,
//!     60.0,
//!     "always-on",
//! );
//! assert!(report.energy.total_j() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array_system;
mod config;
mod controller;
pub mod engine;
mod events;
mod hw;
#[cfg(test)]
mod legacy;
mod metrics;
pub mod observers;
mod system;

pub use array_system::{
    run_array_simulation, ArrayConfig, ArrayControlAction, ArrayPeriodController,
    ArrayPeriodObservation, DiskPeriodStats, NullArrayController,
};
pub use config::SimConfig;
pub use controller::{
    ControlAction, NullController, PeriodController, PeriodObservation, TimedController,
};
pub use engine::{
    CheckpointPolicy, Engine, EngineCheckpoint, EngineRun, EngineStats, PeriodEvents, SimObserver,
    MAX_SOURCE_RETRIES,
};
pub use events::{EventCounts, SimEvent};
pub use hw::{FaultInjector, HwState};
pub use metrics::{EnergyBreakdown, PeriodRow, RunReport};
pub use observers::{
    EnergyMeter, EnergySummary, FlushDaemon, LatencySummary, LatencyTracker, PeriodAccounting,
    TelemetryObserver, WarmupWindow,
};
pub use system::{
    run_simulation, run_simulation_full, run_simulation_source, run_simulation_source_with,
    CheckpointOptions, SimCheckpoint, SimOutcome,
};

// Re-exported so downstream callers can build configurations without
// importing every substrate crate explicitly.
pub use jpmd_disk::{DiskPowerModel, ServiceModel, SpinDownPolicy};
pub use jpmd_mem::{IdlePolicy, MemConfig, RdramModel};
// Re-exported so callers wiring telemetry into a run don't need a direct
// jpmd-obs dependency for the common cases.
pub use jpmd_obs::{JsonlSink, MemorySink, NullSink, Telemetry};
