//! The standard observer stack: the components that used to be inline
//! state in the monolithic replay loop, each now owning one concern.
//!
//! [`run_simulation`](crate::run_simulation) registers them in a
//! **load-bearing order** — `[WarmupWindow, PeriodAccounting, FlushDaemon,
//! LatencyTracker, EnergyMeter]` — because the engine fires same-instant
//! timers in registration order. That reproduces the legacy loop's
//! tie-breaks exactly: when the warm-up end, a period boundary, and a sync
//! tick coincide, the warm-up snapshot is taken first, then the period row
//! is closed, then the flush daemon writes back (its traffic lands in the
//! *next* period).

use jpmd_obs::{Counter, ObsEvent, Telemetry};
use jpmd_stats::{IdleIntervals, Welford};
use serde::{Deserialize, Serialize};

use crate::{
    EnergyBreakdown, HwState, PeriodController, PeriodObservation, PeriodRow, SimEvent, SimObserver,
};

/// Ends the warm-up window: settles the hardware at `warmup_secs` and emits
/// [`SimEvent::WarmupEnd`], which the metering observers use to snapshot
/// their baselines. With a non-positive warm-up no event is ever emitted
/// (measurement covers the whole run and all baselines stay zero).
pub struct WarmupWindow {
    at: f64,
    done: bool,
}

impl WarmupWindow {
    /// A warm-up window ending at `warmup_secs`.
    pub fn new(warmup_secs: f64) -> Self {
        WarmupWindow {
            at: warmup_secs,
            done: warmup_secs <= 0.0,
        }
    }
}

/// Serializable image of a [`WarmupWindow`].
#[derive(Serialize, Deserialize)]
struct WarmupSnapshot {
    at: f64,
    done: bool,
}

impl SimObserver for WarmupWindow {
    fn next_timer(&self) -> f64 {
        if self.done {
            f64::INFINITY
        } else {
            self.at
        }
    }

    fn on_timer(&mut self, t: f64, hw: &mut HwState, out: &mut Vec<SimEvent>) {
        self.done = true;
        hw.settle(t);
        out.push(SimEvent::WarmupEnd { time: t });
    }

    fn snapshot_state(&self) -> serde::Value {
        WarmupSnapshot {
            at: self.at,
            done: self.done,
        }
        .to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let snapshot = WarmupSnapshot::from_value(state)?;
        self.at = snapshot.at;
        self.done = snapshot.done;
        Ok(())
    }
}

/// Closes control periods: at every period boundary it settles the
/// hardware, builds the [`PeriodObservation`] from the since-last-boundary
/// deltas, invokes the controller, applies its [`ControlAction`]
/// (memory resize, disk timeout) to the hardware, records the
/// [`PeriodRow`], and emits [`SimEvent::PeriodBoundary`].
///
/// Generic over the controller: the batch simulation wires it with
/// `&mut dyn PeriodController`, the incremental `PolicyStepper` owns its
/// controller outright (both satisfy [`PeriodController`] via the blanket
/// impls in the controller module).
///
/// [`ControlAction`]: crate::ControlAction
pub struct PeriodAccounting<C> {
    controller: C,
    period_secs: f64,
    aggregation_window_secs: f64,
    long_latency_secs: f64,
    period_start: f64,
    next_period: f64,
    p_acc: u64,
    p_pages: u64,
    p_req: u64,
    p_busy: f64,
    p_delayed: u64,
    p_energy: EnergyBreakdown,
    rows: Vec<PeriodRow>,
}

impl<C: PeriodController> PeriodAccounting<C> {
    /// Period accounting driving `controller` every `period_secs`, with
    /// idle intervals aggregated at `aggregation_window_secs` (paper
    /// Sec. 4.2). User page accesses slower than `long_latency_secs`
    /// count as the period's delayed accesses (the observation's
    /// delayed-request ratio, paper eq. 6).
    pub fn new(
        controller: C,
        period_secs: f64,
        aggregation_window_secs: f64,
        long_latency_secs: f64,
    ) -> Self {
        PeriodAccounting {
            controller,
            period_secs,
            aggregation_window_secs,
            long_latency_secs,
            period_start: 0.0,
            next_period: period_secs,
            p_acc: 0,
            p_pages: 0,
            p_req: 0,
            p_busy: 0.0,
            p_delayed: 0,
            p_energy: EnergyBreakdown::default(),
            rows: Vec::new(),
        }
    }

    /// The recorded period rows (one per closed period; a trailing partial
    /// period produces no row, exactly like the legacy loop).
    pub fn into_rows(self) -> Vec<PeriodRow> {
        self.rows
    }

    /// The rows recorded so far — incremental drivers poll this after each
    /// record to see freshly closed periods and their control actions.
    pub fn rows(&self) -> &[PeriodRow] {
        &self.rows
    }

    /// The wrapped controller.
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// The wrapped controller, mutably.
    pub fn controller_mut(&mut self) -> &mut C {
        &mut self.controller
    }
}

/// Serializable image of [`PeriodAccounting`]'s dynamic state. The wrapped
/// controller's state rides along in `controller` — this is the seam that
/// routes a policy's learned state (LRU stack fits, degradation level)
/// into checkpoints without the engine knowing about controllers.
#[derive(Serialize, Deserialize)]
struct PeriodAccountingSnapshot {
    period_start: f64,
    next_period: f64,
    p_acc: u64,
    p_pages: u64,
    p_req: u64,
    p_busy: f64,
    p_delayed: u64,
    p_energy: EnergyBreakdown,
    rows: Vec<PeriodRow>,
    controller: serde::Value,
}

impl<C: PeriodController> SimObserver for PeriodAccounting<C> {
    fn next_timer(&self) -> f64 {
        self.next_period
    }

    fn on_timer(&mut self, t: f64, hw: &mut HwState, out: &mut Vec<SimEvent>) {
        hw.settle(t);
        let observation = PeriodObservation {
            start: self.period_start,
            end: t,
            cache_accesses: hw.mem.accesses() - self.p_acc,
            disk_page_accesses: hw.disk_pages - self.p_pages,
            disk_requests: hw.disk.requests() - self.p_req,
            disk_busy_secs: hw.disk.busy_secs() - self.p_busy,
            idle: IdleIntervals::from_timestamps(
                &hw.period_disk_times,
                self.aggregation_window_secs,
            )
            .stats(),
            delayed_page_accesses: self.p_delayed,
            enabled_banks: hw.mem.enabled_banks(),
            disk_timeout: hw.disk.timeout(),
            energy_total_j: hw.snapshot_energy().since(&self.p_energy).total_j(),
        };
        let log = hw.mem.take_log();
        let action = self.controller.on_period_end(&observation, &log);
        hw.apply_action(&action, t);
        out.push(SimEvent::PeriodBoundary {
            index: self.rows.len(),
            start: self.period_start,
            end: t,
        });
        self.rows.push(PeriodRow {
            observation,
            action,
        });
        self.period_start = t;
        self.next_period = t + self.period_secs;
        self.p_acc = hw.mem.accesses();
        self.p_pages = hw.disk_pages;
        self.p_req = hw.disk.requests();
        self.p_busy = hw.disk.busy_secs();
        self.p_delayed = 0;
        self.p_energy = hw.snapshot_energy();
        hw.period_disk_times.clear();
    }

    fn on_event(&mut self, event: &SimEvent, _hw: &mut HwState) {
        if let SimEvent::DiskRequest {
            latency,
            pages,
            user: true,
            ..
        } = *event
        {
            if latency > self.long_latency_secs {
                self.p_delayed += pages;
            }
        }
    }

    fn snapshot_state(&self) -> serde::Value {
        PeriodAccountingSnapshot {
            period_start: self.period_start,
            next_period: self.next_period,
            p_acc: self.p_acc,
            p_pages: self.p_pages,
            p_req: self.p_req,
            p_busy: self.p_busy,
            p_delayed: self.p_delayed,
            p_energy: self.p_energy,
            rows: self.rows.clone(),
            controller: self.controller.snapshot_state(),
        }
        .to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let snapshot = PeriodAccountingSnapshot::from_value(state)?;
        self.period_start = snapshot.period_start;
        self.next_period = snapshot.next_period;
        self.p_acc = snapshot.p_acc;
        self.p_pages = snapshot.p_pages;
        self.p_req = snapshot.p_req;
        self.p_busy = snapshot.p_busy;
        self.p_delayed = snapshot.p_delayed;
        self.p_energy = snapshot.p_energy;
        self.rows = snapshot.rows;
        self.controller.restore_state(&snapshot.controller)
    }
}

/// The dirty-page flush daemon: every `interval` it writes all dirty pages
/// back to the disk as coalesced background requests (emitted as
/// [`SimEvent::DiskRequest`] with `user: false`, followed by one
/// [`SimEvent::Sync`] per tick). Deliberately does *not* settle the
/// hardware — background flushes poke the disk without advancing the
/// metering clocks, matching the legacy loop.
pub struct FlushDaemon {
    interval: f64,
    next_sync: f64,
}

impl FlushDaemon {
    /// A flush daemon ticking every `interval_secs` (infinite disables it).
    pub fn new(interval_secs: f64) -> Self {
        FlushDaemon {
            interval: interval_secs,
            next_sync: interval_secs,
        }
    }
}

/// Serializable image of a [`FlushDaemon`] (the interval is
/// configuration; only the next tick is dynamic).
#[derive(Serialize, Deserialize)]
struct FlushSnapshot {
    next_sync: f64,
}

impl SimObserver for FlushDaemon {
    fn next_timer(&self) -> f64 {
        self.next_sync
    }

    fn on_timer(&mut self, t: f64, hw: &mut HwState, out: &mut Vec<SimEvent>) {
        let dirty = hw.mem.sync_dirty();
        let pages = dirty.len() as u64;
        out.extend(hw.submit_writes(dirty, t));
        out.push(SimEvent::Sync { time: t, pages });
        self.next_sync += self.interval;
    }

    fn snapshot_state(&self) -> serde::Value {
        FlushSnapshot {
            next_sync: self.next_sync,
        }
        .to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.next_sync = FlushSnapshot::from_value(state)?.next_sync;
        Ok(())
    }
}

/// User-visible latency inside the measured window.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Mean per-page access latency, s (hits contribute 0).
    pub mean_latency_secs: f64,
    /// Median user disk-request latency, s.
    pub request_latency_p50_secs: f64,
    /// 99th-percentile user disk-request latency, s.
    pub request_latency_p99_secs: f64,
    /// Worst user request latency, s.
    pub max_latency_secs: f64,
    /// Page accesses with latency above the long-latency threshold.
    pub long_latency_count: u64,
}

/// Tracks user-visible latency: every measured page access contributes to
/// the mean (hits as 0, each page of a missed run as the run's request
/// latency); user disk requests feed the percentile sample. Background
/// flushes (`user: false`) are ignored. Measurement starts at
/// [`SimEvent::WarmupEnd`] (immediately, for a non-positive warm-up).
pub struct LatencyTracker {
    measuring: bool,
    long_threshold: f64,
    latency: Welford,
    request_latencies: Vec<f64>,
    long_count: u64,
    max_latency: f64,
}

impl LatencyTracker {
    /// A tracker measuring after `warmup_secs`, counting accesses slower
    /// than `long_latency_secs` as long-latency (paper: 0.5 s).
    pub fn new(warmup_secs: f64, long_latency_secs: f64) -> Self {
        LatencyTracker {
            measuring: warmup_secs <= 0.0,
            long_threshold: long_latency_secs,
            latency: Welford::new(),
            request_latencies: Vec::new(),
            long_count: 0,
            max_latency: 0.0,
        }
    }

    /// Final latency statistics over the measured window.
    pub fn finalize(mut self) -> LatencySummary {
        self.request_latencies.sort_by(f64::total_cmp);
        LatencySummary {
            mean_latency_secs: self.latency.mean(),
            request_latency_p50_secs: jpmd_stats::percentile(&self.request_latencies, 0.5)
                .unwrap_or(0.0),
            request_latency_p99_secs: jpmd_stats::percentile(&self.request_latencies, 0.99)
                .unwrap_or(0.0),
            max_latency_secs: self.max_latency,
            long_latency_count: self.long_count,
        }
    }
}

/// Serializable image of a [`LatencyTracker`].
#[derive(Serialize, Deserialize)]
struct LatencySnapshot {
    measuring: bool,
    latency: Welford,
    request_latencies: Vec<f64>,
    long_count: u64,
    max_latency: f64,
}

impl SimObserver for LatencyTracker {
    fn snapshot_state(&self) -> serde::Value {
        LatencySnapshot {
            measuring: self.measuring,
            latency: self.latency,
            request_latencies: self.request_latencies.clone(),
            long_count: self.long_count,
            max_latency: self.max_latency,
        }
        .to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let snapshot = LatencySnapshot::from_value(state)?;
        self.measuring = snapshot.measuring;
        self.latency = snapshot.latency;
        self.request_latencies = snapshot.request_latencies;
        self.long_count = snapshot.long_count;
        self.max_latency = snapshot.max_latency;
        Ok(())
    }

    fn on_event(&mut self, event: &SimEvent, _hw: &mut HwState) {
        match *event {
            SimEvent::WarmupEnd { .. } => self.measuring = true,
            SimEvent::Access { hit: true, .. } if self.measuring => self.latency.push(0.0),
            SimEvent::DiskRequest {
                latency,
                pages,
                user: true,
                ..
            } if self.measuring => {
                self.request_latencies.push(latency);
                for _ in 0..pages {
                    self.latency.push(latency);
                }
                if latency > self.long_threshold {
                    self.long_count += pages;
                }
                if latency > self.max_latency {
                    self.max_latency = latency;
                }
            }
            _ => {}
        }
    }
}

/// Measured-window energy and traffic totals.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergySummary {
    /// Energy consumed inside the window.
    pub energy: EnergyBreakdown,
    /// Page lookups inside the window.
    pub cache_accesses: u64,
    /// Lookups served from memory.
    pub hits: u64,
    /// Pages moved between disk and memory.
    pub disk_page_accesses: u64,
    /// Disk requests (user + background).
    pub disk_requests: u64,
    /// Fraction of the window the disk was busy.
    pub utilization: f64,
    /// Disk spin-downs inside the window.
    pub spin_downs: u64,
}

/// Meters energy and traffic over the measured window: snapshots baselines
/// at [`SimEvent::WarmupEnd`] (the hardware is already settled there by
/// [`WarmupWindow`]) and reports end-of-run deltas via
/// [`EnergyMeter::finalize`].
#[derive(Default)]
pub struct EnergyMeter {
    baseline: EnergyBreakdown,
    acc: u64,
    hits: u64,
    req: u64,
    busy: f64,
    spins: u64,
    pages: u64,
}

impl EnergyMeter {
    /// A meter with all-zero baselines (measuring from t = 0 until a
    /// [`SimEvent::WarmupEnd`] re-baselines it).
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Measured-window totals; `hw` must already be settled at the run's
    /// end (the engine guarantees this) and `window` is the measured
    /// duration.
    pub fn finalize(&self, hw: &HwState, window: f64) -> EnergySummary {
        EnergySummary {
            energy: hw.snapshot_energy().since(&self.baseline),
            cache_accesses: hw.mem.accesses() - self.acc,
            hits: hw.mem.hits() - self.hits,
            disk_page_accesses: hw.disk_pages - self.pages,
            disk_requests: hw.disk.requests() - self.req,
            utilization: (hw.disk.busy_secs() - self.busy) / window.max(f64::MIN_POSITIVE),
            spin_downs: hw.disk.spin_downs() - self.spins,
        }
    }
}

/// Serializable image of an [`EnergyMeter`] (the measured-window
/// baselines).
#[derive(Serialize, Deserialize)]
struct EnergyMeterSnapshot {
    baseline: EnergyBreakdown,
    acc: u64,
    hits: u64,
    req: u64,
    busy: f64,
    spins: u64,
    pages: u64,
}

impl SimObserver for EnergyMeter {
    fn on_event(&mut self, event: &SimEvent, hw: &mut HwState) {
        if let SimEvent::WarmupEnd { .. } = event {
            self.baseline = hw.snapshot_energy();
            self.acc = hw.mem.accesses();
            self.hits = hw.mem.hits();
            self.req = hw.disk.requests();
            self.busy = hw.disk.busy_secs();
            self.spins = hw.disk.spin_downs();
            self.pages = hw.disk_pages;
        }
    }

    fn snapshot_state(&self) -> serde::Value {
        EnergyMeterSnapshot {
            baseline: self.baseline,
            acc: self.acc,
            hits: self.hits,
            req: self.req,
            busy: self.busy,
            spins: self.spins,
            pages: self.pages,
        }
        .to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let snapshot = EnergyMeterSnapshot::from_value(state)?;
        self.baseline = snapshot.baseline;
        self.acc = snapshot.acc;
        self.hits = snapshot.hits;
        self.req = snapshot.req;
        self.busy = snapshot.busy;
        self.spins = snapshot.spins;
        self.pages = snapshot.pages;
        Ok(())
    }
}

/// Streams engine activity into a [`Telemetry`] handle: whole-run counters
/// into its metrics registry, and one [`ObsEvent::Period`] per period
/// boundary carrying the period's traffic deltas and energy.
///
/// Purely passive — it only reads the hardware state — so registering it
/// cannot perturb the simulation; `run_simulation_source_with` registers
/// it **last** (after the standard stack) and only when the telemetry
/// handle is enabled, keeping the disabled path free of it entirely.
pub struct TelemetryObserver {
    telemetry: Telemetry,
    energy_base: EnergyBreakdown,
    accesses: u64,
    hits: u64,
    misses: u64,
    disk_requests: u64,
    syncs: u64,
    c_accesses: Counter,
    c_hits: Counter,
    c_misses: Counter,
    c_disk_requests: Counter,
    c_syncs: Counter,
    c_periods: Counter,
}

impl TelemetryObserver {
    /// An observer emitting through `telemetry` (and its registry).
    pub fn new(telemetry: &Telemetry) -> Self {
        let registry = telemetry.registry();
        TelemetryObserver {
            telemetry: telemetry.clone(),
            energy_base: EnergyBreakdown::default(),
            accesses: 0,
            hits: 0,
            misses: 0,
            disk_requests: 0,
            syncs: 0,
            c_accesses: registry.counter("sim.accesses"),
            c_hits: registry.counter("sim.hits"),
            c_misses: registry.counter("sim.misses"),
            c_disk_requests: registry.counter("sim.disk_requests"),
            c_syncs: registry.counter("sim.syncs"),
            c_periods: registry.counter("sim.periods"),
        }
    }
}

/// Serializable image of a [`TelemetryObserver`]'s per-period deltas
/// (counter handles are rebuilt from the live registry on resume; the
/// registry's own totals restart, which is fine — registry metrics are
/// advisory, not part of report equality).
#[derive(Serialize, Deserialize)]
struct TelemetrySnapshot {
    energy_base: EnergyBreakdown,
    accesses: u64,
    hits: u64,
    misses: u64,
    disk_requests: u64,
    syncs: u64,
}

impl SimObserver for TelemetryObserver {
    fn snapshot_state(&self) -> serde::Value {
        TelemetrySnapshot {
            energy_base: self.energy_base,
            accesses: self.accesses,
            hits: self.hits,
            misses: self.misses,
            disk_requests: self.disk_requests,
            syncs: self.syncs,
        }
        .to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let snapshot = TelemetrySnapshot::from_value(state)?;
        self.energy_base = snapshot.energy_base;
        self.accesses = snapshot.accesses;
        self.hits = snapshot.hits;
        self.misses = snapshot.misses;
        self.disk_requests = snapshot.disk_requests;
        self.syncs = snapshot.syncs;
        Ok(())
    }

    fn on_event(&mut self, event: &SimEvent, hw: &mut HwState) {
        match *event {
            SimEvent::Access { hit, .. } => {
                self.accesses += 1;
                self.c_accesses.inc();
                if hit {
                    self.hits += 1;
                    self.c_hits.inc();
                }
            }
            SimEvent::Miss { .. } => {
                self.misses += 1;
                self.c_misses.inc();
            }
            SimEvent::DiskRequest { .. } => {
                self.disk_requests += 1;
                self.c_disk_requests.inc();
            }
            SimEvent::Sync { .. } => {
                self.syncs += 1;
                self.c_syncs.inc();
            }
            SimEvent::WarmupEnd { time } => {
                self.telemetry
                    .emit_with(|| ObsEvent::WarmupEnd { sim_time_s: time });
            }
            SimEvent::PeriodBoundary { index, start, end } => {
                self.c_periods.inc();
                // The hardware is already settled at `end` by
                // PeriodAccounting, so the snapshot is exact.
                let energy = hw.snapshot_energy();
                let energy_j = (energy - self.energy_base).total_j();
                self.telemetry.emit_with(|| ObsEvent::Period {
                    index: index as u64,
                    start_s: start,
                    end_s: end,
                    accesses: self.accesses,
                    hits: self.hits,
                    misses: self.misses,
                    disk_requests: self.disk_requests,
                    syncs: self.syncs,
                    energy_j,
                });
                self.energy_base = energy;
                self.accesses = 0;
                self.hits = 0;
                self.misses = 0;
                self.disk_requests = 0;
                self.syncs = 0;
            }
        }
    }
}
