//! Checkpoint/resume equality at the simulator level: interrupting a run
//! at a checkpoint and resuming it from the captured [`SimCheckpoint`]
//! must produce a report bit-identical to the uninterrupted run's —
//! including a stateful controller's decisions and the telemetry stream.

use jpmd_disk::SpinDownPolicy;
use jpmd_mem::{AccessLog, IdlePolicy, MemConfig, RdramModel};
use jpmd_obs::{MemorySink, Telemetry};
use jpmd_sim::{
    run_simulation_full, run_simulation_source_with, CheckpointOptions, CheckpointPolicy,
    ControlAction, PeriodController, PeriodObservation, SimCheckpoint, SimConfig, SimOutcome,
};
use jpmd_trace::{AccessKind, FileId, Trace, TraceRecord, WorkloadBuilder, MIB};
use serde::{Deserialize, Serialize};

fn config() -> SimConfig {
    let mut config = SimConfig::with_mem(MemConfig {
        page_bytes: MIB,
        bank_pages: 8,
        total_banks: 8,
        initial_banks: 8,
        model: RdramModel::default(),
        policy: IdlePolicy::Nap,
    });
    config.period_secs = 60.0;
    config.sync_interval_secs = 30.0;
    config.warmup_secs = 30.0;
    config
}

fn trace() -> Trace {
    WorkloadBuilder::new()
        .data_set_bytes(48 * MIB)
        .rate_bytes_per_sec(2 * MIB)
        .duration_secs(600.0)
        .seed(7)
        .build()
        .expect("workload builds")
}

/// A controller with real internal state: it oscillates bank counts based
/// on a running counter, so losing its state on resume would visibly
/// change later periods.
#[derive(Default, Serialize, Deserialize)]
struct Oscillator {
    period: u64,
}

impl PeriodController for Oscillator {
    fn on_period_end(&mut self, _: &PeriodObservation, _: &AccessLog) -> ControlAction {
        self.period += 1;
        ControlAction {
            enabled_banks: Some(4 + (self.period % 4) as u32),
            disk_timeout: Some(5.0 + self.period as f64),
        }
    }

    fn name(&self) -> &str {
        "oscillator"
    }

    fn snapshot_state(&self) -> serde::Value {
        serde::Serialize::to_value(self)
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        *self = <Oscillator as serde::Deserialize>::from_value(state)?;
        Ok(())
    }
}

/// Runs to completion, interrupts at the `stop_after`-th checkpoint, then
/// resumes — and asserts the resumed report equals the uninterrupted one.
fn assert_resume_matches(telemetry_enabled: bool, stop_after: usize) {
    let config = config();
    let trace = trace();
    let duration = 600.0;
    let spindown = SpinDownPolicy::controlled(f64::INFINITY);

    let baseline_sink = MemorySink::new();
    let baseline_telemetry = if telemetry_enabled {
        Telemetry::new(Box::new(baseline_sink.clone()))
    } else {
        Telemetry::disabled()
    };
    let baseline = run_simulation_source_with(
        &config,
        spindown.clone(),
        &mut Oscillator::default(),
        trace.source(),
        duration,
        "ckpt-test",
        &baseline_telemetry,
    )
    .expect("baseline run");

    // Interrupted run: checkpoint every period, stop at checkpoint #stop_after.
    let interrupted_sink = MemorySink::new();
    let interrupted_telemetry = if telemetry_enabled {
        Telemetry::new(Box::new(interrupted_sink.clone()))
    } else {
        Telemetry::disabled()
    };
    let mut captured: Vec<SimCheckpoint> = Vec::new();
    let outcome = {
        let mut on_checkpoint = |ckpt: SimCheckpoint| {
            captured.push(ckpt);
            captured.len() < stop_after
        };
        run_simulation_full(
            &config,
            spindown.clone(),
            &mut Oscillator::default(),
            trace.source(),
            duration,
            "ckpt-test",
            &interrupted_telemetry,
            None,
            None,
            Some(CheckpointOptions {
                policy: CheckpointPolicy::every(1),
                on_checkpoint: &mut on_checkpoint,
            }),
        )
        .expect("interrupted run")
    };
    assert_eq!(outcome, SimOutcome::Interrupted);
    assert_eq!(captured.len(), stop_after);
    let ckpt = captured.last().expect("at least one checkpoint");

    // Resume from the last checkpoint with a *fresh* controller and the
    // same source; the checkpoint must rebuild everything dynamic.
    let resumed = run_simulation_full(
        &config,
        spindown,
        &mut Oscillator::default(),
        trace.source(),
        duration,
        "ckpt-test",
        &interrupted_telemetry,
        None,
        Some(ckpt),
        None,
    )
    .expect("resumed run")
    .into_report()
    .expect("resumed run completes");

    assert_eq!(baseline, resumed, "resumed report must be bit-identical");
    assert!(resumed.engine.counts.period_boundaries as usize > stop_after);

    if telemetry_enabled {
        // The interrupted segment emits a trailing SpanEnd after the
        // checkpoint was captured (the replay span closes as the run
        // unwinds). The WAL resume protocol truncates everything at or
        // after the checkpoint's seq before appending — emulate that here
        // by replaying the in-memory stream through the same
        // truncate-at-seq rule, which also proves seqs are gap-free.
        let mut effective = Vec::new();
        for record in interrupted_sink.records() {
            assert!(
                (record.seq as usize) <= effective.len(),
                "telemetry seq gap: seq {} after {} records",
                record.seq,
                effective.len()
            );
            effective.truncate(record.seq as usize);
            effective.push(record);
        }
        let baseline_lines: Vec<String> = baseline_sink
            .records()
            .iter()
            .map(|r| r.normalized_line())
            .collect();
        let resumed_lines: Vec<String> = effective.iter().map(|r| r.normalized_line()).collect();
        assert_eq!(baseline_lines, resumed_lines);
    }
}

#[test]
fn resume_matches_uninterrupted_run_without_telemetry() {
    assert_resume_matches(false, 2);
}

#[test]
fn resume_matches_uninterrupted_run_with_telemetry() {
    assert_resume_matches(true, 3);
}

#[test]
fn resume_from_first_checkpoint_matches() {
    assert_resume_matches(false, 1);
}

#[test]
fn shutdown_flag_interrupts_at_next_boundary() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let config = config();
    let trace = trace();
    let shutdown = Arc::new(AtomicBool::new(true));
    let mut captured = Vec::new();
    let mut on_checkpoint = |ckpt: SimCheckpoint| {
        captured.push(ckpt);
        true // the shutdown flag, not the callback, stops the run
    };
    let outcome = run_simulation_full(
        &config,
        SpinDownPolicy::controlled(f64::INFINITY),
        &mut Oscillator::default(),
        trace.source(),
        600.0,
        "shutdown-test",
        &Telemetry::disabled(),
        None,
        None,
        Some(CheckpointOptions {
            policy: CheckpointPolicy {
                every_periods: 0, // cadence disabled: only shutdown triggers
                shutdown: Some(shutdown.clone()),
            },
            on_checkpoint: &mut on_checkpoint,
        }),
    )
    .expect("run");
    assert_eq!(outcome, SimOutcome::Interrupted);
    assert_eq!(captured.len(), 1, "one final checkpoint on shutdown");
    // The checkpoint stopped at the first boundary: exactly one period row
    // in the accounting image, and the stats reflect a partial replay.
    assert_eq!(captured[0].engine.stats.counts.period_boundaries, 1);
    let _ = shutdown.load(Ordering::Relaxed);
}

#[test]
fn tampered_checkpoint_fails_with_an_error_not_a_panic() {
    let config = config();
    let trace = trace();
    let mut captured = Vec::new();
    let mut on_checkpoint = |ckpt: SimCheckpoint| {
        captured.push(ckpt);
        false
    };
    run_simulation_full(
        &config,
        SpinDownPolicy::controlled(f64::INFINITY),
        &mut Oscillator::default(),
        trace.source(),
        600.0,
        "tamper-test",
        &Telemetry::disabled(),
        None,
        None,
        Some(CheckpointOptions {
            policy: CheckpointPolicy::every(1),
            on_checkpoint: &mut on_checkpoint,
        }),
    )
    .expect("run");
    let mut ckpt = captured.pop().expect("one checkpoint");
    // Corrupt the hardware image wholesale.
    ckpt.engine.hw = serde::Value::Str("not a hardware snapshot".into());
    let err = run_simulation_full(
        &config,
        SpinDownPolicy::controlled(f64::INFINITY),
        &mut Oscillator::default(),
        trace.source(),
        600.0,
        "tamper-test",
        &Telemetry::disabled(),
        None,
        Some(&ckpt),
        None,
    )
    .expect_err("tampered checkpoint must fail to restore");
    assert!(err.to_string().contains("checkpoint restore failed"));
}

/// Yields scripted records in the given order, *without* the time sort
/// that [`Trace::new`] applies — so out-of-order timestamps reach the
/// engine's clamp path.
struct UnsortedSource(std::collections::VecDeque<TraceRecord>);

impl jpmd_trace::TraceSource for UnsortedSource {
    fn page_bytes(&self) -> u64 {
        MIB
    }

    fn total_pages(&self) -> u64 {
        64
    }

    fn next_record(&mut self) -> Option<Result<TraceRecord, jpmd_trace::SourceError>> {
        self.0.pop_front().map(Ok)
    }
}

/// The resume cursor also has to work when the source stream itself is
/// messy: duplicate timestamps and out-of-order records exercise the
/// clamp path, whose `last_time` lives in the checkpoint.
#[test]
fn resume_preserves_clamping_state() {
    let mut records = Vec::new();
    for i in 0..200u64 {
        let t = if i % 7 == 3 {
            (i as f64) - 2.5 // out of order: will be clamped
        } else {
            i as f64
        };
        records.push(TraceRecord {
            time: t * 3.0,
            file: FileId(0),
            first_page: (i * 3) % 48,
            pages: 1 + (i % 3),
            kind: if i % 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        });
    }
    let source = || UnsortedSource(records.clone().into());
    let config = config();

    let baseline = run_simulation_source_with(
        &config,
        SpinDownPolicy::controlled(f64::INFINITY),
        &mut Oscillator::default(),
        source(),
        500.0,
        "clamp-test",
        &Telemetry::disabled(),
    )
    .expect("baseline");
    assert!(baseline.engine.records_clamped > 0, "clamping exercised");

    let mut captured = Vec::new();
    let mut on_checkpoint = |ckpt: SimCheckpoint| {
        captured.push(ckpt);
        false
    };
    run_simulation_full(
        &config,
        SpinDownPolicy::controlled(f64::INFINITY),
        &mut Oscillator::default(),
        source(),
        500.0,
        "clamp-test",
        &Telemetry::disabled(),
        None,
        None,
        Some(CheckpointOptions {
            policy: CheckpointPolicy::every(2),
            on_checkpoint: &mut on_checkpoint,
        }),
    )
    .expect("interrupted");
    let ckpt = captured.pop().expect("checkpoint");
    let resumed = run_simulation_full(
        &config,
        SpinDownPolicy::controlled(f64::INFINITY),
        &mut Oscillator::default(),
        source(),
        500.0,
        "clamp-test",
        &Telemetry::disabled(),
        None,
        Some(&ckpt),
        None,
    )
    .expect("resumed")
    .into_report()
    .expect("completes");
    assert_eq!(baseline, resumed);
}
