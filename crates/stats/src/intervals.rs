use serde::{Deserialize, Serialize};

/// Disk idle intervals extracted from an access timestamp stream, after
/// applying the paper's *aggregation window* `w`.
///
/// "If one disk access is followed by another access and the idle interval
/// between them is shorter than `w`, this idle time is ignored" (§IV-A):
/// such gaps provide no opportunity to save energy, so consecutive accesses
/// closer than `w` are treated as one busy burst. Only gaps `> w` count as
/// idle intervals.
///
/// # Example
///
/// ```
/// use jpmd_stats::IdleIntervals;
///
/// // Two bursts separated by a 4.98 s gap; the 0.02 s gap inside the first
/// // burst is swallowed by the 0.1 s aggregation window.
/// let idle = IdleIntervals::from_timestamps(&[0.0, 0.02, 5.0], 0.1);
/// assert_eq!(idle.count(), 1);
/// assert!((idle.as_slice()[0] - 4.98).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IdleIntervals {
    intervals: Vec<f64>,
    window: f64,
}

impl IdleIntervals {
    /// Extracts idle intervals from ascending access timestamps, ignoring
    /// gaps of `window` seconds or less.
    ///
    /// Out-of-order timestamps are tolerated by clamping negative gaps to
    /// zero (they then fall below the window and are ignored), so a stream
    /// with simultaneous accesses is handled gracefully.
    pub fn from_timestamps(timestamps: &[f64], window: f64) -> Self {
        let mut intervals = Vec::new();
        for pair in timestamps.windows(2) {
            let gap = (pair[1] - pair[0]).max(0.0);
            if gap > window {
                intervals.push(gap);
            }
        }
        Self { intervals, window }
    }

    /// Builds directly from pre-computed interval lengths, discarding those
    /// at or below `window`.
    pub fn from_lengths<I: IntoIterator<Item = f64>>(lengths: I, window: f64) -> Self {
        let intervals = lengths.into_iter().filter(|&g| g > window).collect();
        Self { intervals, window }
    }

    /// Number of idle intervals (the paper's `n_i`).
    pub fn count(&self) -> usize {
        self.intervals.len()
    }

    /// True if no gap exceeded the aggregation window.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The aggregation window used during extraction.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Mean interval length (`ℓ̄`), or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.intervals.is_empty() {
            None
        } else {
            Some(self.intervals.iter().sum::<f64>() / self.intervals.len() as f64)
        }
    }

    /// Total idle time across intervals.
    pub fn total(&self) -> f64 {
        self.intervals.iter().sum()
    }

    /// Borrowed view of the interval lengths.
    pub fn as_slice(&self) -> &[f64] {
        &self.intervals
    }

    /// Summary statistics (count, mean, min, max, total).
    pub fn stats(&self) -> IntervalStats {
        IntervalStats {
            count: self.count(),
            mean: self.mean().unwrap_or(0.0),
            min: self.intervals.iter().copied().fold(f64::INFINITY, f64::min),
            max: self.intervals.iter().copied().fold(0.0, f64::max),
            total: self.total(),
        }
    }
}

impl IntoIterator for IdleIntervals {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.intervals.into_iter()
    }
}

/// Descriptive statistics of an [`IdleIntervals`] collection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalStats {
    /// Number of intervals (`n_i`).
    pub count: usize,
    /// Mean length (0 when empty).
    pub mean: f64,
    /// Shortest interval (`+∞` when empty).
    pub min: f64,
    /// Longest interval (0 when empty).
    pub max: f64,
    /// Sum of lengths.
    pub total: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn window_filters_short_gaps() {
        let ts = [0.0, 0.05, 0.2, 10.0, 10.01, 30.0];
        let idle = IdleIntervals::from_timestamps(&ts, 0.1);
        // Gaps: 0.05 (drop), 0.15 (keep), 9.8 (keep), 0.01 (drop), 19.99 (keep)
        assert_eq!(idle.count(), 3);
        assert!((idle.as_slice()[0] - 0.15).abs() < 1e-12);
        assert!((idle.as_slice()[1] - 9.8).abs() < 1e-12);
        assert!((idle.as_slice()[2] - 19.99).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_timestamp_yield_no_intervals() {
        assert!(IdleIntervals::from_timestamps(&[], 0.1).is_empty());
        assert!(IdleIntervals::from_timestamps(&[5.0], 0.1).is_empty());
    }

    #[test]
    fn mean_and_total() {
        let idle = IdleIntervals::from_lengths([1.0, 3.0], 0.1);
        assert_eq!(idle.mean(), Some(2.0));
        assert_eq!(idle.total(), 4.0);
    }

    #[test]
    fn from_lengths_filters_at_or_below_window() {
        let idle = IdleIntervals::from_lengths([0.1, 0.100001, 5.0], 0.1);
        assert_eq!(idle.count(), 2);
    }

    #[test]
    fn out_of_order_timestamps_do_not_panic() {
        let idle = IdleIntervals::from_timestamps(&[5.0, 1.0, 20.0], 0.1);
        assert_eq!(idle.count(), 1); // only 1.0 -> 20.0 counts
    }

    #[test]
    fn stats_of_empty() {
        let s = IdleIntervals::default().stats();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.total, 0.0);
    }

    proptest! {
        #[test]
        fn all_intervals_exceed_window(
            gaps in proptest::collection::vec(0.0f64..2.0, 0..64),
            window in 0.01f64..0.5,
        ) {
            let mut t = 0.0;
            let mut ts = vec![0.0];
            for g in &gaps {
                t += g;
                ts.push(t);
            }
            let idle = IdleIntervals::from_timestamps(&ts, window);
            for &iv in idle.as_slice() {
                prop_assert!(iv > window);
            }
        }

        #[test]
        fn widening_window_never_increases_count(
            gaps in proptest::collection::vec(0.0f64..2.0, 0..64),
        ) {
            let mut t = 0.0;
            let mut ts = vec![0.0];
            for g in &gaps {
                t += g;
                ts.push(t);
            }
            let narrow = IdleIntervals::from_timestamps(&ts, 0.05);
            let wide = IdleIntervals::from_timestamps(&ts, 0.5);
            prop_assert!(wide.count() <= narrow.count());
        }

        #[test]
        fn total_idle_bounded_by_span(
            gaps in proptest::collection::vec(0.0f64..2.0, 1..64),
        ) {
            let mut t = 0.0;
            let mut ts = vec![0.0];
            for g in &gaps {
                t += g;
                ts.push(t);
            }
            let idle = IdleIntervals::from_timestamps(&ts, 0.1);
            prop_assert!(idle.total() <= t + 1e-9);
        }
    }
}
