use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::StatsError;

/// A shifted exponential distribution: `x − shift ~ Exp(rate)`.
///
/// The classic *memoryless* alternative to the paper's heavy-tailed Pareto
/// model of disk idle intervals. Under a memoryless model, waiting out a
/// timeout tells the power manager nothing about the remaining idle time —
/// so timeout policies cannot beat a coin flip, and the paper's whole
/// eq. (5) machinery would be pointless. The goodness-of-fit comparison in
/// [`fit`](crate::fit) / [`ks_statistic`](crate::ks_statistic) shows the
/// observed idle intervals reject the exponential in favor of the Pareto,
/// which is the empirical footing of the method (refs. \[19\], \[20\]).
///
/// # Example
///
/// ```
/// use jpmd_stats::Exponential;
///
/// # fn main() -> Result<(), jpmd_stats::StatsError> {
/// let e = Exponential::new(0.5, 0.1)?;
/// assert!((e.mean() - 2.1).abs() < 1e-12);
/// assert!(e.cdf(0.1) == 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
    shift: f64,
}

impl Exponential {
    /// Creates a shifted exponential with the given `rate` (1/mean excess)
    /// and lower bound `shift`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `rate ≤ 0`, `shift < 0`,
    /// or either is not finite.
    pub fn new(rate: f64, shift: f64) -> Result<Self, StatsError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "rate",
                value: rate,
                requirement: "must be finite and > 0",
            });
        }
        if !shift.is_finite() || shift < 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "shift",
                value: shift,
                requirement: "must be finite and >= 0",
            });
        }
        Ok(Self { rate, shift })
    }

    /// Fits by the method of moments with a fixed `shift`: the rate is
    /// `1 / (mean − shift)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DegenerateSample`] when `mean ≤ shift`.
    pub fn from_mean(mean: f64, shift: f64) -> Result<Self, StatsError> {
        if mean.partial_cmp(&shift) != Some(std::cmp::Ordering::Greater) {
            return Err(StatsError::DegenerateSample {
                reason: "mean must exceed the shift",
            });
        }
        Self::new(1.0 / (mean - shift), shift)
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The lower bound.
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Mean `shift + 1/rate`.
    pub fn mean(&self) -> f64 {
        self.shift + 1.0 / self.rate
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.shift {
            0.0
        } else {
            1.0 - (-(x - self.shift) * self.rate).exp()
        }
    }

    /// Survival function `P(X > x)`.
    pub fn survival(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Draws one sample by inverse transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.shift - u.ln() / self.rate
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Exponential::new(0.0, 0.1).is_err());
        assert!(Exponential::new(-1.0, 0.1).is_err());
        assert!(Exponential::new(1.0, -0.1).is_err());
        assert!(Exponential::new(f64::NAN, 0.0).is_err());
        assert!(Exponential::from_mean(0.1, 0.2).is_err());
    }

    #[test]
    fn moment_fit_roundtrips() {
        let e = Exponential::from_mean(2.5, 0.1).unwrap();
        assert!((e.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_at_known_points() {
        let e = Exponential::new(1.0, 0.0).unwrap();
        assert!((e.cdf(1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert_eq!(e.cdf(-1.0), 0.0);
    }

    #[test]
    fn sample_mean_converges() {
        let e = Exponential::new(2.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100_000;
        let mean = e.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!((mean - e.mean()).abs() / e.mean() < 0.02);
    }

    proptest! {
        #[test]
        fn cdf_monotone(rate in 0.01f64..10.0, shift in 0.0f64..5.0,
                        a in 0.0f64..50.0, b in 0.0f64..50.0) {
            let e = Exponential::new(rate, shift).unwrap();
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(e.cdf(lo) <= e.cdf(hi) + 1e-12);
        }

        #[test]
        fn samples_above_shift(rate in 0.01f64..10.0, shift in 0.0f64..5.0,
                               seed in any::<u64>()) {
            let e = Exponential::new(rate, shift).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..32 {
                prop_assert!(e.sample(&mut rng) >= shift);
            }
        }
    }
}
