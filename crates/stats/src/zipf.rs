use rand::Rng;

use crate::StatsError;

/// A Zipf(-like) sampler over ranks `0..n`, used for file popularity in the
/// synthetic web-server workloads.
///
/// Web-server request streams are famously Zipf-distributed (Arlitt &
/// Williamson, paper ref. \[42\]): rank `k` (0-based) is drawn with
/// probability proportional to `1/(k+1)^s`. The exponent `s` controls how
/// *dense* the popularity is — larger `s` concentrates accesses on fewer
/// files, which is exactly the knob the paper's workload synthesizer turns
/// (popularity 0.05 … 0.6, defined as the fraction of the data set that
/// receives 90 % of accesses).
///
/// Sampling uses a precomputed cumulative table with binary search: O(n)
/// setup, O(log n) per draw, exact probabilities. For the file counts used
/// here (≤ a few hundred thousand) this is both simpler and faster than
/// rejection samplers.
///
/// # Example
///
/// ```
/// use jpmd_stats::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), jpmd_stats::StatsError> {
/// let zipf = Zipf::new(1000, 0.9)?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[k]` = P(rank ≤ k).
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a Zipf sampler over `n` ranks with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `n == 0`, or when `s`
    /// is negative or not finite (`s = 0` is permitted and yields a uniform
    /// distribution).
    pub fn new(n: usize, s: f64) -> Result<Self, StatsError> {
        if n == 0 {
            return Err(StatsError::InvalidParameter {
                name: "n",
                value: 0.0,
                requirement: "must be >= 1",
            });
        }
        if !s.is_finite() || s < 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "s",
                value: s,
                requirement: "must be finite and >= 0",
            });
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Self { cdf, exponent: s })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is exactly one rank (never zero by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of rank `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draws a rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // partition_point returns the first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u)
    }

    /// Smallest number of top ranks whose combined probability reaches
    /// `mass` (e.g. `0.9` for "files receiving 90 % of accesses").
    ///
    /// # Panics
    ///
    /// Panics if `mass` is outside `[0, 1]`.
    pub fn ranks_for_mass(&self, mass: f64) -> usize {
        assert!((0.0..=1.0).contains(&mass), "mass must be in [0,1]");
        self.cdf.partition_point(|&c| c < mass) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -0.1).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(4, 0.0).unwrap();
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipf::new(100, 1.0).unwrap();
        for k in 1..100 {
            assert!(z.pmf(0) >= z.pmf(k));
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(1000, 0.8).unwrap();
        let sum: f64 = (0..1000).map(|k| z.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(50, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let mut counts = vec![0usize; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0usize, 1, 5, 20] {
            let emp = counts[k] as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: empirical {emp} vs pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn ranks_for_mass_monotone_in_exponent() {
        // Denser popularity (larger s) needs fewer ranks for 90 % of mass.
        let sparse = Zipf::new(10_000, 0.6).unwrap();
        let dense = Zipf::new(10_000, 1.3).unwrap();
        assert!(dense.ranks_for_mass(0.9) < sparse.ranks_for_mass(0.9));
    }

    #[test]
    fn ranks_for_mass_boundaries() {
        let z = Zipf::new(10, 1.0).unwrap();
        assert_eq!(z.ranks_for_mass(0.0), 1);
        assert_eq!(z.ranks_for_mass(1.0), 10);
    }

    proptest! {
        #[test]
        fn samples_in_range(n in 1usize..2000, s in 0.0f64..2.5, seed in any::<u64>()) {
            let z = Zipf::new(n, s).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..32 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }

        #[test]
        fn pmf_is_nonincreasing(n in 2usize..500, s in 0.0f64..3.0) {
            let z = Zipf::new(n, s).unwrap();
            for k in 1..n {
                prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
            }
        }
    }
}
