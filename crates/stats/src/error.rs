use std::error::Error;
use std::fmt;

/// Error type for statistical constructions and fits.
///
/// Returned by [`Pareto::new`](crate::Pareto::new), the estimators in
/// [`fit`](crate::fit), and [`Zipf::new`](crate::Zipf::new) when parameters
/// are outside their mathematical domain.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter (e.g. `"alpha"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable domain description (e.g. `"must be > 1"`).
        requirement: &'static str,
    },
    /// A fit was requested on an empty or degenerate sample.
    DegenerateSample {
        /// What made the sample unusable.
        reason: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "invalid parameter {name} = {value}: {requirement}"),
            StatsError::DegenerateSample { reason } => {
                write!(f, "degenerate sample: {reason}")
            }
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = StatsError::InvalidParameter {
            name: "alpha",
            value: 0.5,
            requirement: "must be > 1",
        };
        let msg = e.to_string();
        assert!(msg.contains("alpha"));
        assert!(msg.contains("0.5"));
        assert!(msg.starts_with("invalid"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }

    #[test]
    fn degenerate_sample_display() {
        let e = StatsError::DegenerateSample {
            reason: "no intervals",
        };
        assert_eq!(e.to_string(), "degenerate sample: no intervals");
    }
}
