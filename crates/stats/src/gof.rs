//! Goodness-of-fit machinery: the one-sample Kolmogorov–Smirnov test,
//! used to check the paper's central modeling assumption — that disk idle
//! intervals follow a Pareto distribution (§IV-C; refs. \[19\], \[20\]) — on
//! the traces this simulator actually produces. The `ablation` experiment
//! compares the Pareto fit against the memoryless exponential alternative.

use crate::StatsError;

/// Result of a Kolmogorov–Smirnov one-sample test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic `D = sup |F_n(x) − F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution; accurate for n ≳ 35).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

/// Computes the one-sample KS statistic of `samples` against the
/// hypothesized CDF `cdf`.
///
/// The samples need not be sorted. Uses the standard two-sided empirical
/// bounds `max(i/n − F(x_i), F(x_i) − (i−1)/n)`.
///
/// # Errors
///
/// Returns [`StatsError::DegenerateSample`] for an empty sample.
pub fn ks_statistic<F: Fn(f64) -> f64>(samples: &[f64], cdf: F) -> Result<f64, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::DegenerateSample {
            reason: "KS test needs at least one sample",
        });
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x).clamp(0.0, 1.0);
        let upper = (i + 1) as f64 / n - f;
        let lower = f - i as f64 / n;
        d = d.max(upper).max(lower);
    }
    Ok(d)
}

/// Runs the one-sample KS test and reports the asymptotic p-value.
///
/// The p-value uses the Kolmogorov distribution
/// `Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}` with
/// `λ = (√n + 0.12 + 0.11/√n)·D` (Stephens' approximation).
///
/// # Errors
///
/// Returns [`StatsError::DegenerateSample`] for an empty sample.
///
/// # Example
///
/// ```
/// use jpmd_stats::{ks_test, Pareto};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), jpmd_stats::StatsError> {
/// let truth = Pareto::new(1.8, 0.1)?;
/// let mut rng = StdRng::seed_from_u64(5);
/// let samples = truth.sample_n(&mut rng, 2000);
/// let ks = ks_test(&samples, |x| truth.cdf(x))?;
/// assert!(ks.p_value > 0.01, "true model should not be rejected");
/// # Ok(())
/// # }
/// ```
pub fn ks_test<F: Fn(f64) -> f64>(samples: &[f64], cdf: F) -> Result<KsTest, StatsError> {
    let d = ks_statistic(samples, cdf)?;
    let n = samples.len();
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    Ok(KsTest {
        statistic: d,
        p_value: kolmogorov_q(lambda),
        n,
    })
}

/// The Kolmogorov survival function `Q(λ)`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exponential, Pareto};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_sample() {
        assert!(ks_statistic(&[], |_| 0.5).is_err());
    }

    #[test]
    fn perfect_fit_has_small_statistic() {
        // Samples at the exact quantiles of U(0,1).
        let n = 100;
        let samples: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let d = ks_statistic(&samples, |x| x.clamp(0.0, 1.0)).unwrap();
        assert!(d <= 0.5 / n as f64 + 1e-12, "D = {d}");
    }

    #[test]
    fn true_model_not_rejected() {
        let truth = Pareto::new(1.5, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let samples = truth.sample_n(&mut rng, 5000);
        let ks = ks_test(&samples, |x| truth.cdf(x)).unwrap();
        assert!(ks.p_value > 0.05, "p = {}", ks.p_value);
    }

    #[test]
    fn wrong_model_is_rejected() {
        // Pareto data tested against an exponential with the same mean:
        // the heavy tail must be detected.
        let truth = Pareto::new(1.3, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let samples = truth.sample_n(&mut rng, 5000);
        let expo = Exponential::from_mean(truth.mean(), 0.1).unwrap();
        let ks = ks_test(&samples, |x| expo.cdf(x)).unwrap();
        assert!(
            ks.p_value < 1e-4,
            "exponential should be strongly rejected, p = {}",
            ks.p_value
        );
    }

    #[test]
    fn pareto_fits_pareto_better_than_exponential() {
        // The ablation's core comparison, in miniature.
        let truth = Pareto::new(1.6, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let samples = truth.sample_n(&mut rng, 3000);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let pareto = crate::fit::pareto_from_mean(mean, 0.1).unwrap();
        let expo = Exponential::from_mean(mean, 0.1).unwrap();
        let d_pareto = ks_statistic(&samples, |x| pareto.cdf(x)).unwrap();
        let d_expo = ks_statistic(&samples, |x| expo.cdf(x)).unwrap();
        assert!(
            d_pareto < d_expo,
            "pareto D = {d_pareto} must beat exponential D = {d_expo}"
        );
    }

    #[test]
    fn kolmogorov_q_boundaries() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(0.5) > 0.9);
        assert!(kolmogorov_q(2.0) < 1e-3);
    }
}
