//! Estimators that recover [`Pareto`] parameters from observed idle
//! intervals.
//!
//! The joint power manager fixes the scale `β` to the aggregation window
//! `w` (the shortest interval it ever records, paper §V-A) and estimates
//! the shape `α` from the sample mean: since `E[ℓ] = α·β/(α−1)`,
//!
//! ```text
//! α = ℓ̄ / (ℓ̄ − β)
//! ```
//!
//! (paper §IV-C, last paragraph). [`pareto_from_mean`] implements exactly
//! that, with clamping for the degenerate regimes a live system encounters;
//! [`pareto_mle`] provides the textbook maximum-likelihood alternative used
//! by the ablation benches.

use crate::{Pareto, StatsError};

/// Largest shape the moment estimator will return.
///
/// `ℓ̄ → β⁺` drives `α → ∞` (all intervals barely exceed the window, so the
/// disk should effectively never spin down). Clamping keeps the downstream
/// timeout `t_o = α·t_be` finite.
pub const ALPHA_MAX: f64 = 1.0e3;

/// Smallest shape the estimators will return.
///
/// `α` must exceed 1 for the mean to exist; values this close to 1 already
/// describe an extremely heavy tail (spin down almost immediately).
pub const ALPHA_MIN: f64 = 1.0 + 1.0e-6;

/// Estimates a [`Pareto`] from the sample mean with fixed scale `beta`,
/// as the joint policy does at every period boundary.
///
/// The shape is `α = mean/(mean − β)`, clamped to
/// [`ALPHA_MIN`]`..=`[`ALPHA_MAX`]. A mean at or below `β` (impossible for a
/// true Pareto sample but reachable through aggregation artifacts) clamps to
/// [`ALPHA_MAX`]: all intervals are short, so the fitted model must make
/// long intervals vanishingly likely.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `beta ≤ 0` or either argument
/// is not finite, and [`StatsError::DegenerateSample`] if `mean ≤ 0`.
///
/// # Example
///
/// ```
/// use jpmd_stats::fit::pareto_from_mean;
///
/// # fn main() -> Result<(), jpmd_stats::StatsError> {
/// // Mean idle interval 0.3 s with a 0.1 s aggregation window:
/// let p = pareto_from_mean(0.3, 0.1)?;
/// assert!((p.shape() - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn pareto_from_mean(mean: f64, beta: f64) -> Result<Pareto, StatsError> {
    if !beta.is_finite() || beta <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "beta",
            value: beta,
            requirement: "must be finite and > 0",
        });
    }
    if !mean.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "mean",
            value: mean,
            requirement: "must be finite",
        });
    }
    if mean <= 0.0 {
        return Err(StatsError::DegenerateSample {
            reason: "mean idle interval must be positive",
        });
    }
    let alpha = if mean <= beta {
        ALPHA_MAX
    } else {
        (mean / (mean - beta)).clamp(ALPHA_MIN, ALPHA_MAX)
    };
    Pareto::new(alpha, beta)
}

/// Maximum-likelihood [`Pareto`] fit with fixed scale `beta`.
///
/// The MLE for the shape with known scale is
/// `α̂ = n / Σ ln(xᵢ/β)`, clamped to [`ALPHA_MIN`]`..=`[`ALPHA_MAX`].
/// Samples at or below `β` are clamped to `β` first (they arise from the
/// aggregation window quantizing short gaps).
///
/// # Errors
///
/// Returns [`StatsError::DegenerateSample`] when `samples` is empty and
/// [`StatsError::InvalidParameter`] when `beta ≤ 0` or not finite.
pub fn pareto_mle(samples: &[f64], beta: f64) -> Result<Pareto, StatsError> {
    if !beta.is_finite() || beta <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "beta",
            value: beta,
            requirement: "must be finite and > 0",
        });
    }
    if samples.is_empty() {
        return Err(StatsError::DegenerateSample {
            reason: "cannot fit a distribution to zero samples",
        });
    }
    let log_sum: f64 = samples.iter().map(|&x| (x.max(beta) / beta).ln()).sum();
    let alpha = if log_sum <= 0.0 {
        ALPHA_MAX
    } else {
        (samples.len() as f64 / log_sum).clamp(ALPHA_MIN, ALPHA_MAX)
    };
    Pareto::new(alpha, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moment_fit_matches_paper_formula() {
        // α = mean / (mean - β)
        let p = pareto_from_mean(0.5, 0.1).unwrap();
        assert!((p.shape() - 0.5 / 0.4).abs() < 1e-12);
        assert_eq!(p.scale(), 0.1);
    }

    #[test]
    fn moment_fit_roundtrips_analytic_mean() {
        for alpha in [1.2, 2.0, 5.0, 20.0] {
            let truth = Pareto::new(alpha, 0.1).unwrap();
            let fitted = pareto_from_mean(truth.mean(), 0.1).unwrap();
            assert!(
                (fitted.shape() - alpha).abs() < 1e-9,
                "alpha {alpha} round-trips through the mean"
            );
        }
    }

    #[test]
    fn short_mean_clamps_to_alpha_max() {
        let p = pareto_from_mean(0.05, 0.1).unwrap();
        assert_eq!(p.shape(), ALPHA_MAX);
        let p = pareto_from_mean(0.1, 0.1).unwrap();
        assert_eq!(p.shape(), ALPHA_MAX);
    }

    #[test]
    fn rejects_nonpositive_mean_and_beta() {
        assert!(pareto_from_mean(-1.0, 0.1).is_err());
        assert!(pareto_from_mean(0.0, 0.1).is_err());
        assert!(pareto_from_mean(1.0, 0.0).is_err());
        assert!(pareto_from_mean(f64::NAN, 0.1).is_err());
    }

    #[test]
    fn mle_recovers_shape_on_synthetic_data() {
        let truth = Pareto::new(2.5, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let samples = truth.sample_n(&mut rng, 100_000);
        let fitted = pareto_mle(&samples, 0.1).unwrap();
        assert!(
            (fitted.shape() - 2.5).abs() < 0.05,
            "MLE shape = {}",
            fitted.shape()
        );
    }

    #[test]
    fn mle_rejects_empty() {
        assert!(matches!(
            pareto_mle(&[], 0.1),
            Err(StatsError::DegenerateSample { .. })
        ));
    }

    #[test]
    fn mle_all_at_beta_clamps_high() {
        let fitted = pareto_mle(&[0.1, 0.1, 0.1], 0.1).unwrap();
        assert_eq!(fitted.shape(), ALPHA_MAX);
    }

    proptest! {
        #[test]
        fn moment_fit_alpha_in_bounds(mean in 1e-6f64..1e6, beta in 1e-6f64..1e3) {
            if let Ok(p) = pareto_from_mean(mean, beta) {
                prop_assert!(p.shape() >= ALPHA_MIN);
                prop_assert!(p.shape() <= ALPHA_MAX);
            }
        }

        #[test]
        fn heavier_tails_give_smaller_alpha(beta in 1e-3f64..1.0,
                                            m1 in 1.0f64..10.0,
                                            extra in 0.1f64..10.0) {
            // A larger mean (relative to beta) means longer idle intervals
            // and must fit a smaller alpha.
            let mean1 = beta * (1.0 + m1);
            let mean2 = mean1 + extra;
            let p1 = pareto_from_mean(mean1, beta).unwrap();
            let p2 = pareto_from_mean(mean2, beta).unwrap();
            prop_assert!(p2.shape() <= p1.shape() + 1e-12);
        }
    }
}
