use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used throughout the metrics pipeline where storing every latency sample
/// would be wasteful. Numerically stable for long runs.
///
/// # Example
///
/// ```
/// use jpmd_stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 2.5);
/// assert!((w.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator; 0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Finalizes into an immutable [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min,
            max: self.max,
            sum: self.sum(),
        }
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

/// Immutable descriptive statistics produced by [`Welford::summary`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum (`+∞` when empty).
    pub min: f64,
    /// Maximum (`−∞` when empty).
    pub max: f64,
    /// Sum.
    pub sum: f64,
}

/// Linear-interpolated percentile of an **already sorted** slice.
///
/// `q` is in `[0, 1]`; returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use jpmd_stats::percentile;
///
/// let sorted = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&sorted, 0.5), Some(2.5));
/// assert_eq!(percentile(&sorted, 1.0), Some(4.0));
/// ```
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    if sorted.is_empty() {
        return None;
    }
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_welford_is_safe() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.sum(), 0.0);
    }

    #[test]
    fn single_sample() {
        let w: Welford = [5.0].into_iter().collect();
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), 5.0);
        assert_eq!(w.max(), 5.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let seq: Welford = xs.iter().copied().collect();
        let mut a: Welford = xs[..37].iter().copied().collect();
        let b: Welford = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-12);
        assert!((a.variance() - seq.variance()).abs() < 1e-10);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w: Welford = [1.0, 2.0].into_iter().collect();
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentile_edges() {
        let sorted = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&sorted, 0.0), Some(1.0));
        assert_eq!(percentile(&sorted, 1.0), Some(3.0));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.9), Some(7.0));
    }

    proptest! {
        #[test]
        fn welford_mean_matches_naive(xs in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
            let w: Welford = xs.iter().copied().collect();
            let naive = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((w.mean() - naive).abs() < 1e-9);
        }

        #[test]
        fn percentile_within_bounds(
            mut xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
            q in 0.0f64..=1.0,
        ) {
            xs.sort_by(f64::total_cmp);
            let p = percentile(&xs, q).unwrap();
            prop_assert!(p >= xs[0] - 1e-9 && p <= xs[xs.len() - 1] + 1e-9);
        }
    }
}
