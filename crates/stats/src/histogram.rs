use serde::{Deserialize, Serialize};

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
///
/// Used by the experiment harness to report latency and idle-interval
/// distributions alongside the scalar metrics.
///
/// # Example
///
/// ```
/// use jpmd_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 10);
/// h.record(0.05);
/// h.record(0.05);
/// h.record(2.0); // overflow
/// assert_eq!(h.bin_count(0), 2);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Floating point can land exactly on bins.len() when x is just
            // below hi; clamp to the last bin.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Inclusive-exclusive bounds of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len());
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Number of buckets.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Iterator over `(bin_midpoint, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + (i as f64 + 0.5) * width, c))
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn records_fall_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(9.999);
        h.record(5.0);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(9), 1);
        assert_eq!(h.bin_count(5), 1);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0);
        h.record(100.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn bounds_partition_range() {
        let h = Histogram::new(2.0, 4.0, 4);
        assert_eq!(h.bin_bounds(0), (2.0, 2.5));
        assert_eq!(h.bin_bounds(3), (3.5, 4.0));
    }

    proptest! {
        #[test]
        fn total_equals_records(xs in proptest::collection::vec(-10.0f64..10.0, 0..200)) {
            let mut h = Histogram::new(0.0, 1.0, 7);
            h.extend(xs.iter().copied());
            prop_assert_eq!(h.total(), xs.len() as u64);
        }
    }
}
