use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::StatsError;

/// A (type-I) Pareto distribution with shape `α` and scale `β`.
///
/// The paper (eq. 1) models the length `ℓ` of disk idle intervals as
///
/// ```text
/// f(ℓ) = α βᵅ / ℓ^(α+1),    ℓ > β,  α > 1
/// ```
///
/// `β` is the length of the shortest idle interval (in `jpmd` this is the
/// aggregation window `w`); a smaller `α` or larger `β` makes long idle
/// intervals more likely (paper Fig. 5). The `α > 1` restriction keeps the
/// mean finite, which the joint policy relies on: the mean is
/// `α·β/(α−1)` and the optimal spin-down timeout is `t_o = α·t_be`
/// (paper eq. 5).
///
/// # Example
///
/// ```
/// use jpmd_stats::Pareto;
///
/// # fn main() -> Result<(), jpmd_stats::StatsError> {
/// let p = Pareto::new(2.0, 0.1)?;
/// assert!((p.mean() - 0.2).abs() < 1e-12);
/// // Probability an idle interval exceeds a 1-second timeout:
/// let tail = p.survival(1.0);
/// assert!((tail - 0.01).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    alpha: f64,
    beta: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with shape `alpha` and scale `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `alpha ≤ 1` (the paper
    /// requires a finite mean), if `beta ≤ 0`, or if either is not finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, StatsError> {
        if !alpha.is_finite() || alpha <= 1.0 {
            return Err(StatsError::InvalidParameter {
                name: "alpha",
                value: alpha,
                requirement: "must be finite and > 1",
            });
        }
        if !beta.is_finite() || beta <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "beta",
                value: beta,
                requirement: "must be finite and > 0",
            });
        }
        Ok(Self { alpha, beta })
    }

    /// The shape parameter `α`.
    pub fn shape(&self) -> f64 {
        self.alpha
    }

    /// The scale parameter `β` (the shortest representable interval).
    pub fn scale(&self) -> f64 {
        self.beta
    }

    /// Probability density `f(x)`; zero for `x ≤ β`.
    pub fn pdf(&self, x: f64) -> f64 {
        if x <= self.beta {
            0.0
        } else {
            self.alpha * self.beta.powf(self.alpha) / x.powf(self.alpha + 1.0)
        }
    }

    /// Cumulative distribution `F(x) = P(ℓ ≤ x)`; zero for `x ≤ β`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.beta {
            0.0
        } else {
            1.0 - (self.beta / x).powf(self.alpha)
        }
    }

    /// Survival function `P(ℓ > x) = (β/x)^α` for `x > β`, else 1.
    ///
    /// This is the `∫ₜ∞ f(ℓ)dℓ` term the paper uses in eqs. (2), (3) and
    /// (6) for the probability an idle interval outlives a timeout `t`.
    pub fn survival(&self, x: f64) -> f64 {
        if x <= self.beta {
            1.0
        } else {
            (self.beta / x).powf(self.alpha)
        }
    }

    /// Quantile function: the `p`-quantile for `p ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "quantile requires p in [0,1)");
        self.beta / (1.0 - p).powf(1.0 / self.alpha)
    }

    /// Mean `α·β/(α−1)` (finite because `α > 1`).
    pub fn mean(&self) -> f64 {
        self.alpha * self.beta / (self.alpha - 1.0)
    }

    /// Mean of the *excess* `E[ℓ − t | ℓ > t]·P(ℓ > t)` — the expected
    /// sleep time contributed by one idle interval under timeout `t`.
    ///
    /// The paper's eq. (2) computes the total expected off-time as
    /// `t_s = n_i · (β/t)^(α−1) · β/(α−1)`; this method returns the
    /// per-interval factor `(β/t)^(α−1) · β/(α−1)` for `t ≥ β`. For
    /// `t < β` the timeout always expires before `β`, and every interval
    /// sleeps for its full length minus `t`, i.e. `mean() − t`.
    pub fn expected_sleep(&self, timeout: f64) -> f64 {
        if timeout < self.beta {
            self.mean() - timeout
        } else {
            (self.beta / timeout).powf(self.alpha - 1.0) * self.beta / (self.alpha - 1.0)
        }
    }

    /// Draws one sample via inverse-transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1 - U is uniform on (0, 1]; avoid division by zero at U = 1.
        let u: f64 = rng.gen_range(0.0..1.0);
        self.beta / (1.0 - u).powf(1.0 / self.alpha)
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Pareto::new(1.0, 0.1).is_err());
        assert!(Pareto::new(0.5, 0.1).is_err());
        assert!(Pareto::new(f64::NAN, 0.1).is_err());
        assert!(Pareto::new(2.0, 0.0).is_err());
        assert!(Pareto::new(2.0, -1.0).is_err());
        assert!(Pareto::new(2.0, f64::INFINITY).is_err());
    }

    #[test]
    fn pdf_integrates_to_one_numerically() {
        let p = Pareto::new(2.5, 0.1).unwrap();
        // Trapezoid rule on a log grid from beta to a far tail cut.
        let mut sum = 0.0;
        // Start infinitesimally above beta: pdf(beta) itself is 0 by the
        // open-interval definition, which would bias the first trapezoid.
        let mut x = 0.1f64 * (1.0 + 1e-12);
        let factor = 1.001f64;
        while x < 1e6 {
            let x2 = x * factor;
            sum += 0.5 * (p.pdf(x) + p.pdf(x2)) * (x2 - x);
            x = x2;
        }
        assert!((sum - 1.0).abs() < 1e-3, "integral = {sum}");
    }

    #[test]
    fn cdf_matches_closed_form_points() {
        let p = Pareto::new(2.0, 1.0).unwrap();
        assert_eq!(p.cdf(1.0), 0.0);
        assert!((p.cdf(2.0) - 0.75).abs() < 1e-12);
        assert!((p.survival(2.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mean_matches_paper_formula() {
        let p = Pareto::new(3.0, 0.5).unwrap();
        assert!((p.mean() - 3.0 * 0.5 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn expected_sleep_at_beta_equals_mean_minus_beta() {
        // At t = β every interval triggers shutdown; expected sleep is
        // E[ℓ] − β.
        let p = Pareto::new(2.0, 0.1).unwrap();
        assert!((p.expected_sleep(0.1) - (p.mean() - 0.1)).abs() < 1e-12);
    }

    #[test]
    fn expected_sleep_decreases_with_timeout() {
        let p = Pareto::new(1.5, 0.1).unwrap();
        let mut prev = f64::INFINITY;
        for t in [0.1, 0.5, 1.0, 5.0, 20.0, 100.0] {
            let s = p.expected_sleep(t);
            assert!(s < prev, "expected_sleep must be strictly decreasing");
            assert!(s > 0.0);
            prev = s;
        }
    }

    #[test]
    fn sample_mean_approaches_analytic_mean() {
        let p = Pareto::new(3.0, 0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mean: f64 = p.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!(
            (mean - p.mean()).abs() / p.mean() < 0.02,
            "sample mean {mean} vs analytic {}",
            p.mean()
        );
    }

    #[test]
    fn fig5_shape_ordering() {
        // Paper Fig. 5: larger α / smaller β concentrates mass on short
        // intervals; smaller α / larger β yields more long intervals.
        let short = Pareto::new(3.0, 0.1).unwrap(); // α1 > α2, β1 < β2
        let long = Pareto::new(1.3, 0.5).unwrap();
        for x in [1.0, 5.0, 20.0] {
            assert!(
                long.survival(x) > short.survival(x),
                "heavy-tailed curve must dominate at x = {x}"
            );
        }
    }

    proptest! {
        #[test]
        fn quantile_inverts_cdf(alpha in 1.01f64..20.0, beta in 1e-3f64..10.0,
                                p in 0.0f64..0.999) {
            let d = Pareto::new(alpha, beta).unwrap();
            let x = d.quantile(p);
            prop_assert!((d.cdf(x) - p).abs() < 1e-9);
        }

        #[test]
        fn samples_are_above_beta(alpha in 1.01f64..20.0, beta in 1e-3f64..10.0,
                                  seed in any::<u64>()) {
            let d = Pareto::new(alpha, beta).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..64 {
                prop_assert!(d.sample(&mut rng) >= beta);
            }
        }

        #[test]
        fn cdf_is_monotone(alpha in 1.01f64..20.0, beta in 1e-3f64..10.0,
                           a in 0.0f64..100.0, b in 0.0f64..100.0) {
            let d = Pareto::new(alpha, beta).unwrap();
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(d.cdf(lo) <= d.cdf(hi) + 1e-12);
        }

        #[test]
        fn survival_complements_cdf(alpha in 1.01f64..20.0, beta in 1e-3f64..10.0,
                                    x in 1e-3f64..1e3) {
            let d = Pareto::new(alpha, beta).unwrap();
            if x > beta {
                prop_assert!((d.cdf(x) + d.survival(x) - 1.0).abs() < 1e-12);
            }
        }
    }
}
