//! Statistical substrate for the `jpmd` workspace.
//!
//! The joint power manager of Cai, Pettis and Lu (DATE'05 / TCAD'06) leans on
//! a small set of statistical tools, all of which live in this crate so the
//! policy, workload, memory and disk crates can share one implementation:
//!
//! * [`Pareto`] — the heavy-tailed distribution used to model disk
//!   idle-interval lengths (paper §IV-C, eq. 1), with pdf/cdf/quantile,
//!   sampling, and the moment/MLE estimators in [`fit`].
//! * [`Zipf`] — the file-popularity sampler behind the synthetic web-server
//!   workloads (popular files receive most requests, Arlitt & Williamson).
//! * [`IdleIntervals`] — extraction of disk idle intervals from an access
//!   timestamp stream with the paper's *aggregation window* `w`: gaps
//!   shorter than `w` provide no power-saving opportunity and are ignored.
//! * [`Summary`] / [`Welford`] — streaming descriptive statistics used by
//!   the metrics pipeline.
//! * [`Histogram`] — fixed-bin histograms for latency and interval reports.
//!
//! # Example
//!
//! Fit a Pareto distribution to observed idle gaps and recover the optimal
//! spin-down timeout `t_o = α·t_be` of the paper's eq. (5):
//!
//! ```
//! use jpmd_stats::{IdleIntervals, fit};
//!
//! # fn main() -> Result<(), jpmd_stats::StatsError> {
//! // Disk access completion/arrival timestamps in seconds.
//! let accesses = [0.0, 0.02, 5.0, 5.05, 30.0, 31.0, 90.0];
//! let idle = IdleIntervals::from_timestamps(&accesses, 0.1);
//! let pareto = fit::pareto_from_mean(idle.mean().unwrap(), 0.1)?;
//! let t_be = 11.7; // disk break-even time in seconds
//! let timeout = pareto.shape() * t_be;
//! assert!(timeout > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod exponential;
pub mod fit;
mod gof;
mod histogram;
mod intervals;
mod pareto;
mod summary;
mod zipf;

pub use error::StatsError;
pub use exponential::Exponential;
pub use gof::{ks_statistic, ks_test, KsTest};
pub use histogram::Histogram;
pub use intervals::{IdleIntervals, IntervalStats};
pub use pareto::Pareto;
pub use summary::{percentile, Summary, Welford};
pub use zipf::Zipf;
